#include "crashsim/conditions/conditions.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

#include "util/logging.h"

namespace wsp::crashsim::conditions {

namespace {

/** A key's value after an operation takes effect (nullopt = absent). */
std::optional<uint64_t>
valueAfter(const HistoryOp &op)
{
    if (op.isErase)
        return std::nullopt;
    return op.value;
}

std::string
formatValue(const std::optional<uint64_t> &value)
{
    if (!value)
        return "absent";
    return std::to_string(*value);
}

/** Invoked operations of @p ops touching @p key, in history order. */
std::vector<const HistoryOp *>
opsOnKey(const std::vector<HistoryOp> &ops, uint64_t key)
{
    std::vector<const HistoryOp *> result;
    for (const HistoryOp &op : ops) {
        if (op.invoked && op.key == key)
            result.push_back(&op);
    }
    return result;
}

/** Every key any invoked operation touches. */
std::vector<uint64_t>
touchedKeys(const std::vector<HistoryOp> &ops)
{
    std::vector<uint64_t> keys;
    for (const HistoryOp &op : ops) {
        if (op.invoked)
            keys.push_back(op.key);
    }
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    return keys;
}

std::optional<uint64_t>
stateValue(const KvState &state, uint64_t key)
{
    auto it = state.find(key);
    if (it == state.end())
        return std::nullopt;
    return it->second;
}

void
appendViolation(ConditionResult *result, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

void
appendViolation(ConditionResult *result, const char *fmt, ...)
{
    char line[512];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(line, sizeof(line), fmt, args);
    va_end(args);
    result->ok = false;
    result->violations.emplace_back(line);
}

/**
 * Flag keys present in @p state that no invoked operation ever put —
 * common to every condition (no checker admits invented keys).
 */
void
checkNoInventedKeys(const std::vector<HistoryOp> &ops, const KvState &state,
                    const char *checker, ConditionResult *result)
{
    for (const auto &[key, value] : state) {
        bool touched = false;
        for (const HistoryOp &op : ops)
            touched = touched || (op.invoked && op.key == key);
        if (!touched)
            appendViolation(result,
                            "%s: key %llu=%llu survived but no operation "
                            "in the history ever touched it",
                            checker, static_cast<unsigned long long>(key),
                            static_cast<unsigned long long>(value));
    }
}

} // namespace

ConditionResult
checkDurableLinearizable(const std::vector<HistoryOp> &ops,
                         const KvState &state)
{
    ConditionResult result;
    // Per key: the ops on it are totally ordered and inclusion of each
    // in-flight op is a free choice, so the admissible final values
    // are the value after the last *responded* op (all responded ops
    // must be included; earlier in-flight inclusions are overwritten)
    // plus the value after each later in-flight op.
    for (uint64_t key : touchedKeys(ops)) {
        const std::vector<const HistoryOp *> kops = opsOnKey(ops, key);
        ptrdiff_t last_responded = -1;
        for (size_t i = 0; i < kops.size(); ++i) {
            if (kops[i]->responded)
                last_responded = static_cast<ptrdiff_t>(i);
        }

        std::vector<std::optional<uint64_t>> admissible;
        admissible.push_back(last_responded >= 0
                                 ? valueAfter(*kops[last_responded])
                                 : std::nullopt);
        for (size_t i = static_cast<size_t>(last_responded + 1);
             i < kops.size(); ++i)
            admissible.push_back(valueAfter(*kops[i]));

        const std::optional<uint64_t> got = stateValue(state, key);
        bool match = false;
        for (const auto &candidate : admissible)
            match = match || candidate == got;
        if (!match) {
            std::string options;
            for (const auto &candidate : admissible) {
                if (!options.empty())
                    options += ", ";
                options += formatValue(candidate);
            }
            appendViolation(&result,
                            "durable-lin: key %llu holds %s after "
                            "recovery; admissible: {%s} (last responded "
                            "op %s)",
                            static_cast<unsigned long long>(key),
                            formatValue(got).c_str(), options.c_str(),
                            last_responded >= 0
                                ? std::to_string(
                                      kops[last_responded]->id).c_str()
                                : "none");
        }
    }
    checkNoInventedKeys(ops, state, "durable-lin", &result);
    return result;
}

ConditionResult
checkBufferedDurableLinearizable(const std::vector<HistoryOp> &ops,
                                 const KvState &state)
{
    ConditionResult result;
    // The history is sequential, so a consistent cut is a prefix. The
    // cut must contain every persisted operation.
    size_t min_cut = 0;
    for (size_t i = 0; i < ops.size(); ++i) {
        if (ops[i].invoked && ops[i].persisted)
            min_cut = i + 1;
    }

    KvState replayed;
    bool found = false;
    size_t cut = 0;
    for (size_t p = 0; p <= ops.size(); ++p) {
        if (p > 0 && ops[p - 1].invoked) {
            const HistoryOp &op = ops[p - 1];
            if (op.isErase)
                replayed.erase(op.key);
            else
                replayed[op.key] = op.value;
        }
        if (p >= min_cut && replayed == state) {
            found = true;
            cut = p;
            break;
        }
    }
    if (!found) {
        appendViolation(&result,
                        "buffered: no prefix cut of the %zu-op history "
                        "containing all persisted ops (earliest legal "
                        "cut %zu) replays to the surviving state",
                        ops.size(), min_cut);
        checkNoInventedKeys(ops, state, "buffered", &result);
    } else {
        (void)cut;
    }
    return result;
}

ConditionResult
checkDetectableExecution(
    const std::vector<HistoryOp> &ops, const KvState &state,
    std::vector<std::pair<uint64_t, OpVerdict>> *verdicts)
{
    ConditionResult result;
    std::vector<std::pair<uint64_t, OpVerdict>> assigned;

    for (uint64_t key : touchedKeys(ops)) {
        const std::vector<const HistoryOp *> kops = opsOnKey(ops, key);
        ptrdiff_t last_responded = -1;
        for (size_t i = 0; i < kops.size(); ++i) {
            if (kops[i]->responded)
                last_responded = static_cast<ptrdiff_t>(i);
        }
        const std::optional<uint64_t> got = stateValue(state, key);

        // Find the cut within this key's ops that explains the
        // surviving value: all ops up to it committed, the rest
        // aborted. Prefer the latest explanation (most-recent op
        // committed) for determinism; any consistent one suffices for
        // detectability.
        ptrdiff_t chosen = -2; // -2 = no explanation
        {
            const std::optional<uint64_t> base =
                last_responded >= 0 ? valueAfter(*kops[last_responded])
                                    : std::nullopt;
            if (base == got)
                chosen = last_responded;
            for (size_t i = static_cast<size_t>(last_responded + 1);
                 i < kops.size(); ++i) {
                if (valueAfter(*kops[i]) == got)
                    chosen = static_cast<ptrdiff_t>(i);
            }
        }
        if (chosen == -2) {
            appendViolation(&result,
                            "detectable: key %llu holds %s — no "
                            "commit/abort assignment of its %zu ops "
                            "explains it (partial effect survived?)",
                            static_cast<unsigned long long>(key),
                            formatValue(got).c_str(), kops.size());
            continue;
        }
        for (size_t i = 0; i < kops.size(); ++i) {
            assigned.emplace_back(kops[i]->id,
                                  static_cast<ptrdiff_t>(i) <= chosen
                                      ? OpVerdict::Committed
                                      : OpVerdict::Aborted);
        }
    }

    checkNoInventedKeys(ops, state, "detectable", &result);
    if (result.ok && verdicts != nullptr) {
        std::sort(assigned.begin(), assigned.end());
        *verdicts = std::move(assigned);
    }
    return result;
}

bool
bruteForceDurablyLinearizable(const std::vector<HistoryOp> &ops,
                              const KvState &state)
{
    // Free choices: invoked operations that never responded.
    std::vector<size_t> optional_idx;
    for (size_t i = 0; i < ops.size(); ++i) {
        if (ops[i].invoked && !ops[i].responded)
            optional_idx.push_back(i);
    }
    WSP_CHECKF(optional_idx.size() <= 20,
               "brute-force oracle: too many in-flight ops (%zu)",
               optional_idx.size());

    const uint64_t combos = 1ull << optional_idx.size();
    for (uint64_t mask = 0; mask < combos; ++mask) {
        std::vector<bool> include(ops.size(), false);
        for (size_t i = 0; i < ops.size(); ++i)
            include[i] = ops[i].invoked && ops[i].responded;
        for (size_t bit = 0; bit < optional_idx.size(); ++bit) {
            if (mask & (1ull << bit))
                include[optional_idx[bit]] = true;
        }
        const KvState replayed = replay(
            ops, [&include, &ops](const HistoryOp &op) {
                return include[static_cast<size_t>(&op - ops.data())];
            });
        if (replayed == state)
            return true;
    }
    return false;
}

bool
bruteForceBufferedDurablyLinearizable(const std::vector<HistoryOp> &ops,
                                      const KvState &state)
{
    for (size_t p = 0; p <= ops.size(); ++p) {
        bool legal = true;
        for (size_t i = p; i < ops.size(); ++i)
            legal = legal && !(ops[i].invoked && ops[i].persisted);
        if (!legal)
            continue;
        KvState replayed;
        for (size_t i = 0; i < p; ++i) {
            if (!ops[i].invoked)
                continue;
            if (ops[i].isErase)
                replayed.erase(ops[i].key);
            else
                replayed[ops[i].key] = ops[i].value;
        }
        if (replayed == state)
            return true;
    }
    return false;
}

} // namespace wsp::crashsim::conditions
