#include "crashsim/conditions/kv_conditions.h"

#include <cstdio>

#include "apps/kv_store.h"
#include "core/salvage_directory.h"
#include "util/logging.h"
#include "util/rng.h"

namespace wsp::crashsim::conditions {

namespace {

/** Keys are drawn from [1, kKeyUniverse] so absence is checkable. */
constexpr uint64_t kKeyUniverse = 128;

/** KvStore header bytes ahead of a shard's slot array. */
constexpr uint64_t kKvHeaderBytes = 64;

/**
 * Mirrors ShardedKvStore::shardOf so a single wounded shard can be
 * replayed without attaching the whole store (whose sibling headers
 * may themselves be scrubbed at that point).
 */
unsigned
shardOfKey(uint64_t key, unsigned shards)
{
    uint64_t h = key;
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdull;
    h ^= h >> 29;
    return static_cast<unsigned>(h & (shards - 1));
}

/**
 * Attach the checker's store as @p shards stripes over the system's
 * (single) cache. The striped layout with shards == 1 is bit-for-bit
 * the plain KvStore layout, so one code path covers both regimes.
 */
std::optional<apps::ShardedKvStore>
attachCheckerStore(WspSystem &system, unsigned shards)
{
    std::vector<CacheModel *> caches(shards, &system.cache());
    return apps::ShardedKvStore::attach(
        std::span<CacheModel *const>(caches), KvConditionsChecker::kBase);
}

apps::ShardedKvStore
createCheckerStore(WspSystem &system, unsigned shards)
{
    std::vector<CacheModel *> caches(shards, &system.cache());
    return apps::ShardedKvStore(std::span<CacheModel *const>(caches),
                                KvConditionsChecker::kBase,
                                KvConditionsChecker::kCapacity / shards);
}

bool
runsCondition(ConditionMode selected, ConditionMode wanted)
{
    return selected == ConditionMode::All || selected == wanted;
}

} // namespace

void
KvConditionsChecker::prepare(WspSystem &system,
                             const CrashSchedule &schedule)
{
    model_.clear();
    appliedOps_ = 0;
    historyValid_ = false;
    history_.clear();
    survivingState_.clear();
    shards_ = schedule.shards;
    condition_ = schedule.condition;
    WSP_CHECKF(shards_ >= 1 && kCapacity % shards_ == 0,
               "kv-conditions shard count must divide the capacity");
    WSP_CHECKF(schedule.ackDelay < schedule.opSpacing,
               "kv-conditions needs ackDelay < opSpacing (sequential "
               "history)");

    // The FliT tracker: the store reports its stores into it, the
    // cache reports write-backs and losses, and the combination is
    // the persist point of every operation. Shared so the cache
    // observer stays valid whatever is destroyed first.
    flit_ = std::make_shared<util::FlitTracker>();
    flit_->setClock([queue = &system.queue()]() { return queue->now(); });
    system.cache().setWritebackObserver(
        [flit = flit_](uint64_t line_base, bool lost) {
            if (lost)
                flit->onLineLost(line_base);
            else
                flit->onWriteback(line_base);
        });

    createCheckerStore(system, shards_);

    if (schedule.salvage) {
        // Tiered regions: shard headers outrank the bulk slot arrays,
        // so a degraded save keeps the cheap metadata and a restore
        // rebuilds only the shards whose data was sacrificed.
        const uint64_t per_shard = kCapacity / shards_;
        const uint64_t stride =
            apps::ShardedKvStore::shardStride(per_shard);
        for (unsigned i = 0; i < shards_; ++i) {
            const uint64_t shard_base = kBase + i * stride;
            char name[SalvageDirectory::kMaxNameBytes + 1];
            std::snprintf(name, sizeof(name), "kv%u.meta", i);
            system.registerSalvageRegion(SalvageRegionSpec{
                name, shard_base, kKvHeaderBytes, SaveTier::Metadata});
            std::snprintf(name, sizeof(name), "kv%u.data", i);
            system.registerSalvageRegion(SalvageRegionSpec{
                name, shard_base + kKvHeaderBytes, per_shard * 16,
                SaveTier::Bulk});
        }
    }

    // Pre-draw the whole operation stream (and declare its history
    // records) so determinism does not depend on how far the run gets
    // before the lights go out.
    Rng rng(schedule.seed ^ 0x6b76ull); // "kv"
    struct Op
    {
        bool isPut;
        uint64_t key;
        uint64_t value;
    };
    auto ops = std::make_shared<std::vector<Op>>();
    ops->reserve(schedule.ops);
    for (unsigned i = 0; i < schedule.ops; ++i) {
        Op op;
        op.isPut = rng.chance(0.8);
        op.key = rng.next(kKeyUniverse) + 1;
        op.value = rng.next(1u << 20) + 1;
        ops->push_back(op);
        const uint64_t id =
            flit_->declareOp(op.isPut ? 0 : 1, op.key, op.value);
        WSP_CHECK(id == i);
    }

    // Each operation is two events — apply and respond, ackDelay
    // apart — so both the mutation boundary and the completion
    // boundary are distinguishable crash points, and ops silently
    // stop while the machine is down (then resume if a train cycle
    // brings it back with time to spare).
    EventQueue &queue = system.queue();
    const auto powered = [&system]() {
        return system.wsp().running() && system.machine().powerOn();
    };
    const auto apply = [this, &system, ops, powered](unsigned i) {
        if (!powered())
            return;
        auto store = attachCheckerStore(system, shards_);
        if (!store)
            return;
        store->setFlitTracker(flit_.get());
        const Op &op = (*ops)[i];
        flit_->beginApply(i);
        bool ok;
        if (op.isPut) {
            ok = store->put(op.key, op.value);
            if (ok)
                model_[op.key] = op.value;
        } else {
            ok = store->erase(op.key);
            model_.erase(op.key);
        }
        flit_->endApply();
        flit_->op(i).ok = ok;
        ++appliedOps_;
    };
    for (unsigned i = 0; i < schedule.ops; ++i) {
        const Tick invoke_at =
            static_cast<Tick>(i + 1) * schedule.opSpacing;
        if (!schedule.ackBeforeApply) {
            queue.scheduleAfter(invoke_at,
                                [apply, i]() { apply(i); });
            queue.scheduleAfter(
                invoke_at + schedule.ackDelay,
                [this, ops, powered, i]() {
                    if (!powered() || !flit_->op(i).applied)
                        return;
                    flit_->respond(i, flit_->op(i).ok,
                                   (*ops)[i].value);
                });
        } else {
            // Planted bug: acknowledge first, mutate later. A crash
            // in the gap completes an operation that never happened.
            queue.scheduleAfter(
                invoke_at, [this, ops, powered, i]() {
                    if (!powered())
                        return;
                    flit_->respond(i, true, (*ops)[i].value);
                });
            queue.scheduleAfter(invoke_at + schedule.ackDelay,
                                [apply, i]() { apply(i); });
        }
    }
}

void
KvConditionsChecker::onBackendRecovery(WspSystem &system)
{
    // "Fetch from the storage back end": rebuild the store from the
    // applied model, exactly what a real KV server would do from its
    // log. The rebuild's stores are recovery traffic, not operations,
    // so they are not attributed to any history record.
    apps::ShardedKvStore store = createCheckerStore(system, shards_);
    for (const auto &[key, value] : model_)
        store.put(key, value);
}

void
KvConditionsChecker::onRegionRecovery(WspSystem &system,
                                      const RegionOutcome &region)
{
    unsigned shard = 0;
    if (std::sscanf(region.name.c_str(), "kv%u.", &shard) != 1 ||
        shard >= shards_)
        return;
    const uint64_t per_shard = kCapacity / shards_;
    const uint64_t stride = apps::ShardedKvStore::shardStride(per_shard);
    // Reformat exactly the wounded shard, then replay its keys from
    // the model — the "fetch from the back end" of one shard, not the
    // whole store. A second quarantine of the same shard (header and
    // slots both hit) just repeats the idempotent rebuild.
    apps::KvStore fresh(system.cache(), kBase + shard * stride,
                        per_shard);
    for (const auto &[key, value] : model_) {
        if (shardOfKey(key, shards_) == shard)
            fresh.put(key, value);
    }
}

void
KvConditionsChecker::check(WspSystem &crashed, WspSystem &revived,
                           const RestoreReport &restore, bool backend_ran,
                           std::vector<std::string> *violations)
{
    if (!restore.usedWsp && !backend_ran && !restore.salvageMode) {
        addViolation(violations,
                     "kv-conditions: neither WSP restore, region "
                     "salvage, nor back-end recovery ran; store state "
                     "is undefined");
        return;
    }

    auto store = attachCheckerStore(revived, shards_);
    if (!store) {
        addViolation(violations,
                     "kv-conditions: no valid store header after %s "
                     "(applied ops: %llu)",
                     restore.usedWsp      ? "WSP restore"
                     : restore.salvageMode ? "region salvage"
                                           : "back-end recovery",
                     static_cast<unsigned long long>(appliedOps_));
        return;
    }

    // The surviving state, as the store itself reports it — a slot a
    // torn write invented shows up here and fails every condition.
    survivingState_.clear();
    store->forEach([this](uint64_t key, uint64_t value) {
        survivingState_[key] = value;
    });

    // A line's content reached the NV domain only if its module
    // actually programmed it: the copy engine writes the suffix
    // [capacity - savedBytes, capacity) of each module, top down.
    NvramSpace &memory = crashed.memory();
    const auto flashCovered = [&memory](uint64_t line) {
        for (size_t i = 0; i < memory.moduleCount(); ++i) {
            const NvdimmModule &module = memory.module(i);
            const uint64_t mbase = memory.moduleBase(i);
            const uint64_t mend = mbase + module.capacity();
            if (line < mbase || line >= mend)
                continue;
            return line >= mend - module.flashSavedBytes();
        }
        return false;
    };

    // Assemble the formal history from the FliT records.
    history_.clear();
    history_.reserve(flit_->ops().size());
    for (const util::FlitOp &op : flit_->ops()) {
        HistoryOp h;
        h.id = op.id;
        h.isErase = op.kind == 1;
        h.key = op.a;
        h.value = op.b;
        h.invoked = op.invoked;
        h.applied = op.applied;
        h.responded = op.responded;
        h.persisted =
            op.applied && flit_->opPersisted(op, flashCovered);
        history_.push_back(h);
    }
    historyValid_ = true;

    if (runsCondition(condition_, ConditionMode::DurableLin)) {
        const ConditionResult dl =
            checkDurableLinearizable(history_, survivingState_);
        for (const std::string &violation : dl.violations)
            addViolation(violations, "kv-conditions: %s",
                         violation.c_str());
    }
    if (runsCondition(condition_, ConditionMode::BufferedDurableLin)) {
        const ConditionResult bdl = checkBufferedDurableLinearizable(
            history_, survivingState_);
        for (const std::string &violation : bdl.violations)
            addViolation(violations, "kv-conditions: %s",
                         violation.c_str());
    }
}

void
DetectableExecutionChecker::check(WspSystem &crashed, WspSystem &revived,
                                  const RestoreReport &restore,
                                  bool backend_ran,
                                  std::vector<std::string> *violations)
{
    (void)crashed;
    (void)revived;
    (void)restore;
    (void)backend_ran;
    if (!battery_->historyValid() ||
        !(condition_ == ConditionMode::All ||
          condition_ == ConditionMode::Detectable))
        return;

    std::vector<std::pair<uint64_t, OpVerdict>> verdicts;
    const ConditionResult result = checkDetectableExecution(
        battery_->history(), battery_->survivingState(), &verdicts);
    for (const std::string &violation : result.violations)
        addViolation(violations, "detectable-execution: %s",
                     violation.c_str());
    if (!result.ok)
        return;

    // Every invoked operation — the in-flight ones included — must
    // have received a reboot verdict.
    size_t invoked = 0;
    for (const HistoryOp &op : battery_->history())
        invoked += op.invoked ? 1 : 0;
    if (verdicts.size() != invoked)
        addViolation(violations,
                     "detectable-execution: %zu of %zu invoked ops "
                     "received a commit/abort verdict",
                     verdicts.size(), invoked);
}

} // namespace wsp::crashsim::conditions
