/**
 * @file
 * Crash-point exploration engine.
 *
 * Because the simulation is a deterministic discrete-event system,
 * the set of distinguishable power-loss instants of a run is exactly
 * the set of its event boundaries: between two dispatches nothing
 * changes, so crashing anywhere in the gap yields the same surviving
 * image. The explorer exploits this three ways:
 *
 *  - enumerateCrashPoints() runs one reference scenario with a huge
 *    residual window and records every dispatch after the AC failure
 *    through an EventQueue dispatch observer. That gives the complete
 *    list of interesting window lengths: just-before and just-after
 *    every save-pipeline event (IPI, context save, wbinvd, marker
 *    prepare/stamp, NVDIMM-save initiation, each ultracap-powered
 *    save step, device suspend steps) plus gap midpoints.
 *
 *  - sweepEnumerated() re-runs the scenario once per enumerated
 *    window. Each run kills the power at exactly that instant, pulls
 *    the surviving NVRAM image out of the dead chassis, sockets it
 *    into a freshly constructed system, boots it, and evaluates the
 *    invariant checkers (crashsim/invariants.h).
 *
 *  - fuzz() goes beyond the enumerable points: random windows, outage
 *    trains, pre-drained and undersized ultracapacitor banks, device
 *    sets — seed-driven and fully reproducible. minimize() shrinks
 *    any failing schedule to a simpler one that still fails, for the
 *    replay file consumed by tools/crash_replay.
 */

#pragma once

#include <string>
#include <vector>

#include "core/system.h"
#include "crashsim/crash_schedule.h"
#include "crashsim/invariants.h"

namespace wsp::crashsim {

/** Outcome of one crash/recovery run. */
struct CrashPointResult
{
    CrashSchedule schedule;
    RestoreReport restore;
    bool backendRan = false;
    uint64_t appliedOps = 0; ///< workload ops applied before the crash
    std::vector<std::string> violations;

    /**
     * Black-box forensics: the flight-recorder timeline decoded from
     * the surviving NVRAM image, attached to every failing schedule
     * (empty when the run held, or when schedule.blackBox is off).
     */
    std::vector<std::string> timeline;

    bool held() const { return violations.empty(); }
};

/** Aggregate of a sweep or fuzz campaign. */
struct SweepReport
{
    size_t points = 0;         ///< schedules executed
    size_t wspRecoveries = 0;  ///< runs that resumed via WSP
    size_t fallbacks = 0;      ///< runs that needed the back end
    std::vector<CrashPointResult> failures;

    bool allHeld() const { return failures.empty(); }
};

/** Enumerates, sweeps, fuzzes and minimizes crash schedules. */
class CrashExplorer
{
  public:
    explicit CrashExplorer(CrashSchedule base = {}) : base_(base) {}

    const CrashSchedule &base() const { return base_; }

    /** Assemble the SystemConfig a schedule's runs use. */
    static SystemConfig configFor(const CrashSchedule &schedule);

    /**
     * Execute one schedule end to end: workload, (optional) outage
     * train, the final crash at the exact window, image capture,
     * fresh-chassis boot, invariant evaluation.
     */
    static CrashPointResult runSchedule(const CrashSchedule &schedule);

    /** As above, also handing out the captured NVRAM image. */
    static CrashPointResult runSchedule(const CrashSchedule &schedule,
                                        NvramImage *captured_image);

    /**
     * Every distinguishable crash window of the base scenario, in
     * ticks after the AC failure, thinned evenly to @p max_points.
     */
    std::vector<Tick> enumerateCrashPoints(size_t max_points = 160);

    /** Run the base schedule once per enumerated window. */
    SweepReport sweepEnumerated(bool stop_on_first_violation = false,
                                size_t max_points = 160);

    /**
     * Full-vs-incremental image equality sweep: at every enumerated
     * crash instant, run the base schedule once with delta saves and
     * once forced to full saves, and compare the surviving flash
     * images byte for byte over the suffix both runs claim
     * programmed (the whole image when both saves completed). Any
     * window where the two pipelines disagree is a soundness bug in
     * the incremental engine.
     */
    struct EquivalenceReport
    {
        size_t points = 0;           ///< windows compared
        size_t bothComplete = 0;     ///< windows with two valid images
        std::vector<Tick> mismatchWindows;

        bool allEqual() const { return mismatchWindows.empty(); }
    };

    EquivalenceReport
    incrementalEquivalenceSweep(size_t max_points = 96);

    /** Seed-driven random schedules beyond the enumerable points. */
    SweepReport fuzz(unsigned runs, uint64_t seed);

    /**
     * Greedily shrink @p failing toward the simplest schedule that
     * still violates an invariant, spending at most @p budget runs.
     * Returns the input unchanged if it no longer fails.
     */
    static CrashSchedule minimize(CrashSchedule failing,
                                  unsigned budget = 64);

  private:
    CrashSchedule base_;
};

} // namespace wsp::crashsim
