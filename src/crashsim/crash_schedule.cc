#include "crashsim/crash_schedule.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/logging.h"

namespace wsp::crashsim {

namespace {

constexpr const char *kHeader = "wsp-crash-schedule v1";

} // namespace

const char *
conditionModeName(ConditionMode mode)
{
    switch (mode) {
      case ConditionMode::All:
        return "all";
      case ConditionMode::DurableLin:
        return "durable-lin";
      case ConditionMode::BufferedDurableLin:
        return "buffered";
      case ConditionMode::Detectable:
        return "detectable";
    }
    return "all";
}

std::optional<ConditionMode>
conditionModeFromName(const std::string &name)
{
    if (name == "all")
        return ConditionMode::All;
    if (name == "durable-lin")
        return ConditionMode::DurableLin;
    if (name == "buffered")
        return ConditionMode::BufferedDurableLin;
    if (name == "detectable")
        return ConditionMode::Detectable;
    return std::nullopt;
}

std::string
CrashSchedule::serialize() const
{
    std::ostringstream out;
    out << kHeader << "\n";
    out << "seed=" << seed << "\n";
    out << "fail_delay_ns=" << failDelay << "\n";
    out << "window_ns=" << window << "\n";
    out << "outage_ns=" << outage << "\n";
    out << "ops=" << ops << "\n";
    out << "op_spacing_ns=" << opSpacing << "\n";
    out << "train_cycles=" << trainCycles << "\n";
    out << "train_spacing_ns=" << trainSpacing << "\n";
    out << "drain_module=" << drainModule << "\n";
    out << "drain_voltage=" << drainVoltage << "\n";
    out << "undersized_caps=" << (undersizedCaps ? 1 : 0) << "\n";
    out << "with_devices=" << (withDevices ? 1 : 0) << "\n";
    out << "save_order="
        << (saveOrder == SaveOrder::MarkerBeforeFlush
                ? "marker-before-flush"
                : "marker-after-flush")
        << "\n";
    out << "shards=" << shards << "\n";
    out << "parallel_save=" << (parallelSave ? 1 : 0) << "\n";
    out << "salvage=" << (salvage ? 1 : 0) << "\n";
    out << "media_faults=" << mediaFaults << "\n";
    out << "media_fault_kind=" << mediaFaultKind << "\n";
    out << "media_fault_seed=" << mediaFaultSeed << "\n";
    out << "degrade_tier=" << degradeTier << "\n";
    out << "drop_save_cmds=" << dropSaveCommands << "\n";
    out << "trust_directory=" << (trustDirectory ? 1 : 0) << "\n";
    out << "incremental_save=" << (incrementalSave ? 1 : 0) << "\n";
    out << "lazy_restore=" << (lazyRestore ? 1 : 0) << "\n";
    out << "black_box=" << (blackBox ? 1 : 0) << "\n";
    out << "condition=" << conditionModeName(condition) << "\n";
    out << "ack_delay_ns=" << ackDelay << "\n";
    out << "ack_before_apply=" << (ackBeforeApply ? 1 : 0) << "\n";
    out << "fleet_nodes=" << fleetNodes << "\n";
    out << "fleet_replication=" << fleetReplication << "\n";
    out << "fleet_kill_mask=" << fleetKillMask << "\n";
    out << "fleet_policy=" << fleetPolicy << "\n";
    return out.str();
}

std::optional<CrashSchedule>
CrashSchedule::parse(const std::string &text)
{
    std::istringstream in(text);
    std::string line;
    if (!std::getline(in, line) || line != kHeader)
        return std::nullopt;

    CrashSchedule schedule;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        const size_t eq = line.find('=');
        if (eq == std::string::npos)
            return std::nullopt;
        const std::string key = line.substr(0, eq);
        const std::string value = line.substr(eq + 1);
        try {
            if (key == "seed")
                schedule.seed = std::stoull(value);
            else if (key == "fail_delay_ns")
                schedule.failDelay = std::stoull(value);
            else if (key == "window_ns")
                schedule.window = std::stoull(value);
            else if (key == "outage_ns")
                schedule.outage = std::stoull(value);
            else if (key == "ops")
                schedule.ops = static_cast<unsigned>(std::stoul(value));
            else if (key == "op_spacing_ns")
                schedule.opSpacing = std::stoull(value);
            else if (key == "train_cycles")
                schedule.trainCycles =
                    static_cast<unsigned>(std::stoul(value));
            else if (key == "train_spacing_ns")
                schedule.trainSpacing = std::stoull(value);
            else if (key == "drain_module")
                schedule.drainModule = std::stoi(value);
            else if (key == "drain_voltage")
                schedule.drainVoltage = std::stod(value);
            else if (key == "undersized_caps")
                schedule.undersizedCaps = value == "1";
            else if (key == "with_devices")
                schedule.withDevices = value == "1";
            else if (key == "save_order")
                schedule.saveOrder = value == "marker-before-flush"
                                         ? SaveOrder::MarkerBeforeFlush
                                         : SaveOrder::MarkerAfterFlush;
            else if (key == "shards")
                schedule.shards = static_cast<unsigned>(std::stoul(value));
            else if (key == "parallel_save")
                schedule.parallelSave = value == "1";
            else if (key == "salvage")
                schedule.salvage = value == "1";
            else if (key == "media_faults")
                schedule.mediaFaults =
                    static_cast<unsigned>(std::stoul(value));
            else if (key == "media_fault_kind")
                schedule.mediaFaultKind = std::stoi(value);
            else if (key == "media_fault_seed")
                schedule.mediaFaultSeed = std::stoull(value);
            else if (key == "degrade_tier")
                schedule.degradeTier = std::stoi(value);
            else if (key == "drop_save_cmds")
                schedule.dropSaveCommands =
                    static_cast<unsigned>(std::stoul(value));
            else if (key == "trust_directory")
                schedule.trustDirectory = value == "1";
            else if (key == "incremental_save")
                schedule.incrementalSave = value == "1";
            else if (key == "lazy_restore")
                schedule.lazyRestore = value == "1";
            else if (key == "black_box")
                schedule.blackBox = value == "1";
            else if (key == "condition") {
                const auto mode = conditionModeFromName(value);
                if (!mode)
                    return std::nullopt;
                schedule.condition = *mode;
            } else if (key == "ack_delay_ns")
                schedule.ackDelay = std::stoull(value);
            else if (key == "ack_before_apply")
                schedule.ackBeforeApply = value == "1";
            else if (key == "fleet_nodes")
                schedule.fleetNodes =
                    static_cast<unsigned>(std::stoul(value));
            else if (key == "fleet_replication")
                schedule.fleetReplication =
                    static_cast<unsigned>(std::stoul(value));
            else if (key == "fleet_kill_mask")
                schedule.fleetKillMask = std::stoull(value);
            else if (key == "fleet_policy")
                schedule.fleetPolicy = std::stoi(value);
            else
                return std::nullopt; // unknown key: refuse to guess
        } catch (const std::exception &) {
            return std::nullopt;
        }
    }
    if (schedule.trainCycles == 0)
        return std::nullopt;
    if (schedule.shards == 0 ||
        (schedule.shards & (schedule.shards - 1)) != 0)
        return std::nullopt;
    if (schedule.mediaFaultKind < -1 || schedule.mediaFaultKind > 2)
        return std::nullopt;
    if (schedule.degradeTier < -1 || schedule.degradeTier > 1)
        return std::nullopt; // only Core/Metadata cuts are degraded
    if (schedule.ackDelay >= schedule.opSpacing)
        return std::nullopt; // workload must stay sequential
    if (schedule.fleetNodes > 64)
        return std::nullopt; // kill mask is a 64-bit word
    if (schedule.fleetNodes > 0 && schedule.fleetReplication == 0)
        return std::nullopt;
    if (schedule.fleetPolicy < 0 || schedule.fleetPolicy > 2)
        return std::nullopt;
    return schedule;
}

bool
CrashSchedule::writeFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out) {
        warn("cannot write crash schedule to '%s'", path.c_str());
        return false;
    }
    out << serialize();
    out.close();
    return static_cast<bool>(out);
}

std::optional<CrashSchedule>
CrashSchedule::readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        warn("cannot read crash schedule from '%s'", path.c_str());
        return std::nullopt;
    }
    std::ostringstream text;
    text << in.rdbuf();
    return parse(text.str());
}

std::string
CrashSchedule::summary() const
{
    char line[256];
    std::snprintf(
        line, sizeof(line),
        "window=%s ops=%u train=%u outage=%s%s%s%s%s%s seed=%llu",
        formatTime(window).c_str(), ops, trainCycles,
        formatTime(outage).c_str(),
        drainModule >= 0 ? " drained-cap" : "",
        undersizedCaps ? " undersized-caps" : "",
        withDevices ? " devices" : "",
        saveOrder == SaveOrder::MarkerBeforeFlush ? " BROKEN-ORDER"
                                                  : "",
        parallelSave ? " parallel-save" : "",
        static_cast<unsigned long long>(seed));
    std::string text = line;
    if (shards > 1)
        text += " shards=" + std::to_string(shards);
    if (salvage)
        text += " salvage";
    if (mediaFaults > 0)
        text += " media-faults=" + std::to_string(mediaFaults);
    if (degradeTier >= 0)
        text += " degrade-tier=" + std::to_string(degradeTier);
    if (dropSaveCommands > 0)
        text += " drop-cmds=" + std::to_string(dropSaveCommands);
    if (trustDirectory)
        text += " TRUST-DIR";
    if (!incrementalSave)
        text += " full-saves-only";
    if (lazyRestore)
        text += " lazy-restore";
    if (!blackBox)
        text += " no-black-box";
    if (condition != ConditionMode::All)
        text += std::string(" condition=") + conditionModeName(condition);
    if (ackBeforeApply)
        text += " ACK-BEFORE-APPLY";
    if (fleetNodes > 0) {
        text += " fleet=" + std::to_string(fleetNodes) + "/r" +
                std::to_string(fleetReplication);
        char mask[32];
        std::snprintf(mask, sizeof(mask), " kill=0x%llx",
                      static_cast<unsigned long long>(fleetKillMask));
        text += mask;
        text += fleetPolicy == 1   ? " refill"
                : fleetPolicy == 2 ? " degraded-tier"
                                   : " wsp-local";
    }
    return text;
}

} // namespace wsp::crashsim
