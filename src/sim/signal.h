/**
 * @file
 * Observable signal wires between simulation models.
 *
 * Signal<T> models a wire (PWR_OK, a DC rail voltage, an interrupt
 * line): it has a current level and notifies observers on change.
 * Observers run synchronously at the tick of the change.
 */

#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace wsp {

/** A level-valued wire with change observers. */
template <typename T>
class Signal
{
  public:
    using Observer = std::function<void(const T &old_value,
                                        const T &new_value)>;

    explicit Signal(T initial = T{}) : value_(std::move(initial)) {}

    const T &value() const { return value_; }

    /** Drive the wire; observers fire only when the level changes. */
    void
    set(const T &new_value)
    {
        if (new_value == value_)
            return;
        T old_value = value_;
        value_ = new_value;
        // Copy the observer list: an observer may subscribe others.
        auto observers = observers_;
        for (auto &obs : observers)
            obs(old_value, value_);
    }

    /** Subscribe to level changes. */
    void observe(Observer obs) { observers_.push_back(std::move(obs)); }

    /** Subscribe to changes matching a specific new level. */
    void
    observeEdge(const T &level, std::function<void()> fn)
    {
        observers_.push_back(
            [level, fn = std::move(fn)](const T &, const T &now_value) {
                if (now_value == level)
                    fn();
            });
    }

    size_t observers() const { return observers_.size(); }

  private:
    T value_;
    std::vector<Observer> observers_;
};

/** Convenience alias for single-bit wires such as PWR_OK. */
using Wire = Signal<bool>;

} // namespace wsp
