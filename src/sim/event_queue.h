/**
 * @file
 * Discrete-event simulation engine.
 *
 * The hardware substrates (power supply, NVDIMMs, machine, devices)
 * advance simulated time through a single EventQueue. Events at the
 * same tick fire in scheduling order (FIFO), which keeps runs fully
 * deterministic for a given seed.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "util/units.h"

namespace wsp {

/** Opaque handle to a scheduled event, usable for cancellation. */
using EventId = uint64_t;

/** Sentinel EventId returned for no event. */
constexpr EventId kEventNone = 0;

/**
 * Priority queue of timed callbacks over simulated nanoseconds.
 *
 * The queue owns no simulation objects; models hold a reference to it
 * and schedule closures. run() drains events until the queue empties
 * or a stop condition fires; runUntil() advances to a target tick.
 */
class EventQueue
{
  public:
    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule @p fn at absolute tick @p when (>= now).
     * @return handle usable with cancel().
     */
    EventId schedule(Tick when, std::function<void()> fn);

    /** Schedule @p fn @p delay ticks from now. */
    EventId scheduleAfter(Tick delay, std::function<void()> fn);

    /** Cancel a pending event; returns false if already fired/unknown. */
    bool cancel(EventId id);

    /** Number of events still pending. */
    size_t pending() const { return live_.size(); }

    /** Run until the queue is empty. Returns the final tick. */
    Tick run();

    /**
     * Run events with tick <= @p when, then set now() to @p when even
     * if no event fired. Returns now().
     */
    Tick runUntil(Tick when);

    /** Fire exactly one event if any is pending; returns true if so. */
    bool step();

    /**
     * Request that run()/runUntil() return before dispatching further
     * events. Used by models that must freeze the world (e.g. the
     * instant system power is truly lost).
     */
    void requestStop() { stopRequested_ = true; }

    /** True if a stop was requested and not yet cleared. */
    bool stopRequested() const { return stopRequested_; }

    /** Clear a pending stop request. */
    void clearStop() { stopRequested_ = false; }

    /**
     * Install a callback invoked with the dispatch tick just before
     * every event fires (nullptr uninstalls). Event boundaries are
     * exactly the instants at which simulated state changes, so an
     * observer sees the complete set of distinguishable crash points
     * of a run; the crashsim enumerator uses this to build its sweep.
     */
    void setDispatchObserver(std::function<void(Tick)> observer)
    {
        dispatchObserver_ = std::move(observer);
    }

  private:
    struct Entry
    {
        Tick when;
        uint64_t seq;
        EventId id;
        std::function<void()> fn;

        bool
        operator>(const Entry &other) const
        {
            if (when != other.when)
                return when > other.when;
            return seq > other.seq;
        }
    };

    void dispatch(Entry &entry);

    /** Pop queue entries whose events were cancelled. */
    void purgeCancelledTop();

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
    std::function<void(Tick)> dispatchObserver_;
    std::unordered_set<EventId> live_;
    std::unordered_set<EventId> cancelled_;
    Tick now_ = 0;
    uint64_t nextSeq_ = 0;
    EventId nextId_ = 1;
    bool stopRequested_ = false;
};

} // namespace wsp
