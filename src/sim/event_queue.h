/**
 * @file
 * Discrete-event simulation engine.
 *
 * The hardware substrates (power supply, NVDIMMs, machine, devices)
 * advance simulated time through a single EventQueue. Events at the
 * same tick fire in scheduling order (FIFO), which keeps runs fully
 * deterministic for a given seed.
 *
 * Hot-path layout (see DESIGN.md §12): callbacks live in a
 * generational slot slab (util::Slab, one 64-byte line per slot), and
 * the priority structure is a 4-ary min-heap of 16-byte entries that
 * carry their own sort key — the tick plus a packed (schedule seq,
 * slot) word — so sift comparisons never leave the heap array and
 * four siblings share a cache line. Slot generations and heap
 * positions live in dense 32-bit side arrays, so the bookkeeping a
 * sift or a stale-handle check touches stays hot even when the slab
 * itself does not: cancel() is a direct O(log n) heap removal — no
 * tombstone sets, no lazy purging, and pending() is exactly the heap
 * size. EventIds pack (slot, generation) so a handle to a fired or
 * cancelled event goes stale the moment the slot is recycled;
 * cancellation of a stale handle is a two-compare rejection.
 * Callbacks are util::SmallFn with a 48-byte inline buffer, so the
 * closures models actually schedule (an object pointer plus a few
 * arguments) never touch the general-purpose heap.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "util/arena.h"
#include "util/logging.h"
#include "util/small_fn.h"
#include "util/units.h"

namespace wsp {

/**
 * Opaque handle to a scheduled event, usable for cancellation.
 * Packs (slot index + 1) in the high 32 bits and the slot's
 * generation in the low 32; kEventNone (0) never names an event.
 */
using EventId = uint64_t;

/** Sentinel EventId returned for no event. */
constexpr EventId kEventNone = 0;

/** Event callback: move-only, 48 bytes of inline capture space. */
using EventFn = util::SmallFn<48>;

/**
 * Priority queue of timed callbacks over simulated nanoseconds.
 *
 * The queue owns no simulation objects; models hold a reference to it
 * and schedule closures. run() drains events until the queue empties
 * or a stop condition fires; runUntil() advances to a target tick.
 */
class EventQueue
{
  public:
    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule @p fn at absolute tick @p when (>= now).
     * @return handle usable with cancel().
     *
     * Defined inline below (with cancel and the sift helpers): the
     * schedule/cancel pair is the per-event cost of every model, and
     * keeping it visible to callers lets the closure construction
     * fuse with the slab store.
     */
    EventId schedule(Tick when, EventFn fn);

    /** Schedule @p fn @p delay ticks from now. */
    EventId scheduleAfter(Tick delay, EventFn fn);

    /** Cancel a pending event; returns false if already fired/unknown. */
    bool cancel(EventId id);

    /** Number of events still pending. */
    size_t pending() const { return heap_.size(); }

    /** Run until the queue is empty. Returns the final tick. */
    Tick run();

    /**
     * Run events with tick <= @p when, then set now() to @p when even
     * if no event fired. Returns now().
     */
    Tick runUntil(Tick when);

    /** Fire exactly one event if any is pending; returns true if so. */
    bool step();

    /**
     * Request that run()/runUntil() return before dispatching further
     * events. Used by models that must freeze the world (e.g. the
     * instant system power is truly lost).
     */
    void requestStop() { stopRequested_ = true; }

    /** True if a stop was requested and not yet cleared. */
    bool stopRequested() const { return stopRequested_; }

    /** Clear a pending stop request. */
    void clearStop() { stopRequested_ = false; }

    /**
     * Install a callback invoked with the dispatch tick just before
     * every event fires (nullptr uninstalls). Event boundaries are
     * exactly the instants at which simulated state changes, so an
     * observer sees the complete set of distinguishable crash points
     * of a run; the crashsim enumerator uses this to build its sweep.
     */
    void setDispatchObserver(std::function<void(Tick)> observer)
    {
        dispatchObserver_ = std::move(observer);
    }

    /**
     * Verify the heap invariant and the slot/heap index cross-links;
     * aborts on corruption. For the differential test battery.
     */
    void checkConsistency() const;

  private:
    /** Children per heap node; 4 keeps the tree shallow and the
     *  sift loops within one or two cache lines of indices. */
    static constexpr uint32_t kArity = 4;

    /** heapIndex value marking a slot that is not queued. */
    static constexpr uint32_t kNotQueued = ~0u;

    /** Bits of the packed seq/slot word naming the slot. Bounds the
     *  queue at 16M concurrent events and 2^40 lifetime schedules. */
    static constexpr uint32_t kSlotBits = 24;
    static constexpr uint64_t kSlotMask = (uint64_t{1} << kSlotBits) - 1;

    /**
     * Heap entry: the full sort key travels with the slot index so
     * sift comparisons stay inside the heap array. seq occupies the
     * high bits of the packed word, so comparing the words compares
     * seqs (they are unique; the slot bits never decide).
     */
    struct HeapEntry
    {
        Tick when;
        uint64_t seqSlot;

        uint32_t slot() const
        {
            return static_cast<uint32_t>(seqSlot & kSlotMask);
        }
    };

    static EventId makeId(uint32_t slot, uint32_t generation)
    {
        return (static_cast<uint64_t>(slot + 1) << 32) | generation;
    }

    /** True when entry @p a fires strictly before entry @p b. */
    static bool firesBefore(const HeapEntry &a, const HeapEntry &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        return a.seqSlot < b.seqSlot;
    }

    /** Put @p entry at heap position @p pos and record the position. */
    void place(uint32_t pos, const HeapEntry &entry)
    {
        heap_[pos] = entry;
        heapIndex_[entry.slot()] = pos;
    }

    void siftUp(uint32_t pos);
    void siftDown(uint32_t pos);

    /** Remove the heap entry at @p pos, restoring the invariant. */
    void removeHeapAt(uint32_t pos);

    /** Remove the root entry (bottom-up hole sink; see definition). */
    void popTop();

    /** Fire the root event (sets now(), notifies the observer). */
    void dispatchTop();

    util::Slab<EventFn> slots_;
    std::vector<uint32_t> heapIndex_; ///< per-slot heap position
    std::vector<HeapEntry> heap_;
    std::function<void(Tick)> dispatchObserver_;
    Tick now_ = 0;
    uint64_t nextSeq_ = 0;
    bool stopRequested_ = false;
};

inline EventId
EventQueue::schedule(Tick when, EventFn fn)
{
    WSP_CHECK(static_cast<bool>(fn));
    if (when < now_)
        when = now_;
    const uint32_t slot = slots_.acquire();
    WSP_CHECKF(slot < kSlotMask, "EventQueue slot space exhausted");
    WSP_CHECKF(nextSeq_ < (uint64_t{1} << (64 - kSlotBits)),
               "EventQueue sequence space exhausted");
    if (slot >= heapIndex_.size())
        heapIndex_.resize(slot + 1, kNotQueued);
    slots_[slot] = std::move(fn);
    const uint32_t pos = static_cast<uint32_t>(heap_.size());
    heap_.push_back(HeapEntry{when, (nextSeq_++ << kSlotBits) | slot});
    heapIndex_[slot] = pos;
    siftUp(pos);
    return makeId(slot, slots_.generation(slot));
}

inline EventId
EventQueue::scheduleAfter(Tick delay, EventFn fn)
{
    WSP_CHECK(delay <= kTickNever - now_);
    return schedule(now_ + delay, std::move(fn));
}

inline bool
EventQueue::cancel(EventId id)
{
    const uint32_t index = static_cast<uint32_t>(id >> 32);
    if (index == 0)
        return false;
    const uint32_t slot = index - 1;
    const uint32_t generation = static_cast<uint32_t>(id);
    // Stale handles (fired or cancelled events) fail the generation
    // check; the heapIndex check rejects a recycled-but-idle slot.
    if (!slots_.alive(slot, generation))
        return false;
    if (heapIndex_[slot] == kNotQueued)
        return false;
    removeHeapAt(heapIndex_[slot]);
    slots_[slot] = EventFn(); // release the callback's resources now
    heapIndex_[slot] = kNotQueued;
    slots_.release(slot);
    return true;
}

inline void
EventQueue::siftUp(uint32_t pos)
{
    const HeapEntry moving = heap_[pos];
    while (pos > 0) {
        const uint32_t parent = (pos - 1) / kArity;
        if (!firesBefore(moving, heap_[parent]))
            break;
        place(pos, heap_[parent]);
        pos = parent;
    }
    place(pos, moving);
}

inline void
EventQueue::siftDown(uint32_t pos)
{
    const HeapEntry moving = heap_[pos];
    const uint32_t size = static_cast<uint32_t>(heap_.size());
    while (true) {
        const uint64_t first = uint64_t{pos} * kArity + 1;
        if (first >= size)
            break;
        const uint32_t last = static_cast<uint32_t>(
            first + kArity < size ? first + kArity : size);
        uint32_t best = static_cast<uint32_t>(first);
        for (uint32_t child = best + 1; child < last; ++child) {
            if (firesBefore(heap_[child], heap_[best]))
                best = child;
        }
        if (!firesBefore(heap_[best], moving))
            break;
        place(pos, heap_[best]);
        pos = best;
    }
    place(pos, moving);
}

inline void
EventQueue::removeHeapAt(uint32_t pos)
{
    const HeapEntry last = heap_.back();
    heap_.pop_back();
    if (pos == heap_.size())
        return;
    place(pos, last);
    // The hole filler may belong above or below its new position.
    if (pos > 0 && firesBefore(last, heap_[(pos - 1) / kArity]))
        siftUp(pos);
    else
        siftDown(pos);
}

inline void
EventQueue::popTop()
{
    const HeapEntry last = heap_.back();
    heap_.pop_back();
    const uint32_t size = static_cast<uint32_t>(heap_.size());
    if (size == 0)
        return;
    // Bottom-up removal: sink the root hole along the min-child path
    // to a leaf, then drop the ex-tail entry there and bubble it up.
    // Versus sifting the tail down from the root this skips the
    // per-level filler comparison, and because the tail is usually one
    // of the latest-firing entries, the bubble-up almost never moves.
    uint32_t pos = 0;
    while (true) {
        const uint64_t first = uint64_t{pos} * kArity + 1;
        if (first >= size)
            break;
        const uint32_t end = static_cast<uint32_t>(
            first + kArity < size ? first + kArity : size);
        uint32_t best = static_cast<uint32_t>(first);
        for (uint32_t child = best + 1; child < end; ++child) {
            if (firesBefore(heap_[child], heap_[best]))
                best = child;
        }
        place(pos, heap_[best]);
        pos = best;
    }
    place(pos, last);
    siftUp(pos);
}

} // namespace wsp
