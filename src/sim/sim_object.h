/**
 * @file
 * Base class for named simulation models.
 */

#pragma once

#include <string>
#include <utility>

#include "sim/event_queue.h"

namespace wsp {

/**
 * A named model attached to an EventQueue.
 *
 * SimObjects never own the queue; the experiment harness constructs
 * one queue and wires every model to it, mirroring how the paper's
 * prototype hangs every component off one physical power domain.
 */
class SimObject
{
  public:
    SimObject(EventQueue &queue, std::string name)
        : queue_(queue), name_(std::move(name))
    {}

    virtual ~SimObject() = default;

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    const std::string &name() const { return name_; }
    EventQueue &queue() { return queue_; }
    const EventQueue &queue() const { return queue_; }
    Tick now() const { return queue_.now(); }

  protected:
    EventQueue &queue_;

  private:
    std::string name_;
};

} // namespace wsp
