#include "sim/event_queue.h"

#include <algorithm>

#include "util/logging.h"

namespace wsp {

EventId
EventQueue::schedule(Tick when, std::function<void()> fn)
{
    WSP_CHECK(fn != nullptr);
    if (when < now_)
        when = now_;
    const EventId id = nextId_++;
    queue_.push(Entry{when, nextSeq_++, id, std::move(fn)});
    live_.insert(id);
    return id;
}

EventId
EventQueue::scheduleAfter(Tick delay, std::function<void()> fn)
{
    WSP_CHECK(delay <= kTickNever - now_);
    return schedule(now_ + delay, std::move(fn));
}

bool
EventQueue::cancel(EventId id)
{
    if (live_.erase(id) == 0)
        return false;
    // Lazy deletion: remember the id and drop the entry at pop time.
    cancelled_.insert(id);
    return true;
}

void
EventQueue::purgeCancelledTop()
{
    while (!queue_.empty() && cancelled_.count(queue_.top().id)) {
        cancelled_.erase(queue_.top().id);
        queue_.pop();
    }
}

void
EventQueue::dispatch(Entry &entry)
{
    WSP_CHECK(entry.when >= now_);
    now_ = entry.when;
    live_.erase(entry.id);
    if (dispatchObserver_)
        dispatchObserver_(entry.when);
    entry.fn();
}

bool
EventQueue::step()
{
    purgeCancelledTop();
    if (queue_.empty())
        return false;
    Entry entry = queue_.top();
    queue_.pop();
    dispatch(entry);
    return true;
}

Tick
EventQueue::run()
{
    while (!stopRequested_ && step()) {
    }
    return now_;
}

Tick
EventQueue::runUntil(Tick when)
{
    WSP_CHECK(when >= now_);
    while (!stopRequested_) {
        // Drop cancelled entries first so we never dispatch an event
        // beyond the target just because a cancelled one preceded it.
        purgeCancelledTop();
        if (queue_.empty() || queue_.top().when > when)
            break;
        Entry entry = queue_.top();
        queue_.pop();
        dispatch(entry);
    }
    if (!stopRequested_)
        now_ = when;
    return now_;
}

} // namespace wsp
