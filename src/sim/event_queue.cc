#include "sim/event_queue.h"

#include "util/logging.h"

namespace wsp {

void
EventQueue::dispatchTop()
{
    const uint32_t slot = heap_.front().slot();
    const Tick when = heap_.front().when;
    WSP_CHECK(when >= now_);
    // Move the callback out and retire the slot before firing: the
    // callback is free to schedule (possibly reusing this slot under a
    // fresh generation) or cancel anything it likes.
    EventFn fn = std::move(slots_[slot]);
    popTop();
    heapIndex_[slot] = kNotQueued;
    slots_.release(slot);
    now_ = when;
    if (dispatchObserver_)
        dispatchObserver_(when);
    fn();
}

bool
EventQueue::step()
{
    if (heap_.empty())
        return false;
    dispatchTop();
    return true;
}

Tick
EventQueue::run()
{
    while (!stopRequested_ && step()) {
    }
    return now_;
}

Tick
EventQueue::runUntil(Tick when)
{
    WSP_CHECK(when >= now_);
    // A callback may stop the drain (leaving now() at its own tick)
    // or schedule new events at or before the target, which must fire
    // in this drain; events exactly at the target tick are included.
    while (!stopRequested_ && !heap_.empty() && heap_.front().when <= when) {
        dispatchTop();
    }
    if (!stopRequested_)
        now_ = when;
    return now_;
}

void
EventQueue::checkConsistency() const
{
    for (uint32_t pos = 0; pos < heap_.size(); ++pos) {
        const HeapEntry &entry = heap_[pos];
        const uint32_t slot = entry.slot();
        WSP_CHECKF(slot < slots_.capacity(),
                   "heap names slot %u beyond the slab", slot);
        WSP_CHECKF(heapIndex_[slot] == pos,
                   "slot %u heapIndex %u disagrees with position %u",
                   slot, heapIndex_[slot], pos);
        if (pos > 0) {
            const HeapEntry &parent = heap_[(pos - 1) / kArity];
            WSP_CHECKF(!firesBefore(entry, parent),
                       "heap order violated at position %u", pos);
        }
    }
    WSP_CHECKF(slots_.liveCount() == heap_.size(),
               "%zu live slots but %zu queued events",
               slots_.liveCount(), heap_.size());
}

} // namespace wsp
