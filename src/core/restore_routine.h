/**
 * @file
 * Boot-path restore routine (paper Fig. 4, steps 10-14).
 *
 * On the first boot after a power failure:
 *
 *  10. the modified boot loader signals the NVDIMMs to restore their
 *      flash images into DRAM,
 *  11. it checks the valid-image marker (and the resume-block
 *      checksum bound into it),
 *  12. if valid, it jumps to the resume block,
 *  13. devices are re-initialized per the configured policy,
 *  14. processor contexts are restored and scheduling resumes.
 *
 * If the marker is missing, torn, or does not match the resume block
 * (a failure hit mid-save), the routine falls back to a normal cold
 * boot and invokes the caller's back-end recovery hook instead.
 */

#pragma once

#include <functional>

#include "core/resume_block.h"
#include "core/valid_marker.h"
#include "core/wsp_config.h"
#include "machine/machine.h"
#include "nvram/controller.h"

namespace wsp {

/** Event-driven implementation of the WSP restore. */
class RestoreRoutine
{
  public:
    RestoreRoutine(MachineModel &machine, NvdimmController &nvdimms,
                   ValidMarker &marker, ResumeBlock &resume_block,
                   DeviceManager *devices, const WspConfig &config);

    /**
     * Run the boot path. @p backend_recovery runs (if non-null) when
     * WSP recovery is impossible and state must be refreshed from the
     * storage back end; @p done receives the final report either way.
     */
    void run(std::function<void()> backend_recovery,
             std::function<void(RestoreReport)> done);

  private:
    void stepNvdimmRestore();
    void stepCheckMarker();
    void stepRestoreContexts();
    void stepDevices();
    void finish(bool used_wsp);
    void fallbackColdBoot(const char *reason);

    void record(const char *step, Tick start, Tick end);

    MachineModel &machine_;
    NvdimmController &nvdimms_;
    ValidMarker &marker_;
    ResumeBlock &resumeBlock_;
    DeviceManager *devices_;
    const WspConfig &config_;

    EventQueue &queue_;
    std::function<void()> backendRecovery_;
    std::function<void(RestoreReport)> done_;
    RestoreReport report_;
};

} // namespace wsp
