/**
 * @file
 * Boot-path restore routine (paper Fig. 4, steps 10-14).
 *
 * On the first boot after a power failure:
 *
 *  10. the modified boot loader signals the NVDIMMs to restore their
 *      flash images into DRAM,
 *  11. it checks the valid-image marker (and the resume-block
 *      checksum bound into it),
 *  12. if valid, it jumps to the resume block,
 *  13. devices are re-initialized per the configured policy,
 *  14. processor contexts are restored and scheduling resumes.
 *
 * When whole-system resume is impossible — the marker is missing or
 * torn, the image generation is stale, a module's save died partway,
 * or the save ran degraded — the routine no longer throws the whole
 * image away. It decodes the salvage directory the save left at the
 * top of memory, re-verifies each region's CRC against what actually
 * reached flash, keeps the intact regions, scrubs and quarantines the
 * corrupt ones (handing each to a per-region recovery hook), and cold
 * boots around the salvaged state. Only when no trustworthy directory
 * exists does it fall back to the legacy full cold boot with the
 * caller's whole-store back-end recovery hook.
 */

#pragma once

#include <functional>

#include "core/resume_block.h"
#include "core/salvage_directory.h"
#include "core/valid_marker.h"
#include "core/wsp_config.h"
#include "machine/machine.h"
#include "nvram/controller.h"

namespace wsp {

/** Event-driven implementation of the WSP restore. */
class RestoreRoutine
{
  public:
    RestoreRoutine(MachineModel &machine, NvdimmController &nvdimms,
                   ValidMarker &marker, ResumeBlock &resume_block,
                   DeviceManager *devices, const WspConfig &config,
                   SalvageDirectory *directory = nullptr);

    /**
     * Run the boot path. @p backend_recovery runs (if non-null) when
     * WSP recovery is impossible and state must be refreshed from the
     * storage back end; @p done receives the final report either way.
     */
    void run(std::function<void()> backend_recovery,
             std::function<void(RestoreReport)> done);

    /**
     * Hook invoked once per quarantined region (after its scrub), so
     * the owning application can rebuild exactly that shard from its
     * back end instead of the whole store.
     */
    void setRegionRecovery(std::function<void(const RegionOutcome &)> hook);

  private:
    void stepNvdimmRestore();
    void stepCheckMarker();
    void stepVerifyRegions(const MarkerState &state);
    void stepRestoreContexts();
    void stepDevices();
    void finish(bool used_wsp);
    void fallbackColdBoot(const char *reason);
    void trySalvageColdBoot(const char *reason);

    /** Verify/scrub/recover one directory entry; updates the report. */
    void processRegion(const SalvageDirectoryEntry &entry);

    void record(const char *step, Tick start, Tick end);

    MachineModel &machine_;
    NvdimmController &nvdimms_;
    ValidMarker &marker_;
    ResumeBlock &resumeBlock_;
    DeviceManager *devices_;
    const WspConfig &config_;
    SalvageDirectory *directory_;

    EventQueue &queue_;
    std::function<void()> backendRecovery_;
    std::function<void(const RegionOutcome &)> regionRecovery_;
    std::function<void(RestoreReport)> done_;
    RestoreReport report_;
};

} // namespace wsp
