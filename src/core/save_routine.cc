#include "core/save_routine.h"

#include <algorithm>
#include <cstdio>
#include <memory>

#include "trace/flight_recorder.h"
#include "trace/stat_registry.h"
#include "trace/trace.h"
#include "util/logging.h"

namespace wsp {

std::string
restoreModeName(RestoreMode mode)
{
    switch (mode) {
      case RestoreMode::WholeSystem:
        return "whole-system";
      case RestoreMode::ProcessOnly:
        return "process-only";
    }
    return "unknown";
}

std::string
flushMethodName(FlushMethod method)
{
    switch (method) {
      case FlushMethod::Wbinvd:
        return "wbinvd";
      case FlushMethod::ClflushLoop:
        return "clflush";
    }
    return "unknown";
}

std::string
saveOrderName(SaveOrder order)
{
    switch (order) {
      case SaveOrder::MarkerAfterFlush:
        return "marker-after-flush";
      case SaveOrder::MarkerBeforeFlush:
        return "marker-before-flush";
    }
    return "unknown";
}

std::string
saveTierName(SaveTier tier)
{
    switch (tier) {
      case SaveTier::Core:
        return "core";
      case SaveTier::Metadata:
        return "metadata";
      case SaveTier::Bulk:
        return "bulk";
    }
    return "unknown";
}

bool
SaveRoutine::stepReached(const SaveReport &report, const char *step)
{
    for (const auto &timing : report.steps) {
        if (timing.step == step)
            return true;
    }
    return false;
}

SaveRoutine::SaveRoutine(MachineModel &machine, PowerMonitor &monitor,
                         ValidMarker &marker, ResumeBlock &resume_block,
                         DeviceManager *devices, const WspConfig &config,
                         NvdimmController *nvdimms,
                         SalvageDirectory *directory)
    : machine_(machine), monitor_(monitor), marker_(marker),
      resumeBlock_(resume_block), devices_(devices), config_(config),
      nvdimms_(nvdimms), directory_(directory), queue_(machine.queue())
{
}

Tick
SaveRoutine::flushCost(unsigned socket) const
{
    CacheModel &cache = machine_.socketCache(socket);
    switch (config_.flushMethod) {
      case FlushMethod::Wbinvd:
        return cache.wbinvdCost();
      case FlushMethod::ClflushLoop:
        // Software cannot know which lines are dirty (the paper's
        // observation), so the loop walks the entire cache.
        return cache.clflushLoopCost(cache.capacity() /
                                     CacheModel::kLineSize);
    }
    return 0;
}

void
SaveRoutine::record(const std::string &step, Tick start, Tick end)
{
    report_.steps.push_back(StepTiming{step, start, end});
    // Steps complete inside event callbacks with explicit (start, end)
    // ticks, so emit the span retroactively rather than via RAII.
    if (trace::enabled(trace::Category::Core)) {
        auto &manager = trace::TraceManager::instance();
        manager.emitAt(trace::Category::Core, trace::Phase::Begin,
                       step.c_str(), start);
        manager.emitAt(trace::Category::Core, trace::Phase::End,
                       step.c_str(), end);
    }
    // Gauge names derive from the step name, not its position in the
    // report: under the parallel flush the per-core steps land in
    // completion order, so a positional name would bind a different
    // step from run to run.
    std::string name = "core.save.step.";
    for (char c : step) {
        const bool word = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                          (c >= '0' && c <= '9');
        name += word ? c : '_';
    }
    name += "_ns";
    trace::StatRegistry::instance().gauge(name).set(
        static_cast<double>(end - start));
}

void
SaveRoutine::run(uint64_t boot_sequence,
                 std::function<void(SaveReport)> done)
{
    run(boot_sequence, false, std::move(done));
}

void
SaveRoutine::run(uint64_t boot_sequence, bool degraded_hint,
                 std::function<void(SaveReport)> done)
{
    bootSequence_ = boot_sequence;
    done_ = std::move(done);
    report_ = SaveReport{};
    report_.started = queue_.now();
    trace::StatRegistry::instance().counter("core.saves_started").add();
    trace::TraceManager::instance().emitAt(
        trace::Category::Core, trace::Phase::Instant, "SaveRoutine start",
        report_.started);
    report_.dirtyBytesFlushed = machine_.totalDirtyBytes();

    // Degraded-mode decision: a forced config, the platform's health
    // verdict, or a promised residual window the full save cannot
    // meet. The cut is the deepest tier predicted to fit.
    degraded_ = config_.forceDegradedSave || degraded_hint;
    tierCut_ = SaveTier::Bulk;
    if (degraded_) {
        tierCut_ = config_.degradedTierCut;
    } else if (config_.plannedResidualWindow > 0 &&
               predictDuration() > config_.plannedResidualWindow) {
        degraded_ = true;
        tierCut_ = predictDurationForTier(SaveTier::Metadata) <=
                           config_.plannedResidualWindow
                       ? SaveTier::Metadata
                       : SaveTier::Core;
    }
    report_.degraded = degraded_;
    report_.tierCut = tierCut_;
    if (directory_ != nullptr) {
        for (const SalvageRegionSpec &region : directory_->regions()) {
            if (region.tier > tierCut_)
                ++report_.regionsDropped;
        }
    }
    if (degraded_) {
        trace::StatRegistry::instance().counter("core.saves_degraded").add();
        warn("save routine: DEGRADED save, tier cut '%s', %u regions "
             "dropped",
             saveTierName(tierCut_).c_str(), report_.regionsDropped);
    }
    // Black box: the save's opening records go in write-ahead, while
    // the recorder's backing module is still Active and accepting
    // host writes.
    trace::frEmit(trace::FrEvent::SaveBegin, trace::Category::Core,
                  bootSequence_, degraded_ ? 1 : 0);
    if (degraded_) {
        trace::frEmit(trace::FrEvent::SaveTierCut, trace::Category::Core,
                      static_cast<uint64_t>(tierCut_),
                      report_.regionsDropped);
    }
    record("interrupt control processor", queue_.now(), queue_.now());

    // A degraded save never spends its window on device suspend: the
    // strawman policy's cost is exactly what the remaining energy
    // cannot afford.
    if (!degraded_ &&
        config_.devicePolicy == DevicePolicy::AcpiSuspendOnSave &&
        devices_ != nullptr) {
        // Strawman: quiesce every device before touching CPU state.
        // Fig. 9 shows why this is infeasible within the residual
        // window.
        const Tick start = queue_.now();
        auto after = [this, start](Tick total) {
            if (!machine_.powerOn())
                return;
            report_.deviceSuspendTime = total;
            record("acpi device suspend", start, queue_.now());
            stepIpis();
        };
        if (config_.parallelDeviceSuspend)
            devices_->suspendAllParallel(std::move(after));
        else
            devices_->suspendAll(std::move(after));
        return;
    }
    stepIpis();
}

void
SaveRoutine::stepIpis()
{
    const Tick start = queue_.now();
    // Account the IPI fan-out in the controller's statistics.
    for (unsigned i = 1; i < machine_.coreCount(); ++i)
        machine_.interrupts().sendIpi(i, [](unsigned) {});

    queue_.scheduleAfter(machine_.interrupts().ipiLatency(), [this, start] {
        if (!machine_.powerOn())
            return;
        record("IPI all processors", start, queue_.now());
        stepContextsAndFlush();
    });
}

void
SaveRoutine::stepContextsAndFlush()
{
    // Every processor saves its own context into the resume block;
    // they run in parallel, so the step costs one context save plus
    // the slot flushes. The functional writes land when the step
    // completes, so a power loss mid-step loses them, as on hardware.
    const Tick start = queue_.now();
    const uint64_t slot_lines =
        (CpuContext::serializedSize() + CacheModel::kLineSize - 1) /
        CacheModel::kLineSize;
    const Tick ctx_cost =
        machine_.spec().contextSaveLatency +
        machine_.socketCache(0).clflushLoopCost(slot_lines);
    report_.contextSaveTime = ctx_cost;

    queue_.scheduleAfter(ctx_cost, [this, start] {
        if (!machine_.powerOn())
            return;
        for (unsigned i = 0; i < machine_.coreCount(); ++i)
            resumeBlock_.saveContext(i, machine_.core(i).context);
        record("save processor contexts", start, queue_.now());
        // The broken ordering stamps the marker first and flushes
        // afterwards — the bug the crashsim sweep exists to catch.
        if (config_.saveOrder == SaveOrder::MarkerBeforeFlush)
            stepMarkerPrepare();
        else if (degraded_)
            stepDegradedFlush();
        else
            stepFinishFlush();
    });
}

unsigned
SaveRoutine::flushWorkers(unsigned socket) const
{
    (void)socket; // all presets are symmetric across sockets
    const unsigned cpus = std::max(1u, machine_.spec().logicalCpusPerSocket());
    if (config_.flushWorkersPerSocket == 0)
        return cpus;
    return std::min(config_.flushWorkersPerSocket, cpus);
}

void
SaveRoutine::stepFinishFlush()
{
    if (config_.parallelFlush) {
        stepParallelFlush(queue_.now());
        return;
    }
    // One designated processor per socket flushes that socket's
    // cache; sockets proceed in parallel, so the barrier is the
    // slowest socket.
    const Tick start = queue_.now();
    Tick worst = 0;
    for (unsigned socket = 0; socket < machine_.socketCount(); ++socket)
        worst = std::max(worst, flushCost(socket));
    report_.cacheFlushTime = worst;

    queue_.scheduleAfter(worst, [this, start] {
        if (!machine_.powerOn())
            return;
        // Functionally, both flush methods write back every dirty
        // line of every socket cache.
        for (unsigned socket = 0; socket < machine_.socketCount();
             ++socket) {
            CacheModel &cache = machine_.socketCache(socket);
            const uint64_t bytes = cache.dirtyBytes();
            cache.wbinvd();
            trace::frEmit(trace::FrEvent::SaveFlushWave,
                          trace::Category::Machine,
                          static_cast<uint64_t>(socket) << 32, bytes);
        }
        record("flush caches (all sockets)", start, queue_.now());
        afterFlush();
    });
}

void
SaveRoutine::stepParallelFlush(Tick start)
{
    // Every logical CPU of a socket flushes its own partition of that
    // socket's dirty lines; partitions proceed concurrently across the
    // whole machine, so the residual-energy window is charged the
    // slowest worker (the barrier), never the sum. Each worker's
    // completion is its own event: a power loss mid-step leaves
    // exactly the partitions that finished written back, and each
    // worker records its own progress step, so the post-failure report
    // stays readable without any cross-core ordering assumption.
    Tick worst = 0;
    auto remaining = std::make_shared<unsigned>(0);
    for (unsigned socket = 0; socket < machine_.socketCount(); ++socket) {
        const unsigned workers = flushWorkers(socket);
        CacheModel &cache = machine_.socketCache(socket);
        *remaining += workers;
        for (unsigned w = 0; w < workers; ++w) {
            const Tick cost = cache.partitionFlushCost(w, workers);
            worst = std::max(worst, cost);
            queue_.scheduleAfter(
                cost, [this, start, socket, w, workers, remaining] {
                    if (!machine_.powerOn())
                        return;
                    CacheModel &cache = machine_.socketCache(socket);
                    const uint64_t bytes =
                        cache.partitionDirtyLines(w, workers) *
                        CacheModel::kLineSize;
                    cache.flushPartition(w, workers);
                    trace::frEmit(trace::FrEvent::SaveFlushWave,
                                  trace::Category::Machine,
                                  (static_cast<uint64_t>(socket) << 32) |
                                      w,
                                  bytes);
                    char step[64];
                    std::snprintf(step, sizeof(step),
                                  "flush partition socket%u core%u", socket,
                                  w);
                    record(step, start, queue_.now());
                    WSP_CHECK(*remaining > 0);
                    if (--*remaining > 0)
                        return;
                    // Barrier: the canonical step name is recorded
                    // only when every partition is in NVRAM, so the
                    // marker-ordering invariants hold unchanged.
                    record("flush caches (all sockets)", start,
                           queue_.now());
                    afterFlush();
                });
        }
    }
    report_.cacheFlushTime = worst;
}

void
SaveRoutine::stepDegradedFlush()
{
    // Degraded mode cannot afford the whole-cache walk, so one
    // designated processor clflushes exactly the lines of the
    // registered regions at or above the tier cut. Everything else
    // dirty in the caches is deliberately sacrificed: those lines
    // never reach NVRAM and the image can only be salvaged, never
    // whole-resumed (the marker records the cut).
    const Tick start = queue_.now();
    const uint64_t lines =
        directory_ != nullptr ? directory_->regionLines(tierCut_) : 0;
    const Tick cost = machine_.socketCache(0).clflushLoopCost(lines);
    report_.cacheFlushTime = cost;

    queue_.scheduleAfter(cost, [this, start] {
        if (!machine_.powerOn())
            return;
        if (directory_ != nullptr) {
            for (const SalvageRegionSpec &region : directory_->regions()) {
                if (region.tier > tierCut_)
                    continue;
                const uint64_t first =
                    region.base & ~(CacheModel::kLineSize - 1);
                for (uint64_t addr = first;
                     addr < region.base + region.size;
                     addr += CacheModel::kLineSize) {
                    // A line may be dirty in any socket's cache.
                    for (unsigned socket = 0;
                         socket < machine_.socketCount(); ++socket)
                        machine_.socketCache(socket).flushLine(addr);
                }
            }
        }
        trace::frEmit(trace::FrEvent::SaveFlushWave,
                      trace::Category::Machine, 0,
                      (directory_ != nullptr
                           ? directory_->regionLines(tierCut_)
                           : 0) *
                          CacheModel::kLineSize);
        record("flush tier regions (degraded)", start, queue_.now());
        afterFlush();
    });
}

void
SaveRoutine::afterFlush()
{
    // Step 4: halt the N-1 non-control processors.
    for (unsigned i = 1; i < machine_.coreCount(); ++i)
        machine_.core(i).halted = true;
    record("halt N-1 processors", queue_.now(), queue_.now());
    if (config_.saveOrder == SaveOrder::MarkerBeforeFlush)
        stepInitiateNvdimmSave(); // marker was stamped already
    else if (directory_ != nullptr && !directory_->empty())
        stepPersistDirectory();
    else
        stepMarkerPrepare();
}

void
SaveRoutine::stepPersistDirectory()
{
    // Between the flush and the marker: every region at or above the
    // cut is now in NVRAM, so checksum it there and persist the
    // salvage directory. The marker then binds the directory's
    // checksum — a restore can trust the table exactly as far as it
    // trusts the marker.
    const Tick start = queue_.now();
    const Tick cost = directoryCost(tierCut_);
    queue_.scheduleAfter(cost, [this, start] {
        if (!machine_.powerOn())
            return;
        report_.directoryChecksum =
            directory_->persist(machine_.memory(), bootSequence_, tierCut_);
        record("checksum and persist salvage directory", start,
               queue_.now());
        stepMarkerPrepare();
    });
}

Tick
SaveRoutine::directoryCost(SaveTier cut) const
{
    if (directory_ == nullptr || directory_->empty())
        return 0;
    const double crc_seconds =
        static_cast<double>(directory_->savedBytes(cut)) /
        config_.salvageCrcBandwidth;
    return fromSeconds(crc_seconds) +
           machine_.socketCache(0).clflushLoopCost(
               SalvageDirectory::directoryLines());
}

void
SaveRoutine::stepMarkerPrepare()
{
    const Tick start = queue_.now();
    // Header line + marker field line: two line flushes.
    const Tick cost = machine_.socketCache(0).clflushLoopCost(2);
    queue_.scheduleAfter(cost, [this, start] {
        if (!machine_.powerOn())
            return;
        resumeBlock_.writeHeader(bootSequence_);
        marker_.prepare(bootSequence_,
                        resumeBlock_.checksum(machine_.memory()),
                        report_.directoryChecksum,
                        static_cast<uint64_t>(tierCut_));
        record("set up resume block", start, queue_.now());
        stepMarkerStamp();
    });
}

void
SaveRoutine::stepMarkerStamp()
{
    const Tick start = queue_.now();
    const Tick cost = machine_.socketCache(0).clflushLoopCost(1);
    report_.markerTime = cost;
    queue_.scheduleAfter(cost, [this, start] {
        if (!machine_.powerOn())
            return;
        marker_.stamp();
        trace::frEmit(trace::FrEvent::SaveMarkerStamp,
                      trace::Category::Core, bootSequence_,
                      static_cast<uint64_t>(tierCut_));
        record("mark image as valid", start, queue_.now());
        if (config_.saveOrder != SaveOrder::MarkerBeforeFlush)
            stepInitiateNvdimmSave();
        else if (degraded_)
            stepDegradedFlush();
        else
            stepFinishFlush();
    });
}

void
SaveRoutine::stepInitiateNvdimmSave()
{
    const Tick start = queue_.now();
    queue_.scheduleAfter(config_.commandIssueLatency, [this, start] {
        if (!machine_.powerOn())
            return;
        // The command rides the I2C bus; the NVDIMMs take it from
        // here on their own power. The black-box record goes in
        // write-ahead: once a module starts saving it stops accepting
        // host writes, so this is the last record guaranteed to reach
        // the ring before the machine goes dark.
        trace::frEmit(trace::FrEvent::SaveNvdimmInitiate,
                      trace::Category::Nvram,
                      nvdimms_ != nullptr ? nvdimms_->modules().size()
                                          : 0,
                      degraded_ ? 1 : 0);
        monitor_.sendCommand(PowerMonitor::Command::Save);
        record("initiate NVDIMM save", start, queue_.now());

        if (degraded_ && nvdimms_ != nullptr) {
            // Degraded saves assume the worst of the I2C path too:
            // stay awake one backoff, and if no module acknowledged
            // the command by starting its save, issue it once more
            // before halting.
            const uint64_t saves_before = nvdimms_->totalSavesCompleted();
            queue_.scheduleAfter(
                config_.saveCommandRetryBackoff, [this, saves_before] {
                    if (!machine_.powerOn())
                        return;
                    if (!nvdimms_->anySaving() &&
                        nvdimms_->totalSavesCompleted() == saves_before) {
                        const Tick retry_start = queue_.now();
                        ++report_.saveCommandRetries;
                        trace::StatRegistry::instance()
                            .counter("core.save_command_retries").add();
                        trace::frEmit(trace::FrEvent::SaveCommandRetry,
                                      trace::Category::Nvram,
                                      report_.saveCommandRetries, 0);
                        monitor_.sendCommand(PowerMonitor::Command::Save);
                        record("retry NVDIMM save command", retry_start,
                               queue_.now());
                    }
                    stepHalt();
                });
            return;
        }
        stepHalt();
    });
}

void
SaveRoutine::stepHalt()
{
    // Step 8: the control processor halts.
    machine_.core(0).halted = true;
    trace::frEmit(trace::FrEvent::SaveHalt, trace::Category::Core,
                  machine_.coreCount(), 0);
    record("halt control processor", queue_.now(), queue_.now());
    report_.halted = queue_.now();
    report_.completed = true;
    auto &registry = trace::StatRegistry::instance();
    registry.counter("core.saves_completed").add();
    registry.gauge("core.save.total_ns")
        .set(static_cast<double>(report_.halted - report_.started));
    if (done_)
        done_(report_);
}

Tick
SaveRoutine::predictDuration() const
{
    Tick total = machine_.interrupts().ipiLatency();
    total += machine_.spec().contextSaveLatency;
    // Slot flushes: one context's worth of clflushes.
    const uint64_t slot_lines =
        (CpuContext::serializedSize() + CacheModel::kLineSize - 1) /
        CacheModel::kLineSize;
    total += machine_.socketCache(0).clflushLoopCost(slot_lines);

    Tick worst = 0;
    for (unsigned socket = 0; socket < machine_.socketCount(); ++socket) {
        const Tick cost =
            config_.parallelFlush
                ? machine_.socketCache(socket).parallelFlushCost(
                      flushWorkers(socket))
                : flushCost(socket);
        worst = std::max(worst, cost);
    }
    total += worst;

    total += directoryCost(SaveTier::Bulk);
    // Header + marker lines + command issue.
    total += machine_.socketCache(0).clflushLoopCost(3);
    total += config_.commandIssueLatency;
    return total;
}

Tick
SaveRoutine::predictDurationForTier(SaveTier cut) const
{
    Tick total = machine_.interrupts().ipiLatency();
    total += machine_.spec().contextSaveLatency;
    const uint64_t slot_lines =
        (CpuContext::serializedSize() + CacheModel::kLineSize - 1) /
        CacheModel::kLineSize;
    total += machine_.socketCache(0).clflushLoopCost(slot_lines);

    // Tier flush instead of the whole-cache walk.
    const uint64_t lines =
        directory_ != nullptr ? directory_->regionLines(cut) : 0;
    total += machine_.socketCache(0).clflushLoopCost(lines);

    total += directoryCost(cut);
    total += machine_.socketCache(0).clflushLoopCost(3);
    total += config_.commandIssueLatency;
    // The degraded path always waits out one retry backoff before the
    // control processor halts.
    total += config_.saveCommandRetryBackoff;
    return total;
}

} // namespace wsp
