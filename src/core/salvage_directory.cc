#include "core/salvage_directory.h"

#include <algorithm>
#include <cstring>

#include "util/checksum.h"
#include "util/logging.h"

namespace wsp {

namespace {

// Entry layout (kEntryBytes = 64):
//   [ 0, 24) region name, zero padded
//   [24, 32) base
//   [32, 40) size
//   [40, 48) content CRC64
//   [48, 56) tier (low byte) | saved flag (bit 8)
//   [56, 64) entry checksum over [0, 56)
constexpr uint64_t kOffName = 0;
constexpr uint64_t kOffBase = 24;
constexpr uint64_t kOffSize = 32;
constexpr uint64_t kOffCrc = 40;
constexpr uint64_t kOffFlags = 48;
constexpr uint64_t kOffEntryCrc = 56;

// Header layout (kHeaderBytes = 64):
//   [ 0,  8) magic  [ 8, 16) generation  [16, 24) count
//   [24, 32) tier cut  [32, 40) entries-checksum
//   [40, 48) header checksum over the five fields above
constexpr uint64_t kOffMagic = 0;
constexpr uint64_t kOffGeneration = 8;
constexpr uint64_t kOffCount = 16;
constexpr uint64_t kOffTierCut = 24;
constexpr uint64_t kOffEntriesChecksum = 32;
constexpr uint64_t kOffHeaderCrc = 40;

uint64_t
readField(std::span<const uint8_t> bytes, uint64_t off)
{
    uint64_t value = 0;
    std::memcpy(&value, bytes.data() + off, sizeof(value));
    return value;
}

void
writeField(std::span<uint8_t> bytes, uint64_t off, uint64_t value)
{
    std::memcpy(bytes.data() + off, &value, sizeof(value));
}

uint64_t
headerChecksum(uint64_t generation, uint64_t count, uint64_t tier_cut,
               uint64_t entries_checksum)
{
    uint64_t crc = fnv1aU64(SalvageDirectory::kHeaderBytes);
    crc = fnv1aU64(generation, crc);
    crc = fnv1aU64(count, crc);
    crc = fnv1aU64(tier_cut, crc);
    return fnv1aU64(entries_checksum, crc);
}

} // namespace

SalvageDirectory::SalvageDirectory(CacheModel &cache, uint64_t base)
    : cache_(cache), base_(base)
{
    WSP_CHECK(base % CacheModel::kLineSize == 0);
}

void
SalvageDirectory::registerRegion(SalvageRegionSpec spec)
{
    WSP_CHECKF(regions_.size() < kMaxRegions,
               "salvage directory full (%zu regions)", kMaxRegions);
    WSP_CHECKF(spec.size > 0, "salvage region '%s' is empty",
               spec.name.c_str());
    WSP_CHECKF(spec.name.size() <= kMaxNameBytes,
               "salvage region name '%s' exceeds %zu bytes",
               spec.name.c_str(), kMaxNameBytes);
    WSP_CHECKF(spec.base + spec.size <= base_ ||
                   spec.base >= base_ + kSize,
               "salvage region '%s' overlaps the directory itself",
               spec.name.c_str());
    for (const SalvageRegionSpec &other : regions_) {
        WSP_CHECKF(spec.base + spec.size <= other.base ||
                       spec.base >= other.base + other.size,
                   "salvage regions '%s' and '%s' overlap",
                   spec.name.c_str(), other.name.c_str());
        WSP_CHECKF(spec.name != other.name,
                   "duplicate salvage region name '%s'", spec.name.c_str());
    }
    regions_.push_back(std::move(spec));
}

uint64_t
SalvageDirectory::regionLines(SaveTier cut) const
{
    uint64_t lines = 0;
    for (const SalvageRegionSpec &region : regions_) {
        if (region.tier > cut)
            continue;
        const uint64_t first = region.base / CacheModel::kLineSize;
        const uint64_t last =
            (region.base + region.size - 1) / CacheModel::kLineSize;
        lines += last - first + 1;
    }
    return lines;
}

uint64_t
SalvageDirectory::savedBytes(SaveTier cut) const
{
    uint64_t bytes = 0;
    for (const SalvageRegionSpec &region : regions_) {
        if (region.tier <= cut)
            bytes += region.size;
    }
    return bytes;
}

uint64_t
SalvageDirectory::regionCrc(const NvramSpace &memory, uint64_t base,
                            uint64_t size)
{
    std::vector<uint8_t> chunk;
    uint64_t crc = 0;
    uint64_t offset = 0;
    while (offset < size) {
        const uint64_t n = std::min<uint64_t>(size - offset, 256 * 1024);
        chunk.resize(n);
        memory.read(base + offset, chunk);
        crc = crc64(chunk, crc);
        offset += n;
    }
    return crc;
}

uint64_t
SalvageDirectory::persist(const NvramSpace &memory, uint64_t generation,
                          SaveTier cut)
{
    uint64_t entries_checksum = fnv1aU64(regions_.size());
    for (size_t i = 0; i < regions_.size(); ++i) {
        const SalvageRegionSpec &region = regions_[i];
        const bool saved = region.tier <= cut;
        std::vector<uint8_t> entry(kEntryBytes, 0);
        std::memcpy(entry.data() + kOffName, region.name.data(),
                    region.name.size());
        writeField(entry, kOffBase, region.base);
        writeField(entry, kOffSize, region.size);
        writeField(entry, kOffCrc,
                   saved ? regionCrc(memory, region.base, region.size) : 0);
        writeField(entry, kOffFlags,
                   static_cast<uint64_t>(region.tier) |
                       (saved ? 0x100ull : 0));
        const uint64_t entry_crc =
            fnv1a(std::span<const uint8_t>(entry).first(kOffEntryCrc));
        writeField(entry, kOffEntryCrc, entry_crc);
        entries_checksum = fnv1aU64(entry_crc, entries_checksum);
        cache_.write(base_ + kHeaderBytes + i * kEntryBytes, entry);
    }

    std::vector<uint8_t> header(kHeaderBytes, 0);
    writeField(header, kOffMagic, kMagic);
    writeField(header, kOffGeneration, generation);
    writeField(header, kOffCount, regions_.size());
    writeField(header, kOffTierCut, static_cast<uint64_t>(cut));
    writeField(header, kOffEntriesChecksum, entries_checksum);
    writeField(header, kOffHeaderCrc,
               headerChecksum(generation, regions_.size(),
                              static_cast<uint64_t>(cut), entries_checksum));
    cache_.write(base_, header);

    for (uint64_t off = 0;
         off < kHeaderBytes + regions_.size() * kEntryBytes;
         off += CacheModel::kLineSize)
        cache_.flushLine(base_ + off);
    return entries_checksum;
}

std::optional<SalvageDirectoryImage>
SalvageDirectory::read(const NvramSpace &memory, uint64_t base)
{
    std::vector<uint8_t> header(kHeaderBytes);
    memory.read(base, header);
    if (readField(header, kOffMagic) != kMagic)
        return std::nullopt;

    SalvageDirectoryImage image;
    image.generation = readField(header, kOffGeneration);
    const uint64_t count = readField(header, kOffCount);
    const uint64_t tier_cut = readField(header, kOffTierCut);
    image.checksum = readField(header, kOffEntriesChecksum);
    if (count > kMaxRegions ||
        tier_cut > static_cast<uint64_t>(SaveTier::Bulk))
        return std::nullopt;
    image.tierCut = static_cast<SaveTier>(tier_cut);
    if (readField(header, kOffHeaderCrc) !=
        headerChecksum(image.generation, count, tier_cut, image.checksum))
        return std::nullopt;

    uint64_t entries_checksum = fnv1aU64(count);
    for (uint64_t i = 0; i < count; ++i) {
        std::vector<uint8_t> entry(kEntryBytes);
        memory.read(base + kHeaderBytes + i * kEntryBytes, entry);
        const uint64_t entry_crc = readField(entry, kOffEntryCrc);
        if (entry_crc !=
            fnv1a(std::span<const uint8_t>(entry).first(kOffEntryCrc)))
            return std::nullopt;
        entries_checksum = fnv1aU64(entry_crc, entries_checksum);

        SalvageDirectoryEntry decoded;
        const char *name =
            reinterpret_cast<const char *>(entry.data() + kOffName);
        decoded.name.assign(name, strnlen(name, kMaxNameBytes));
        decoded.base = readField(entry, kOffBase);
        decoded.size = readField(entry, kOffSize);
        decoded.crc = readField(entry, kOffCrc);
        const uint64_t flags = readField(entry, kOffFlags);
        if ((flags & 0xff) > static_cast<uint64_t>(SaveTier::Bulk))
            return std::nullopt;
        decoded.tier = static_cast<SaveTier>(flags & 0xff);
        decoded.saved = (flags & 0x100) != 0;
        if (decoded.size == 0 ||
            decoded.base + decoded.size > memory.capacity())
            return std::nullopt;
        image.entries.push_back(std::move(decoded));
    }
    if (entries_checksum != image.checksum)
        return std::nullopt;
    return image;
}

} // namespace wsp
