/**
 * @file
 * Salvage directory: per-region checksums for partial-image recovery.
 *
 * A failed or degraded flush-on-fail save used to force a full cold
 * boot: the whole-image valid marker is all-or-nothing, so one corrupt
 * byte threw away every region that survived intact. The salvage
 * directory makes the image divisible. During the save, after the
 * flush and before the marker stamp, the control processor writes a
 * small table at the top of memory: one entry per registered region
 * carrying its address range, priority tier, whether this save
 * persisted it, and a CRC64 of its content as stored in NVRAM. The
 * directory's own checksum is bound into the valid marker.
 *
 * On restore, when the whole-image path is ruled out (incomplete
 * flash, bad marker, stale generation, degraded tier cut), the boot
 * code decodes the directory, re-verifies each saved region against
 * its CRC, keeps the intact ones, scrubs the rest, and hands each
 * casualty to a per-region recovery hook — per-shard back-end
 * recovery instead of a whole-store rebuild.
 *
 * Layout (top of memory, below the resume block):
 *   header  64 B : magic, generation, count, tier cut,
 *                  entries-checksum, header checksum
 *   entries 64 B each, up to kMaxRegions:
 *                  name[24], base, size, crc64, tier|saved, entry crc
 */

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/wsp_config.h"
#include "machine/cache.h"

namespace wsp {

/** One region registered for tiered save and checksummed salvage. */
struct SalvageRegionSpec
{
    std::string name; ///< at most 23 bytes; stable across boots
    uint64_t base = 0;
    uint64_t size = 0;
    SaveTier tier = SaveTier::Bulk;
};

/** Decoded on-NVRAM directory entry (restore path). */
struct SalvageDirectoryEntry
{
    std::string name;
    uint64_t base = 0;
    uint64_t size = 0;
    uint64_t crc = 0; ///< CRC64 of the region as the save stored it
    SaveTier tier = SaveTier::Bulk;
    bool saved = false; ///< the save claims this region is in flash
};

/** Decoded and self-verified directory image. */
struct SalvageDirectoryImage
{
    uint64_t generation = 0; ///< boot sequence of the save that wrote it
    SaveTier tierCut = SaveTier::Bulk;
    uint64_t checksum = 0; ///< entries-checksum, as bound into the marker
    std::vector<SalvageDirectoryEntry> entries;
};

/**
 * Writer/reader of the on-NVRAM salvage directory. The platform owns
 * one instance; applications register their regions at attach time and
 * the save routine persists the table on every save.
 */
class SalvageDirectory
{
  public:
    static constexpr size_t kMaxRegions = 30;
    static constexpr uint64_t kHeaderBytes = 64;
    static constexpr uint64_t kEntryBytes = 64;
    static constexpr uint64_t kSize = kHeaderBytes + kMaxRegions * kEntryBytes;
    static constexpr size_t kMaxNameBytes = 23;

    /**
     * @param cache control processor's cache (writes are flushed).
     * @param base  line-aligned NVRAM physical address.
     */
    SalvageDirectory(CacheModel &cache, uint64_t base);

    uint64_t base() const { return base_; }

    /** Register a region; rejects overlaps and directory collisions. */
    void registerRegion(SalvageRegionSpec spec);

    const std::vector<SalvageRegionSpec> &regions() const { return regions_; }
    bool empty() const { return regions_.empty(); }

    /** Cache lines covered by regions with tier <= @p cut. */
    uint64_t regionLines(SaveTier cut) const;

    /** Bytes covered by regions with tier <= @p cut. */
    uint64_t savedBytes(SaveTier cut) const;

    /** Cache lines of the directory table itself. */
    static constexpr uint64_t directoryLines()
    {
        return (kSize + CacheModel::kLineSize - 1) / CacheModel::kLineSize;
    }

    /**
     * Checksum every region with tier <= @p cut as currently stored
     * in NVRAM, write the table through the cache, and flush it.
     * @return the entries-checksum the marker must bind.
     */
    uint64_t persist(const NvramSpace &memory, uint64_t generation,
                     SaveTier cut);

    /**
     * Decode and self-verify the directory at @p base. Returns
     * nullopt when the magic, header checksum, or any entry checksum
     * does not hold — a torn or corrupted table salvages nothing.
     */
    static std::optional<SalvageDirectoryImage> read(const NvramSpace &memory,
                                                     uint64_t base);

    /** CRC64 of @p size bytes at @p base as stored in NVRAM. */
    static uint64_t regionCrc(const NvramSpace &memory, uint64_t base,
                              uint64_t size);

  private:
    static constexpr uint64_t kMagic = 0x57535053414c5631ull; // "WSPSALV1"

    CacheModel &cache_;
    uint64_t base_;
    std::vector<SalvageRegionSpec> regions_;
};

} // namespace wsp
