#include "core/wsp_controller.h"

#include "util/logging.h"

namespace wsp {

WspLayout
WspLayout::topOfMemory(uint64_t capacity, unsigned cores)
{
    const uint64_t line = CacheModel::kLineSize;
    const uint64_t resume_size = ResumeBlock::sizeFor(cores);
    WspLayout layout;
    layout.markerBase = (capacity - ValidMarker::kSize) / line * line;
    layout.resumeBase =
        (layout.markerBase - resume_size) / line * line;
    return layout;
}

WspController::WspController(EventQueue &queue, MachineModel &machine,
                             AtxPowerSupply &psu, PowerMonitor &monitor,
                             NvdimmController &nvdimms,
                             DeviceManager *devices, WspConfig config)
    : SimObject(queue, "wsp-controller"), config_(config),
      machine_(machine), psu_(psu), monitor_(monitor), nvdimms_(nvdimms),
      devices_(devices),
      marker_(machine.cacheOfCore(0),
              WspLayout::topOfMemory(machine.memory().capacity(),
                                     machine.coreCount()).markerBase),
      resumeBlock_(machine.cacheOfCore(0),
                   WspLayout::topOfMemory(machine.memory().capacity(),
                                          machine.coreCount()).resumeBase,
                   machine.coreCount()),
      save_(machine, monitor, marker_, resumeBlock_, devices, config_),
      restore_(machine, nvdimms, marker_, resumeBlock_, devices, config_)
{
    monitor_.setPowerFailHandler([this] { onPowerFailInterrupt(); });
    monitor_.setCommandSink(nvdimms_.commandSink());
    if (config_.armNvdimms)
        nvdimms_.armAll();

    // The instant regulation ends, everything on host power dies.
    psu_.pwrOkSignal().observeEdge(false, [this] {
        pwrOkDroppedAt_ = now();
        const Tick end = psu_.regulationEndTick();
        queue_.schedule(end, [this] { onHardPowerLoss(); });
    });
}

void
WspController::onPowerFailInterrupt()
{
    if (!running_) {
        warn("power-fail interrupt while not running; ignored");
        return;
    }
    running_ = false;
    save_.run(bootSequence_, [this](SaveReport report) {
        lastSave_ = report;
        if (pwrOkDroppedAt_ && psu_.residualWindow() > 0) {
            windowFractionUsed_ =
                static_cast<double>(report.halted - *pwrOkDroppedAt_) /
                static_cast<double>(psu_.residualWindow());
        }
        debugLog("save completed in %s",
                 formatTime(report.duration()).c_str());
    });
}

void
WspController::start()
{
    WSP_CHECK(!running_);
    marker_.clear();
    running_ = true;
}

void
WspController::onHardPowerLoss()
{
    if (powerLostAt_.has_value())
        return;
    if (!psu_.inputFailed())
        return; // the outage ended inside the residual window
    powerLostAt_ = now();
    running_ = false;
    machine_.onPowerLost();
    if (devices_ != nullptr)
        devices_->onPowerLost();
    nvdimms_.hostPowerLost();
}

std::optional<double>
WspController::windowFractionUsed() const
{
    return windowFractionUsed_;
}

void
WspController::boot(std::function<void()> backend_recovery,
                    std::function<void(RestoreReport)> done)
{
    // Power has returned: the PSU regulates again, the NVDIMM banks
    // recharge, devices are cold.
    psu_.restoreInput();
    psu_.setLoadWatts(machine_.spec().load.idleWatts);
    nvdimms_.hostPowerRestored();
    powerLostAt_.reset();
    pwrOkDroppedAt_.reset();

    restore_.run(std::move(backend_recovery),
                 [this, done = std::move(done)](RestoreReport report) {
        lastRestore_ = report;
        running_ = true;
        ++bootSequence_;
        if (done)
            done(report);
    });
}

} // namespace wsp
