#include "core/wsp_controller.h"

#include <algorithm>

#include "util/logging.h"

namespace wsp {

WspLayout
WspLayout::topOfMemory(uint64_t capacity, unsigned cores,
                       size_t recorder_records)
{
    const uint64_t line = CacheModel::kLineSize;
    const uint64_t resume_size = ResumeBlock::sizeFor(cores);
    WspLayout layout;
    layout.markerBase = (capacity - ValidMarker::kSize) / line * line;
    layout.resumeBase =
        (layout.markerBase - resume_size) / line * line;
    // The directory sits below the resume block: all three control
    // structures share the top of memory, which the NVDIMM save
    // engine programs *first* — a save that dies early still persists
    // the metadata describing what it managed.
    layout.directoryBase =
        (layout.resumeBase - SalvageDirectory::kSize) / line * line;
    // The flight-recorder ring sits directly below the directory,
    // header line on top of its slots: under top-down flash
    // programming the header (the published head) persists before any
    // slot it vouches for can be lost.
    layout.recorderHeader =
        (layout.directoryBase - trace::kFrHeaderBytes) / line * line;
    layout.recorderBase = layout.recorderHeader -
                          recorder_records * trace::kFrRecordBytes;
    return layout;
}

WspController::WspController(EventQueue &queue, MachineModel &machine,
                             AtxPowerSupply &psu, PowerMonitor &monitor,
                             NvdimmController &nvdimms,
                             DeviceManager *devices, WspConfig config)
    : SimObject(queue, "wsp-controller"), config_(config),
      machine_(machine), psu_(psu), monitor_(monitor), nvdimms_(nvdimms),
      devices_(devices),
      layout_(WspLayout::topOfMemory(machine.memory().capacity(),
                                     machine.coreCount(),
                                     config_.flightRecorderRecords)),
      marker_(machine.cacheOfCore(0), layout_.markerBase),
      resumeBlock_(machine.cacheOfCore(0), layout_.resumeBase,
                   machine.coreCount()),
      directory_(machine.cacheOfCore(0), layout_.directoryBase),
      save_(machine, monitor, marker_, resumeBlock_, devices, config_,
            &nvdimms, &directory_),
      restore_(machine, nvdimms, marker_, resumeBlock_, devices, config_,
               &directory_)
{
    attachFlightRecorder();
    monitor_.setPowerFailHandler([this] { onPowerFailInterrupt(); });
    monitor_.setCommandSink(nvdimms_.commandSink());
    if (config_.armNvdimms)
        nvdimms_.armAll();

    if (config_.healthCheckPeriod > 0) {
        // One probe per module: can its bank deliver the *pending*
        // save's energy plus the margin right now? With a dirty
        // baseline open the pending save is the delta, so margins
        // (and the degraded-tier decisions they drive) track the
        // bytes that actually need programming, not the capacity.
        health_ = std::make_unique<EnergyHealthMonitor>(
            queue, HealthMonitorConfig{config_.healthCheckPeriod,
                                       config_.healthEnergyMargin});
        for (NvdimmModule *module : nvdimms_.modules()) {
            health_->addProbe(HealthProbe{
                module->name(),
                [module] { return module->ultracap().usableEnergy(); },
                [module] { return module->pendingSaveEnergy(); }});
        }
        health_->setDegradedHandler([this](bool degraded) {
            degraded_ = degraded;
            trace::frEmit(trace::FrEvent::HealthDegrade,
                          trace::Category::Power, degraded ? 1 : 0,
                          health_->transitions());
        });
    }

    // The instant regulation ends, everything on host power dies.
    psu_.pwrOkSignal().observeEdge(false, [this] {
        pwrOkDroppedAt_ = now();
        const Tick end = psu_.regulationEndTick();
        queue_.schedule(end, [this] { onHardPowerLoss(); });
    });
}

WspController::~WspController()
{
    auto &recorder = trace::FlightRecorder::instance();
    recorder.detach(this);
    recorder.clearTickSource(this);
}

void
WspController::attachFlightRecorder()
{
    auto &recorder = trace::FlightRecorder::instance();
    recorder.setMode(config_.flightRecorder);
    recorder.setTickSource(this, [this] { return now(); });
    if (config_.flightRecorder != trace::FrMode::Nvram)
        return;

    // The recorder lives below the trace layer, so its NVRAM backing
    // is expressed as closures over the control processor's cache:
    // one line write plus an immediate flush per published line, the
    // same write -> flush discipline the valid marker uses. The
    // writable probe keeps records staged while the backing module is
    // mid save/restore or the host is dark — host writes are only
    // legal against an Active, powered module.
    trace::FlightRecorder::Backing backing;
    backing.base = layout_.recorderBase;
    backing.capacityRecords = config_.flightRecorderRecords;
    backing.writeLine = [this](uint64_t addr,
                               std::span<const uint8_t> bytes) {
        CacheModel &cache = machine_.cacheOfCore(0);
        cache.write(addr, bytes);
        cache.flushLine(addr);
    };
    NvramSpace &memory = machine_.memory();
    const size_t owning_module = memory.moduleCount() - 1;
    backing.writable = [this, &memory, owning_module] {
        const NvdimmModule &module = memory.module(owning_module);
        // A module that finished its hardware-triggered save while the
        // host was dark parks in Active with decayed DRAM; it reads as
        // writable the instant boot() clears powerLostAt_, but the
        // restore about to stream flash back would erase anything
        // published into it. restoring_ keeps records staged until the
        // boot path calls flushStaged() after the restore completes.
        return module.hostPowered() &&
               module.state() == NvdimmState::Active &&
               !powerLostAt_.has_value() && !restoring_;
    };
    recorder.attach(this, std::move(backing), bootSequence_);
}

void
WspController::registerSalvageRegion(SalvageRegionSpec spec)
{
    directory_.registerRegion(std::move(spec));
}

void
WspController::setRegionRecovery(
    std::function<void(const RegionOutcome &)> hook)
{
    restore_.setRegionRecovery(std::move(hook));
}

void
WspController::onPowerFailInterrupt()
{
    if (!running_) {
        warn("power-fail interrupt while not running; ignored");
        return;
    }
    running_ = false;
    if (health_)
        health_->stop();
    save_.run(bootSequence_, degraded_, [this](SaveReport report) {
        lastSave_ = report;
        if (pwrOkDroppedAt_ && psu_.residualWindow() > 0) {
            windowFractionUsed_ =
                static_cast<double>(report.halted - *pwrOkDroppedAt_) /
                static_cast<double>(psu_.residualWindow());
        }
        debugLog("save completed in %s",
                 formatTime(report.duration()).c_str());
    });
}

void
WspController::start()
{
    WSP_CHECK(!running_);
    marker_.clear();
    nvdimms_.publishEpoch(bootSequence_);
    if (health_) {
        health_->checkNow();
        health_->start();
    }
    running_ = true;
    trace::FlightRecorder::instance().setGeneration(this,
                                                    bootSequence_);
    trace::frEmit(trace::FrEvent::BootEpoch, trace::Category::Core,
                  bootSequence_, 0);
}

void
WspController::onHardPowerLoss()
{
    if (powerLostAt_.has_value())
        return;
    if (!psu_.inputFailed())
        return; // the outage ended inside the residual window
    powerLostAt_ = now();
    running_ = false;
    if (health_)
        health_->stop();
    machine_.onPowerLost();
    if (devices_ != nullptr)
        devices_->onPowerLost();
    nvdimms_.hostPowerLost();
}

std::optional<double>
WspController::windowFractionUsed() const
{
    return windowFractionUsed_;
}

void
WspController::boot(std::function<void()> backend_recovery,
                    std::function<void(RestoreReport)> done)
{
    // Power has returned: the PSU regulates again, the NVDIMM banks
    // recharge, devices are cold.
    psu_.restoreInput();
    psu_.setLoadWatts(machine_.spec().load.idleWatts);
    nvdimms_.hostPowerRestored();
    powerLostAt_.reset();
    pwrOkDroppedAt_.reset();
    restoring_ = true;

    restore_.run(std::move(backend_recovery),
                 [this, done = std::move(done)](RestoreReport report) {
        lastRestore_ = report;
        running_ = true;
        restoring_ = false;
        // The new boot's sequence must exceed every epoch any module
        // has seen — including a crashed chassis whose image we
        // adopted — so a save from this boot is never mistaken for
        // one from a previous life.
        bootSequence_ = std::max(bootSequence_, nvdimms_.currentEpoch()) + 1;
        nvdimms_.publishEpoch(bootSequence_);
        if (health_) {
            health_->checkNow();
            health_->start();
        }
        auto &recorder = trace::FlightRecorder::instance();
        recorder.setGeneration(this, bootSequence_);
        // A boot that did not stream the image back into DRAM (cold,
        // fallback, salvage) lost every published ring slot with it;
        // the header must stop vouching for them.
        if (!report.usedWsp || report.salvageMode)
            recorder.restartContiguity(this);
        trace::frEmit(trace::FrEvent::BootEpoch, trace::Category::Core,
                      bootSequence_, report.usedWsp ? 1 : 0);
        // Records staged while the modules were saving or dark drain
        // into the revived ring now that NVRAM is writable again.
        recorder.flushStaged();
        if (done)
            done(report);
    });
}

} // namespace wsp
