#include "core/wsp_controller.h"

#include <algorithm>

#include "util/logging.h"

namespace wsp {

WspLayout
WspLayout::topOfMemory(uint64_t capacity, unsigned cores)
{
    const uint64_t line = CacheModel::kLineSize;
    const uint64_t resume_size = ResumeBlock::sizeFor(cores);
    WspLayout layout;
    layout.markerBase = (capacity - ValidMarker::kSize) / line * line;
    layout.resumeBase =
        (layout.markerBase - resume_size) / line * line;
    // The directory sits below the resume block: all three control
    // structures share the top of memory, which the NVDIMM save
    // engine programs *first* — a save that dies early still persists
    // the metadata describing what it managed.
    layout.directoryBase =
        (layout.resumeBase - SalvageDirectory::kSize) / line * line;
    return layout;
}

WspController::WspController(EventQueue &queue, MachineModel &machine,
                             AtxPowerSupply &psu, PowerMonitor &monitor,
                             NvdimmController &nvdimms,
                             DeviceManager *devices, WspConfig config)
    : SimObject(queue, "wsp-controller"), config_(config),
      machine_(machine), psu_(psu), monitor_(monitor), nvdimms_(nvdimms),
      devices_(devices),
      marker_(machine.cacheOfCore(0),
              WspLayout::topOfMemory(machine.memory().capacity(),
                                     machine.coreCount()).markerBase),
      resumeBlock_(machine.cacheOfCore(0),
                   WspLayout::topOfMemory(machine.memory().capacity(),
                                          machine.coreCount()).resumeBase,
                   machine.coreCount()),
      directory_(machine.cacheOfCore(0),
                 WspLayout::topOfMemory(machine.memory().capacity(),
                                        machine.coreCount()).directoryBase),
      save_(machine, monitor, marker_, resumeBlock_, devices, config_,
            &nvdimms, &directory_),
      restore_(machine, nvdimms, marker_, resumeBlock_, devices, config_,
               &directory_)
{
    monitor_.setPowerFailHandler([this] { onPowerFailInterrupt(); });
    monitor_.setCommandSink(nvdimms_.commandSink());
    if (config_.armNvdimms)
        nvdimms_.armAll();

    if (config_.healthCheckPeriod > 0) {
        // One probe per module: can its bank deliver the *pending*
        // save's energy plus the margin right now? With a dirty
        // baseline open the pending save is the delta, so margins
        // (and the degraded-tier decisions they drive) track the
        // bytes that actually need programming, not the capacity.
        health_ = std::make_unique<EnergyHealthMonitor>(
            queue, HealthMonitorConfig{config_.healthCheckPeriod,
                                       config_.healthEnergyMargin});
        for (NvdimmModule *module : nvdimms_.modules()) {
            health_->addProbe(HealthProbe{
                module->name(),
                [module] { return module->ultracap().usableEnergy(); },
                [module] { return module->pendingSaveEnergy(); }});
        }
        health_->setDegradedHandler(
            [this](bool degraded) { degraded_ = degraded; });
    }

    // The instant regulation ends, everything on host power dies.
    psu_.pwrOkSignal().observeEdge(false, [this] {
        pwrOkDroppedAt_ = now();
        const Tick end = psu_.regulationEndTick();
        queue_.schedule(end, [this] { onHardPowerLoss(); });
    });
}

void
WspController::registerSalvageRegion(SalvageRegionSpec spec)
{
    directory_.registerRegion(std::move(spec));
}

void
WspController::setRegionRecovery(
    std::function<void(const RegionOutcome &)> hook)
{
    restore_.setRegionRecovery(std::move(hook));
}

void
WspController::onPowerFailInterrupt()
{
    if (!running_) {
        warn("power-fail interrupt while not running; ignored");
        return;
    }
    running_ = false;
    if (health_)
        health_->stop();
    save_.run(bootSequence_, degraded_, [this](SaveReport report) {
        lastSave_ = report;
        if (pwrOkDroppedAt_ && psu_.residualWindow() > 0) {
            windowFractionUsed_ =
                static_cast<double>(report.halted - *pwrOkDroppedAt_) /
                static_cast<double>(psu_.residualWindow());
        }
        debugLog("save completed in %s",
                 formatTime(report.duration()).c_str());
    });
}

void
WspController::start()
{
    WSP_CHECK(!running_);
    marker_.clear();
    nvdimms_.publishEpoch(bootSequence_);
    if (health_) {
        health_->checkNow();
        health_->start();
    }
    running_ = true;
}

void
WspController::onHardPowerLoss()
{
    if (powerLostAt_.has_value())
        return;
    if (!psu_.inputFailed())
        return; // the outage ended inside the residual window
    powerLostAt_ = now();
    running_ = false;
    if (health_)
        health_->stop();
    machine_.onPowerLost();
    if (devices_ != nullptr)
        devices_->onPowerLost();
    nvdimms_.hostPowerLost();
}

std::optional<double>
WspController::windowFractionUsed() const
{
    return windowFractionUsed_;
}

void
WspController::boot(std::function<void()> backend_recovery,
                    std::function<void(RestoreReport)> done)
{
    // Power has returned: the PSU regulates again, the NVDIMM banks
    // recharge, devices are cold.
    psu_.restoreInput();
    psu_.setLoadWatts(machine_.spec().load.idleWatts);
    nvdimms_.hostPowerRestored();
    powerLostAt_.reset();
    pwrOkDroppedAt_.reset();

    restore_.run(std::move(backend_recovery),
                 [this, done = std::move(done)](RestoreReport report) {
        lastRestore_ = report;
        running_ = true;
        // The new boot's sequence must exceed every epoch any module
        // has seen — including a crashed chassis whose image we
        // adopted — so a save from this boot is never mistaken for
        // one from a previous life.
        bootSequence_ = std::max(bootSequence_, nvdimms_.currentEpoch()) + 1;
        nvdimms_.publishEpoch(bootSequence_);
        if (health_) {
            health_->checkNow();
            health_->start();
        }
        if (done)
            done(report);
    });
}

} // namespace wsp
