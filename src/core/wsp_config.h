/**
 * @file
 * Configuration and report types for the WSP core.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "devices/device_manager.h"
#include "trace/flight_recorder.h"
#include "util/units.h"

namespace wsp {

/** How the save routine flushes transient cache state (Table 2). */
enum class FlushMethod {
    Wbinvd,      ///< wbinvd per socket: flat cost, no dirty tracking
    ClflushLoop, ///< clflush walk over the whole cache (ablation)
};

/** Human-readable flush method name. */
std::string flushMethodName(FlushMethod method);

/**
 * What the boot path restores (paper section 6, "Process
 * persistence").
 *
 * WholeSystem resumes the entire machine image: OS structures, device
 * driver state (modulo the device policy), and every thread context.
 * ProcessOnly boots a *fresh* OS instance and hands surviving
 * application memory to re-attached applications — the
 * Otherworld/Drawbridge direction: thread contexts and stacks are
 * still saved by flush-on-fail, but the kernel is not resumed, so the
 * restore pays a full kernel boot and applications re-attach to their
 * state instead of continuing blindly.
 */
enum class RestoreMode {
    WholeSystem,
    ProcessOnly,
};

/** Human-readable restore mode name. */
std::string restoreModeName(RestoreMode mode);

/**
 * Order of the valid-marker write relative to the cache flush in the
 * save routine. MarkerAfterFlush is the paper's (correct) protocol:
 * the marker is stamped only once every dirty line is safely in
 * NVRAM. MarkerBeforeFlush is a deliberately broken variant kept for
 * the crashsim harness: a power loss between the stamp and the flush
 * leaves a marker that vouches for an image whose application state
 * never reached memory — the exact bug class the crash-point sweep
 * must be able to catch.
 */
enum class SaveOrder {
    MarkerAfterFlush,
    MarkerBeforeFlush,
};

/** Human-readable save order name. */
std::string saveOrderName(SaveOrder order);

/**
 * Priority tier of a saved memory region. When a save runs degraded
 * (energy self-test failed, residual window too short) it persists
 * tiers from the top down and records how far it got: Core state must
 * always make it, shard metadata next, bulk data last. A region's
 * tier is the price of losing it.
 */
enum class SaveTier {
    Core = 0,     ///< CPU contexts, resume block, valid marker
    Metadata = 1, ///< KV shard directories, allocator roots
    Bulk = 2,     ///< application data; first to be dropped
};

/** Human-readable save tier name. */
std::string saveTierName(SaveTier tier);

/** Tunable behaviour of the WSP save/restore machinery. */
struct WspConfig
{
    FlushMethod flushMethod = FlushMethod::Wbinvd;

    /** Whole-system resume vs process persistence (section 6). */
    RestoreMode restoreMode = RestoreMode::WholeSystem;

    /** Full kernel boot cost in ProcessOnly mode (fresh OS). */
    Tick freshKernelBootLatency = fromSeconds(20.0);

    /** Device recovery strategy (paper section 4). */
    DevicePolicy devicePolicy = DevicePolicy::VirtualizedReplay;

    /** Arm NVDIMMs for hardware-triggered save on power loss. */
    bool armNvdimms = true;

    /** Marker-vs-flush ordering; only crashsim sets the broken one. */
    SaveOrder saveOrder = SaveOrder::MarkerAfterFlush;

    /**
     * Parallel flush-on-fail: partition each socket cache's dirty
     * lines across its cores and flush the partitions concurrently,
     * charging the residual window the slowest core instead of a
     * whole-cache walk. Off by default so the calibrated Table 2 /
     * Fig. 8 wbinvd numbers keep reproducing.
     */
    bool parallelFlush = false;

    /** Flush workers per socket under parallelFlush (0 = all the
     *  socket's logical CPUs). */
    unsigned flushWorkersPerSocket = 0;

    /**
     * Suspend independent devices in parallel waves (grouped by
     * DeviceConfig::suspendWave) instead of the sequential ACPI walk.
     * Only meaningful with DevicePolicy::AcpiSuspendOnSave; off by
     * default so Fig. 9 keeps measuring the sequential strawman.
     */
    bool parallelDeviceSuspend = false;

    /** Firmware (BIOS + bootloader) latency on the boot path. */
    Tick firmwareBootLatency = fromSeconds(5.0);

    /** OS scheduler/runtime resume cost after contexts are restored. */
    Tick osResumeLatency = fromMillis(200.0);

    /** Fresh host-OS device stack boot for virtualized replay. */
    Tick hostStackBootLatency = fromSeconds(4.0);

    /** Control-processor cost to issue the NVDIMM save command. */
    Tick commandIssueLatency = fromMicros(2.0);

    /**
     * Period of the energy-margin health self-test; 0 disables the
     * monitor entirely (the seed-calibrated default).
     */
    Tick healthCheckPeriod = 0;

    /** Safety margin the self-test demands on top of the predicted
     *  save energy. */
    double healthEnergyMargin = 0.25;

    /**
     * Residual window the platform promises the save routine
     * (crashsim sets this from the schedule). 0 = unknown; the save
     * then only degrades on the health monitor's say-so.
     */
    Tick plannedResidualWindow = 0;

    /** Force every save to run degraded (tests and fault storms). */
    bool forceDegradedSave = false;

    /** Tier cut applied when a save degrades: tiers <= cut persist. */
    SaveTier degradedTierCut = SaveTier::Metadata;

    /** Backoff before a degraded save re-issues a lost NVDIMM save
     *  command (I2C glitch tolerance). */
    Tick saveCommandRetryBackoff = fromMicros(300.0);

    /** Effective bandwidth of the save-path CRC pass over saved
     *  regions (bytes/second). */
    double salvageCrcBandwidth = 8.0e9;

    /**
     * DELIBERATE BUG KNOB for the crashsim harness: accept salvage
     * directory entries without re-verifying region CRCs on restore.
     * A media fault then revives corrupt data silently — the
     * NoSilentCorruption checker must catch exactly this.
     */
    bool trustSalvageDirectory = false;

    /**
     * Black-box flight recorder mode. Nvram gives the full crash-
     * surviving black box (a reserved ring below the salvage
     * directory, published with the marker discipline); Volatile
     * keeps only the DRAM mirror; Off removes even that. The
     * controller applies the mode process-wide at construction.
     */
    trace::FrMode flightRecorder = trace::FrMode::Nvram;

    /** Ring size in 64-byte records (power of two). The default
     *  64 KiB region costs one flushed line per recorded event. */
    uint32_t flightRecorderRecords = trace::kFrDefaultRecords;
};

/** One timed step of the save or restore sequence. */
struct StepTiming
{
    std::string step;
    Tick start = 0;
    Tick end = 0;

    Tick duration() const { return end - start; }
};

/** Outcome of one flush-on-fail save attempt (paper Fig. 4, 1-8). */
struct SaveReport
{
    bool completed = false;  ///< reached the final halt
    Tick started = 0;        ///< host interrupt delivery tick
    Tick halted = 0;         ///< control processor halt tick
    Tick deviceSuspendTime = 0; ///< strawman policy only
    Tick contextSaveTime = 0;
    Tick cacheFlushTime = 0;
    Tick markerTime = 0;
    uint64_t dirtyBytesFlushed = 0;
    std::vector<StepTiming> steps;

    bool degraded = false; ///< ran the tiered degraded-mode path
    SaveTier tierCut = SaveTier::Bulk; ///< deepest tier persisted
    unsigned regionsDropped = 0; ///< registered regions beyond the cut
    unsigned saveCommandRetries = 0; ///< NVDIMM command re-issues
    uint64_t directoryChecksum = 0; ///< salvage directory checksum

    /** Total save-path latency. */
    Tick duration() const { return halted - started; }
};

/** Fate of one registered salvage region on the restore path. */
struct RegionOutcome
{
    std::string name;
    uint64_t base = 0;
    uint64_t size = 0;
    SaveTier tier = SaveTier::Bulk;
    bool saved = false;       ///< the save persisted this region
    bool salvaged = false;    ///< CRC verified, contents kept
    bool quarantined = false; ///< scrubbed; contents discarded
    bool recovered = false;   ///< per-region recovery hook rebuilt it
};

/** Outcome of one boot-path restore attempt (paper Fig. 4, 10-14). */
struct RestoreReport
{
    bool usedWsp = false;     ///< resumed from NVRAM (vs back end)
    bool flashValid = false;  ///< NVDIMM images were restorable
    bool markerValid = false; ///< valid marker found
    bool checksumOk = false;  ///< resume block matched the marker
    bool generationOk = true; ///< image generation matched this epoch
    bool directoryOk = true;  ///< marker-bound salvage directory decoded
    bool salvageMode = false; ///< cold boot salvaged checksummed regions
    bool contextsRestored = false; ///< thread contexts resumed
                                   ///< (WholeSystem mode only)
    SaveTier imageTierCut = SaveTier::Bulk; ///< tier cut the image carries
    uint64_t imageGeneration = 0; ///< boot sequence stamped in the marker
    std::vector<RegionOutcome> regions; ///< per-region salvage fates
    unsigned regionsSalvaged = 0;
    unsigned regionsQuarantined = 0;
    unsigned regionsRecovered = 0;
    Tick started = 0;
    Tick finished = 0;
    Tick nvdimmRestoreTime = 0;
    DeviceRestoreReport deviceReport;
    std::vector<StepTiming> steps;

    /** Total boot-to-running latency. */
    Tick duration() const { return finished - started; }
};

} // namespace wsp
