/**
 * @file
 * Flush-on-fail save routine (paper Fig. 4, steps 1-8).
 *
 * Invoked by the power-fail interrupt on the control processor, the
 * routine:
 *
 *   1. (entry) control processor interrupted,
 *   2. IPIs every other processor,
 *   3. all processors save their contexts and flush their caches in
 *      parallel (wbinvd, or a clflush walk in the ablation),
 *   4. the N-1 non-control processors halt,
 *   5. the control processor writes the resume block header,
 *   6. writes and flushes the valid marker,
 *   7. initiates the NVDIMM save over the I2C path,
 *   8. halts.
 *
 * Every step is an event on the simulated clock, so a power loss
 * injected at any tick interrupts the sequence exactly where a real
 * machine would be, and the functional memory state (which lines were
 * written back, whether the marker was stamped) reflects the progress
 * made.
 */

#pragma once

#include <functional>

#include "core/resume_block.h"
#include "core/salvage_directory.h"
#include "core/valid_marker.h"
#include "core/wsp_config.h"
#include "machine/machine.h"
#include "nvram/controller.h"
#include "power/power_monitor.h"

namespace wsp {

/** Event-driven implementation of the flush-on-fail save. */
class SaveRoutine
{
  public:
    SaveRoutine(MachineModel &machine, PowerMonitor &monitor,
                ValidMarker &marker, ResumeBlock &resume_block,
                DeviceManager *devices, const WspConfig &config,
                NvdimmController *nvdimms = nullptr,
                SalvageDirectory *directory = nullptr);

    /**
     * Run the save. @p done fires at the control processor's halt
     * with the completed report; it never fires if power is lost
     * first (the event simply never dispatches).
     */
    void run(uint64_t boot_sequence, std::function<void(SaveReport)> done);

    /**
     * Run the save with a degraded-mode hint from the platform (the
     * energy health monitor's verdict at interrupt time). A degraded
     * save skips device suspend, flushes only the registered regions
     * at or above the tier cut, and re-issues a lost NVDIMM save
     * command once — trading bulk data for certainty that the core
     * tiers land within the residual energy actually available.
     */
    void run(uint64_t boot_sequence, bool degraded_hint,
             std::function<void(SaveReport)> done);

    /**
     * Predicted save duration for the current machine state, without
     * running it (used for energy budgeting and Fig. 8).
     */
    Tick predictDuration() const;

    /** Predicted duration of a degraded save down to @p cut. */
    Tick predictDurationForTier(SaveTier cut) const;

    /**
     * The report of the save attempt in progress (or the last one).
     * Unlike the done-callback report this is readable after a power
     * loss cut the routine short, so crash checkers can see exactly
     * which steps had completed when the lights went out.
     */
    const SaveReport &progress() const { return report_; }

    /** True when @p report records completion of @p step. */
    static bool stepReached(const SaveReport &report, const char *step);

  private:
    void stepIpis();
    void stepContextsAndFlush();
    void stepFinishFlush();
    void stepParallelFlush(Tick start);
    void stepDegradedFlush();
    void afterFlush();
    void stepPersistDirectory();
    void stepMarkerPrepare();
    void stepMarkerStamp();
    void stepInitiateNvdimmSave();
    void stepHalt();

    /** CRC pass + table flush cost of persisting the directory. */
    Tick directoryCost(SaveTier cut) const;

    /** Per-socket flush cost under the configured method. */
    Tick flushCost(unsigned socket) const;

    /** Execute the functional flush for @p socket. */
    Tick executeFlush(unsigned socket);

    /** Flush workers driving @p socket's cache under parallelFlush. */
    unsigned flushWorkers(unsigned socket) const;

    /**
     * Append one completed step to the progress report. Steps carry
     * explicit (start, end) ticks, so per-core steps of the parallel
     * flush may be recorded in completion order — readers sort by
     * time, never by position. Also safe after a power loss cut the
     * routine short: whatever was recorded stays readable.
     */
    void record(const std::string &step, Tick start, Tick end);

    MachineModel &machine_;
    PowerMonitor &monitor_;
    ValidMarker &marker_;
    ResumeBlock &resumeBlock_;
    DeviceManager *devices_;
    const WspConfig &config_;
    NvdimmController *nvdimms_;
    SalvageDirectory *directory_;

    EventQueue &queue_;
    uint64_t bootSequence_ = 0;
    bool degraded_ = false;
    SaveTier tierCut_ = SaveTier::Bulk;
    std::function<void(SaveReport)> done_;
    SaveReport report_;
};

} // namespace wsp
