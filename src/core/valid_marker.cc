#include "core/valid_marker.h"

#include "util/checksum.h"
#include "util/logging.h"

namespace wsp {

namespace {

// Field offsets within the marker region.
constexpr uint64_t kOffMagic = 0;
constexpr uint64_t kOffSequence = 8;
constexpr uint64_t kOffResumeChecksum = 16;
constexpr uint64_t kOffFieldChecksum = 24;
constexpr uint64_t kOffDirectoryChecksum = 32;
constexpr uint64_t kOffTierCut = 40;
constexpr uint64_t kOffStamp = CacheModel::kLineSize;
constexpr uint64_t kOffStampChecksum = CacheModel::kLineSize + 8;

uint64_t
fieldChecksum(uint64_t magic, uint64_t sequence, uint64_t resume_checksum,
              uint64_t directory_checksum, uint64_t tier_cut)
{
    uint64_t hash = fnv1aU64(magic);
    hash = fnv1aU64(sequence, hash);
    hash = fnv1aU64(resume_checksum, hash);
    hash = fnv1aU64(directory_checksum, hash);
    return fnv1aU64(tier_cut, hash);
}

} // namespace

ValidMarker::ValidMarker(CacheModel &cache, uint64_t base)
    : cache_(cache), base_(base)
{
    WSP_CHECKF(base % CacheModel::kLineSize == 0,
               "marker base %llu not line-aligned",
               static_cast<unsigned long long>(base));
}

Tick
ValidMarker::prepare(uint64_t boot_sequence, uint64_t resume_checksum,
                     uint64_t directory_checksum, uint64_t tier_cut)
{
    preparedSequence_ = boot_sequence;
    preparedChecksum_ = resume_checksum;
    cache_.writeU64(base_ + kOffMagic, kMagic);
    cache_.writeU64(base_ + kOffSequence, boot_sequence);
    cache_.writeU64(base_ + kOffResumeChecksum, resume_checksum);
    cache_.writeU64(base_ + kOffDirectoryChecksum, directory_checksum);
    cache_.writeU64(base_ + kOffTierCut, tier_cut);
    cache_.writeU64(base_ + kOffFieldChecksum,
                    fieldChecksum(kMagic, boot_sequence, resume_checksum,
                                  directory_checksum, tier_cut));
    return cache_.flushLine(base_);
}

Tick
ValidMarker::stamp()
{
    cache_.writeU64(base_ + kOffStamp, kValidStamp);
    cache_.writeU64(base_ + kOffStampChecksum,
                    fnv1aU64(kValidStamp ^ preparedSequence_));
    return cache_.flushLine(base_ + kOffStamp);
}

Tick
ValidMarker::set(uint64_t boot_sequence, uint64_t resume_checksum)
{
    const Tick t0 = prepare(boot_sequence, resume_checksum);
    return t0 + stamp();
}

Tick
ValidMarker::clear()
{
    // Clearing the stamp line alone invalidates the marker; clear the
    // field line too so stale data never survives.
    cache_.writeU64(base_ + kOffStamp, 0);
    cache_.writeU64(base_ + kOffStampChecksum, 0);
    const Tick t0 = cache_.flushLine(base_ + kOffStamp);
    cache_.writeU64(base_ + kOffMagic, 0);
    cache_.writeU64(base_ + kOffSequence, 0);
    cache_.writeU64(base_ + kOffResumeChecksum, 0);
    cache_.writeU64(base_ + kOffFieldChecksum, 0);
    cache_.writeU64(base_ + kOffDirectoryChecksum, 0);
    cache_.writeU64(base_ + kOffTierCut, 0);
    return t0 + cache_.flushLine(base_);
}

MarkerState
ValidMarker::read(const NvramSpace &memory) const
{
    MarkerState state;
    const uint64_t magic = memory.readU64(base_ + kOffMagic);
    const uint64_t sequence = memory.readU64(base_ + kOffSequence);
    const uint64_t resume_checksum =
        memory.readU64(base_ + kOffResumeChecksum);
    const uint64_t field_checksum =
        memory.readU64(base_ + kOffFieldChecksum);
    const uint64_t directory_checksum =
        memory.readU64(base_ + kOffDirectoryChecksum);
    const uint64_t tier_cut = memory.readU64(base_ + kOffTierCut);
    const uint64_t stamp = memory.readU64(base_ + kOffStamp);
    const uint64_t stamp_checksum =
        memory.readU64(base_ + kOffStampChecksum);

    if (magic != kMagic)
        return state;
    if (field_checksum != fieldChecksum(magic, sequence, resume_checksum,
                                        directory_checksum, tier_cut))
        return state;
    if (stamp != kValidStamp)
        return state;
    if (stamp_checksum != fnv1aU64(kValidStamp ^ sequence))
        return state;

    state.valid = true;
    state.bootSequence = sequence;
    state.resumeChecksum = resume_checksum;
    state.directoryChecksum = directory_checksum;
    state.tierCut = tier_cut;
    return state;
}

} // namespace wsp
