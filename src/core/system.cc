#include "core/system.h"

#include "trace/stat_registry.h"
#include "trace/trace.h"
#include "util/logging.h"

namespace wsp {

WspSystem::WspSystem(SystemConfig config)
    : config_(std::move(config)), rng_(config_.seed)
{
    // Stamp trace records with this system's simulated time. Benches
    // build many systems in sequence; the owner token makes sure a
    // dying system only clears its own source.
    trace::TraceManager::instance().setTickSource(
        this, [this] { return queue_.now(); });

    psu_ = std::make_unique<AtxPowerSupply>(queue_, config_.psu,
                                            rng_.fork(1));
    psu_->setLoadWatts(config_.platform.load.watts(config_.load));

    monitor_ = std::make_unique<PowerMonitor>(queue_, *psu_,
                                              config_.monitor);

    nvdimmController_ = std::make_unique<NvdimmController>(queue_);
    for (unsigned i = 0; i < config_.nvdimmCount; ++i) {
        nvdimms_.push_back(std::make_unique<NvdimmModule>(
            queue_, "nvdimm" + std::to_string(i), config_.nvdimm));
        nvdimmController_->attach(*nvdimms_.back());
        memory_.addModule(*nvdimms_.back());
    }

    machine_ = std::make_unique<MachineModel>(queue_, config_.platform,
                                              memory_);

    devices_ = std::make_unique<DeviceManager>(queue_);
    for (size_t i = 0; i < config_.devices.size(); ++i)
        devices_->addDevice(config_.devices[i], rng_.fork(100 + i));

    wsp_ = std::make_unique<WspController>(
        queue_, *machine_, *psu_, *monitor_, *nvdimmController_,
        config_.devices.empty() ? nullptr : devices_.get(), config_.wsp);
}

WspSystem::~WspSystem()
{
    trace::TraceManager::instance().clearTickSource(this);
}

void
WspSystem::start()
{
    wsp_->start();
}

void
WspSystem::runFor(Tick duration)
{
    queue_.runUntil(queue_.now() + duration);
}

NvramImage
WspSystem::captureNvramImage() const
{
    return NvramImage::capture(memory_);
}

void
WspSystem::adoptNvramImage(const NvramImage &image)
{
    image.adoptInto(memory_);
}

RestoreReport
WspSystem::bootFromImage(const NvramImage &image,
                         std::function<void()> backend_recovery)
{
    // A replacement chassis starts with fresh chassis-level metrics:
    // gauges and counters scoped to this machine's lifetime must not
    // inherit the donor's pre-crash values. DIMM-resident ("nvram.")
    // statistics travel with the image, and campaign-level
    // ("crashsim.", "bench.") aggregates outlive any one chassis.
    trace::StatRegistry::instance().resetPrefixes(
        {"core.", "power.", "machine.", "devices.", "apps."});
    adoptNvramImage(image);
    bool boot_done = false;
    RestoreReport report;
    wsp_->boot(std::move(backend_recovery), [&](RestoreReport r) {
        report = r;
        boot_done = true;
    });
    while (!boot_done && queue_.step()) {
    }
    WSP_CHECKF(boot_done, "boot from image never completed");
    return report;
}

PowerFailureOutcome
WspSystem::powerFailAndRestore(Tick fail_delay, Tick outage,
                               std::function<void()> backend_recovery)
{
    PowerFailureOutcome outcome;
    outcome.outageStart = queue_.now() + fail_delay;
    outcome.bootStart = outcome.outageStart + outage;

    psu_->failInputAt(outcome.outageStart);

    // Let the failure, the save race, the NVDIMM saves, and the dead
    // time all play out.
    queue_.runUntil(outcome.bootStart);

    bool boot_done = false;
    wsp_->boot(std::move(backend_recovery),
               [&](RestoreReport report) {
        outcome.restore = report;
        boot_done = true;
    });
    // Drain until the boot callback fires (bounded by construction:
    // firmware + NVDIMM restore + devices are all finite).
    while (!boot_done && queue_.step()) {
    }
    WSP_CHECKF(boot_done, "boot never completed");
    outcome.save = wsp_->lastSave();
    return outcome;
}

} // namespace wsp
