/**
 * @file
 * Resume block: saved processor contexts at a well-known location.
 *
 * During the save, every processor writes its context into its slot
 * of the resume block; the control processor writes the header last
 * (paper Fig. 4 step 5). On the restore path the boot code jumps to
 * the resume context found here (step 12) and restores the other
 * processors' contexts from their slots (step 14). The block's
 * checksum is stored in the valid marker, binding marker and contexts
 * together: a marker from boot N never validates contexts from boot
 * N-1.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "machine/cache.h"
#include "machine/machine.h"
#include "util/units.h"

namespace wsp {

/** Fixed-layout array of per-processor context slots plus a header. */
class ResumeBlock
{
  public:
    /**
     * @param cache control processor's cache (writes are flushed).
     * @param base  line-aligned NVRAM physical address.
     * @param cores number of context slots.
     */
    ResumeBlock(CacheModel &cache, uint64_t base, unsigned cores);

    /** Bytes reserved for @p cores slots plus the header. */
    static uint64_t sizeFor(unsigned cores);

    uint64_t base() const { return base_; }
    unsigned cores() const { return cores_; }

    /**
     * Save one core's context into its slot and flush the lines it
     * touches (each processor does this for itself during the save).
     * @return modelled cost.
     */
    Tick saveContext(unsigned core, const CpuContext &context);

    /**
     * Write and flush the header (core count + boot sequence); the
     * control processor calls this after every slot is filled.
     * @return modelled cost.
     */
    Tick writeHeader(uint64_t boot_sequence);

    /**
     * Checksum over the header and every slot as currently stored in
     * NVRAM. The save path stores this in the valid marker; the
     * restore path recomputes and compares.
     */
    uint64_t checksum(const NvramSpace &memory) const;

    /**
     * Read back one core's context from NVRAM (restore path, cold
     * caches).
     */
    CpuContext loadContext(const NvramSpace &memory, unsigned core) const;

    /** Read back the boot sequence from the header. */
    uint64_t bootSequence(const NvramSpace &memory) const;

  private:
    uint64_t slotAddr(unsigned core) const;

    static constexpr uint64_t kHeaderSize = CacheModel::kLineSize;
    static constexpr uint64_t kMagic = 0x57535052534d4231ull; // "WSPRSMB1"

    CacheModel &cache_;
    uint64_t base_;
    unsigned cores_;
};

} // namespace wsp
