/**
 * @file
 * WspSystem: a fully assembled whole-system-persistence server.
 *
 * This is the library's main entry point. It wires together one of
 * everything the paper's prototype has (Fig. 3): an ATX power supply,
 * the power-monitor microcontroller, a set of NVDIMMs with their
 * controller, the machine (cores + caches), the device set, and the
 * WSP controller — all on a single event queue — and offers scenario
 * helpers that run a complete power-failure/restore cycle.
 *
 * Typical use (see examples/quickstart.cc):
 *
 *   SystemConfig config;             // paper's Intel testbed defaults
 *   WspSystem system(config);
 *   system.start();
 *   ... write application state through system.cache() ...
 *   auto outcome = system.powerFailAndRestore(fromSeconds(1.0),
 *                                             fromSeconds(30.0));
 *   // outcome.restore.usedWsp == true: all state is back.
 */

#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/wsp_controller.h"
#include "devices/device_manager.h"
#include "machine/machine.h"
#include "nvram/controller.h"
#include "nvram/nvram_image.h"
#include "nvram/nvram_space.h"
#include "power/power_monitor.h"
#include "power/psu.h"
#include "util/rng.h"

namespace wsp {

/** Everything needed to assemble a WspSystem. */
struct SystemConfig
{
    PlatformSpec platform = platformIntelC5528();
    PsuPreset psu = psuPresetIntel1050W();
    PowerMonitorConfig monitor;

    unsigned nvdimmCount = 2;
    NvdimmConfig nvdimm; ///< per-module configuration

    /** Device set; empty = none (pure memory experiments). */
    std::vector<DeviceConfig> devices = deviceSetIntel();

    WspConfig wsp;
    LoadClass load = LoadClass::Busy;
    uint64_t seed = 0x5753502d53595331ull;
};

/** Result of a full power-failure / restore scenario. */
struct PowerFailureOutcome
{
    std::optional<SaveReport> save;
    RestoreReport restore;
    Tick outageStart = 0; ///< AC input failure tick
    Tick bootStart = 0;   ///< power-restore tick
};

/** An assembled WSP server on one event queue. */
class WspSystem
{
  public:
    explicit WspSystem(SystemConfig config);
    ~WspSystem();

    EventQueue &queue() { return queue_; }
    MachineModel &machine() { return *machine_; }
    AtxPowerSupply &psu() { return *psu_; }
    PowerMonitor &monitor() { return *monitor_; }
    NvdimmController &nvdimms() { return *nvdimmController_; }
    NvramSpace &memory() { return memory_; }
    DeviceManager &devices() { return *devices_; }
    WspController &wsp() { return *wsp_; }
    Rng &rng() { return rng_; }
    const SystemConfig &config() const { return config_; }

    /** The control processor's cache: application loads/stores. */
    CacheModel &cache() { return machine_->cacheOfCore(0); }

    /** Register a region for tiered save and checksummed salvage. */
    void
    registerSalvageRegion(SalvageRegionSpec spec)
    {
        wsp_->registerSalvageRegion(std::move(spec));
    }

    /** Recovery hook invoked per quarantined region on restore. */
    void
    setRegionRecovery(std::function<void(const RegionOutcome &)> hook)
    {
        wsp_->setRegionRecovery(std::move(hook));
    }

    /** Power the system on for the first time (cold start). */
    void start();

    /**
     * Run the full scenario: AC fails at @p fail_delay from now, the
     * outage lasts @p outage, then power returns and the system
     * boots. Returns after the boot completes.
     *
     * @p backend_recovery runs if WSP recovery is impossible.
     */
    PowerFailureOutcome
    powerFailAndRestore(Tick fail_delay, Tick outage,
                        std::function<void()> backend_recovery = nullptr);

    /** Advance simulated time (runs pending events). */
    void runFor(Tick duration);

    // Crash exploration hooks (src/crashsim) --------------------------

    /**
     * Snapshot the non-volatile state that would survive pulling the
     * DIMMs out of this machine: per-module flash plus validity. Call
     * only once no module is mid save/restore (run the queue past the
     * outage first).
     */
    NvramImage captureNvramImage() const;

    /** Socket a captured image into this (fresh, un-started) system. */
    void adoptNvramImage(const NvramImage &image);

    /**
     * Adopt @p image and run the full boot path to completion, as a
     * replacement chassis would: firmware, NVDIMM restore, marker
     * check, devices, context restore — or back-end recovery when the
     * image is unusable. Returns the restore report.
     */
    RestoreReport
    bootFromImage(const NvramImage &image,
                  std::function<void()> backend_recovery = nullptr);

  private:
    SystemConfig config_;
    Rng rng_;
    EventQueue queue_;

    std::unique_ptr<AtxPowerSupply> psu_;
    std::unique_ptr<PowerMonitor> monitor_;
    std::vector<std::unique_ptr<NvdimmModule>> nvdimms_;
    std::unique_ptr<NvdimmController> nvdimmController_;
    NvramSpace memory_;
    std::unique_ptr<MachineModel> machine_;
    std::unique_ptr<DeviceManager> devices_;
    std::unique_ptr<WspController> wsp_;
};

} // namespace wsp
