/**
 * @file
 * Failure injection for WSP experiments.
 *
 * Wraps the ways a WSP system can be made to fail, so tests and
 * benches express scenarios declaratively instead of poking model
 * internals:
 *
 *  - AC input failures at chosen instants (the normal case),
 *  - residual windows forced to an exact length (to land a hard power
 *    loss at any chosen point of the save sequence),
 *  - sabotaged NVDIMM ultracapacitors (undersized or pre-drained
 *    banks, the "NVRAM failures" discussion of paper section 6),
 *  - repeated failure schedules (outage trains).
 */

#pragma once

#include "core/system.h"

namespace wsp {

/** Declarative failure injection against a WspSystem. */
class FailureInjector
{
  public:
    explicit FailureInjector(WspSystem &system) : system_(system) {}

    /** Schedule an AC failure @p delay from now. */
    void
    failAcAfter(Tick delay)
    {
        system_.psu().failInputAt(system_.queue().now() + delay);
    }

    /**
     * Drain module @p index's ultracapacitor down to @p voltage so
     * the next save may run out of energy.
     */
    void
    drainUltracap(size_t index, double voltage)
    {
        Ultracapacitor &cap =
            system_.memory().module(index).ultracap();
        // Drain gently: near the floor a heavy draw delivers nothing
        // (the ESR drop puts the terminal below the usable voltage).
        while (cap.voltage() > voltage) {
            if (cap.discharge(2.0, fromSeconds(1.0)) <= 0.0)
                break;
        }
    }

    /**
     * Build a SystemConfig whose PSU yields an exact, jitter-free
     * residual window — the scalpel for hitting a specific step of
     * the save sequence.
     */
    static SystemConfig
    withExactWindow(SystemConfig config, Tick window)
    {
        config.psu.windowJitter = 0;
        config.psu.pwrOkDetectDelay = 0;
        config.psu.busyWindow = window;
        config.psu.idleWindow = window;
        return config;
    }

    /**
     * Build a SystemConfig whose NVDIMM banks are too small to finish
     * their flash saves (energy-exhaustion failures).
     */
    static SystemConfig
    withUndersizedUltracaps(SystemConfig config)
    {
        config.nvdimm.ultracap.ratedCapacitanceF = 0.01;
        config.nvdimm.savePowerWatts = 50.0;
        return config;
    }

    /**
     * Run a train of @p cycles outage/restore cycles, each with the
     * given spacing and outage duration; returns how many recovered
     * via WSP.
     */
    int
    outageTrain(int cycles, Tick spacing, Tick outage,
                std::function<void()> backend_recovery = nullptr)
    {
        int wsp_recoveries = 0;
        for (int i = 0; i < cycles; ++i) {
            auto outcome = system_.powerFailAndRestore(
                spacing, outage, backend_recovery);
            if (outcome.restore.usedWsp)
                ++wsp_recoveries;
        }
        return wsp_recoveries;
    }

  private:
    WspSystem &system_;
};

} // namespace wsp
