/**
 * @file
 * Failure injection for WSP experiments.
 *
 * Wraps the ways a WSP system can be made to fail, so tests and
 * benches express scenarios declaratively instead of poking model
 * internals:
 *
 *  - AC input failures at chosen instants (the normal case),
 *  - residual windows forced to an exact length (to land a hard power
 *    loss at any chosen point of the save sequence),
 *  - sabotaged NVDIMM ultracapacitors (undersized or pre-drained
 *    banks, the "NVRAM failures" discussion of paper section 6),
 *  - repeated failure schedules (outage trains).
 */

#pragma once

#include <string>
#include <vector>

#include "core/system.h"

namespace wsp {

/** What happened in one cycle of an outage train. */
struct OutageCycleOutcome
{
    int cycle = 0;
    bool usedWsp = false;
    bool backendRan = false;   ///< full cold boot with back-end rebuild
    bool salvageMode = false;  ///< cold boot that salvaged regions
    std::string reason;        ///< why WSP resume was impossible
    RestoreReport restore;
};

/** Per-cycle outcome report of FailureInjector::outageTrain. */
struct OutageTrainReport
{
    std::vector<OutageCycleOutcome> cycles;

    int
    wspRecoveries() const
    {
        int n = 0;
        for (const auto &cycle : cycles)
            n += cycle.usedWsp ? 1 : 0;
        return n;
    }

    int
    coldBoots() const
    {
        return static_cast<int>(cycles.size()) - wspRecoveries();
    }

    bool
    allWsp() const
    {
        return wspRecoveries() == static_cast<int>(cycles.size());
    }
};

/** Declarative failure injection against a WspSystem. */
class FailureInjector
{
  public:
    explicit FailureInjector(WspSystem &system) : system_(system) {}

    /** Schedule an AC failure @p delay from now. */
    void
    failAcAfter(Tick delay)
    {
        system_.psu().failInputAt(system_.queue().now() + delay);
    }

    /**
     * Drain module @p index's ultracapacitor down to @p voltage so
     * the next save may run out of energy.
     */
    void
    drainUltracap(size_t index, double voltage)
    {
        Ultracapacitor &cap =
            system_.memory().module(index).ultracap();
        // Drain gently: near the floor a heavy draw delivers nothing
        // (the ESR drop puts the terminal below the usable voltage).
        while (cap.voltage() > voltage) {
            if (cap.discharge(2.0, fromSeconds(1.0)) <= 0.0)
                break;
        }
    }

    /**
     * Build a SystemConfig whose PSU yields an exact, jitter-free
     * residual window — the scalpel for hitting a specific step of
     * the save sequence.
     */
    static SystemConfig
    withExactWindow(SystemConfig config, Tick window)
    {
        config.psu.windowJitter = 0;
        config.psu.pwrOkDetectDelay = 0;
        config.psu.busyWindow = window;
        config.psu.idleWindow = window;
        return config;
    }

    /**
     * Build a SystemConfig whose NVDIMM banks are too small to finish
     * their flash saves (energy-exhaustion failures).
     */
    static SystemConfig
    withUndersizedUltracaps(SystemConfig config)
    {
        config.nvdimm.ultracap.ratedCapacitanceF = 0.01;
        config.nvdimm.savePowerWatts = 50.0;
        return config;
    }

    /**
     * Inject an I2C bus fault: the next @p count NVDIMM commands the
     * power monitor relays are silently dropped.
     */
    void
    dropSaveCommands(unsigned count)
    {
        system_.monitor().failNextCommands(count);
    }

    /**
     * Run a train of @p cycles outage/restore cycles, each with the
     * given spacing and outage duration. The report says, cycle by
     * cycle, whether recovery came from WSP resume, region salvage,
     * or a full back-end rebuild — and why the cheaper path was
     * unavailable.
     */
    OutageTrainReport
    outageTrain(int cycles, Tick spacing, Tick outage,
                std::function<void()> backend_recovery = nullptr)
    {
        OutageTrainReport report;
        for (int i = 0; i < cycles; ++i) {
            auto outcome = system_.powerFailAndRestore(
                spacing, outage, backend_recovery);
            OutageCycleOutcome cycle;
            cycle.cycle = i;
            cycle.usedWsp = outcome.restore.usedWsp;
            cycle.salvageMode = outcome.restore.salvageMode;
            cycle.backendRan =
                !outcome.restore.usedWsp && !outcome.restore.salvageMode;
            cycle.reason = describe(outcome.restore);
            cycle.restore = outcome.restore;
            report.cycles.push_back(std::move(cycle));
        }
        return report;
    }

    /** Human-readable reason a restore did not whole-resume. */
    static std::string
    describe(const RestoreReport &restore)
    {
        if (restore.usedWsp)
            return "wsp resume";
        if (!restore.flashValid)
            return restore.salvageMode ? "salvage: incomplete flash save"
                                       : "cold boot: no usable flash";
        if (!restore.markerValid)
            return "marker missing or torn";
        if (!restore.generationOk)
            return "stale image generation";
        if (!restore.checksumOk)
            return "resume block checksum mismatch";
        if (restore.imageTierCut != SaveTier::Bulk)
            return "degraded tier-cut image";
        if (!restore.directoryOk)
            return "salvage directory corrupt";
        return "cold boot";
    }

  private:
    WspSystem &system_;
};

} // namespace wsp
