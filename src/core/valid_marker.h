/**
 * @file
 * Valid-image marker protocol.
 *
 * The last action of the WSP save routine before initiating the
 * NVDIMM save is writing and flushing a "valid" marker to memory;
 * the marker is cleared on system startup and after a successful
 * resume, so any failure *during* the save is correctly detected on
 * the next boot (paper section 4). The marker occupies two cache
 * lines:
 *
 *   line 0: magic, boot sequence number, resume-block checksum, and a
 *           checksum over those three fields;
 *   line 1: the VALID stamp word and its own checksum.
 *
 * set() writes and flushes line 0 before line 1, so a crash between
 * the two leaves a verifiably invalid marker rather than a torn one.
 */

#pragma once

#include <cstdint>

#include "machine/cache.h"
#include "util/units.h"

namespace wsp {

/** Decoded marker state. */
struct MarkerState
{
    bool valid = false;
    uint64_t bootSequence = 0;
    uint64_t resumeChecksum = 0;
    uint64_t directoryChecksum = 0; ///< salvage directory binding
    uint64_t tierCut = 2;           ///< deepest SaveTier persisted
};

/** The two-line marker protocol at a fixed NVRAM address. */
class ValidMarker
{
  public:
    /** Total bytes reserved for the marker (two cache lines). */
    static constexpr uint64_t kSize = 2 * CacheModel::kLineSize;

    /**
     * @param cache the control processor's cache: marker writes go
     *        through it and are explicitly flushed line by line.
     * @param base  NVRAM physical address of the marker (line-aligned).
     */
    ValidMarker(CacheModel &cache, uint64_t base);

    uint64_t base() const { return base_; }

    /**
     * Write and flush line 0 (fields). Call before stamp().
     * @p directory_checksum binds the salvage directory written by
     * this save (0 when no regions are registered); @p tier_cut is
     * the deepest SaveTier the save persisted (2 = Bulk = complete
     * image). Both are folded into the field checksum.
     * @return modelled cost of the writes and flushes.
     */
    Tick prepare(uint64_t boot_sequence, uint64_t resume_checksum,
                 uint64_t directory_checksum = 0, uint64_t tier_cut = 2);

    /**
     * Write and flush line 1 (the VALID stamp). The image is valid
     * only after this returns.
     * @return modelled cost.
     */
    Tick stamp();

    /** Convenience: prepare() + stamp(). */
    Tick set(uint64_t boot_sequence, uint64_t resume_checksum);

    /** Invalidate the marker (boot / post-resume path). */
    Tick clear();

    /**
     * Decode the marker straight from NVRAM (the boot path has cold
     * caches). Garbage, torn, or cleared markers decode as invalid.
     */
    MarkerState read(const NvramSpace &memory) const;

  private:
    static constexpr uint64_t kMagic = 0x57535056414c4931ull; // "WSPVALI1"
    static constexpr uint64_t kValidStamp = 0x56414c4944212121ull;

    CacheModel &cache_;
    uint64_t base_;
    uint64_t preparedSequence_ = 0;
    uint64_t preparedChecksum_ = 0;
};

} // namespace wsp
