#include "core/restore_routine.h"

#include <algorithm>
#include <cstdio>
#include <span>
#include <vector>

#include "trace/flight_recorder.h"
#include "trace/stat_registry.h"
#include "trace/trace.h"
#include "util/logging.h"

namespace wsp {

namespace {

/** Whether the attached modules take the lazy page-in restore path. */
bool
lazyRestoreConfigured(NvdimmController &nvdimms)
{
    const auto &modules = nvdimms.modules();
    return !modules.empty() && modules.front()->config().lazyRestore;
}

} // namespace

RestoreRoutine::RestoreRoutine(MachineModel &machine,
                               NvdimmController &nvdimms,
                               ValidMarker &marker,
                               ResumeBlock &resume_block,
                               DeviceManager *devices,
                               const WspConfig &config,
                               SalvageDirectory *directory)
    : machine_(machine), nvdimms_(nvdimms), marker_(marker),
      resumeBlock_(resume_block), devices_(devices), config_(config),
      directory_(directory), queue_(machine.queue())
{
}

void
RestoreRoutine::setRegionRecovery(
    std::function<void(const RegionOutcome &)> hook)
{
    regionRecovery_ = std::move(hook);
}

void
RestoreRoutine::record(const char *step, Tick start, Tick end)
{
    report_.steps.push_back(StepTiming{step, start, end});
    if (trace::enabled(trace::Category::Core)) {
        auto &manager = trace::TraceManager::instance();
        manager.emitAt(trace::Category::Core, trace::Phase::Begin, step,
                       start);
        manager.emitAt(trace::Category::Core, trace::Phase::End, step,
                       end);
    }
    char name[48];
    std::snprintf(name, sizeof(name), "core.restore.step%zu_ns",
                  report_.steps.size());
    trace::StatRegistry::instance().gauge(name).set(
        static_cast<double>(end - start));
}

void
RestoreRoutine::run(std::function<void()> backend_recovery,
                    std::function<void(RestoreReport)> done)
{
    backendRecovery_ = std::move(backend_recovery);
    done_ = std::move(done);
    report_ = RestoreReport{};
    report_.started = queue_.now();
    trace::TraceManager::instance().emitAt(
        trace::Category::Core, trace::Phase::Instant,
        "RestoreRoutine start", report_.started);
    // Restore-path records stage in the recorder until the backing
    // module is Active again; they drain into the revived ring when
    // the boot completes.
    trace::frEmit(trace::FrEvent::RestoreBegin, trace::Category::Core,
                  static_cast<uint64_t>(config_.restoreMode),
                  lazyRestoreConfigured(nvdimms_) ? 1 : 0);
    machine_.resetForBoot();

    // Firmware: POST, memory re-initialization, boot loader.
    const Tick start = queue_.now();
    queue_.scheduleAfter(config_.firmwareBootLatency, [this, start] {
        if (!machine_.powerOn())
            return; // power failed again during the boot
        record("firmware boot", start, queue_.now());
        stepNvdimmRestore();
    });
}

void
RestoreRoutine::stepNvdimmRestore()
{
    if (!machine_.powerOn())
        return;
    if (!nvdimms_.allIdle()) {
        // A hardware-triggered save can still be draining its
        // ultracapacitor when power returns; the firmware waits.
        queue_.scheduleAfter(fromMillis(10.0),
                             [this] { stepNvdimmRestore(); });
        return;
    }
    const Tick start = queue_.now();
    report_.flashValid = nvdimms_.allFlashValid();
    if (!nvdimms_.anyRestorable()) {
        fallbackColdBoot("no valid NVDIMM flash image");
        return;
    }
    if (!report_.flashValid) {
        // Some module's save died partway. Its programmed suffix (and
        // every complete sibling image) is still worth reading back:
        // the salvage directory will tell us which regions are intact.
        nvdimms_.restoreAvailable([this, start] {
            if (!machine_.powerOn())
                return;
            report_.nvdimmRestoreTime = queue_.now() - start;
            record("restore NVDIMM contents (partial)", start,
                   queue_.now());
            trace::frEmit(trace::FrEvent::NvdimmRestoreDone,
                          trace::Category::Nvram,
                          nvdimms_.modules().size(),
                          lazyRestoreConfigured(nvdimms_) ? 1 : 0);
            trySalvageColdBoot("incomplete flash save");
        });
        return;
    }
    nvdimms_.restoreAll([this, start] {
        if (!machine_.powerOn())
            return;
        report_.nvdimmRestoreTime = queue_.now() - start;
        record("restore NVDIMM contents", start, queue_.now());
        trace::frEmit(trace::FrEvent::NvdimmRestoreDone,
                      trace::Category::Nvram, nvdimms_.modules().size(),
                      lazyRestoreConfigured(nvdimms_) ? 1 : 0);
        stepCheckMarker();
    });
}

void
RestoreRoutine::stepCheckMarker()
{
    const Tick start = queue_.now();
    const MarkerState state = marker_.read(machine_.memory());
    report_.markerValid = state.valid;
    trace::frEmit(trace::FrEvent::MarkerChecked, trace::Category::Core,
                  state.valid ? 1 : 0, state.bootSequence);
    if (!state.valid) {
        record("check image validity", start, queue_.now());
        trySalvageColdBoot("valid marker missing or torn");
        return;
    }
    report_.imageGeneration = state.bootSequence;
    report_.imageTierCut = static_cast<SaveTier>(
        std::min<uint64_t>(state.tierCut,
                           static_cast<uint64_t>(SaveTier::Bulk)));

    // A marker from an earlier boot can validate only contexts from
    // that boot: if a later save started (erasing flash) and failed,
    // the still-readable old marker must not vouch for the new,
    // partial image. The per-module epoch register is the tiebreak.
    report_.generationOk = state.bootSequence == nvdimms_.currentEpoch();
    if (!report_.generationOk) {
        record("check image validity", start, queue_.now());
        trySalvageColdBoot("stale image generation");
        return;
    }

    const uint64_t checksum = resumeBlock_.checksum(machine_.memory());
    report_.checksumOk = checksum == state.resumeChecksum;
    record("check image validity", start, queue_.now());
    if (!report_.checksumOk) {
        trySalvageColdBoot("resume block checksum mismatch");
        return;
    }
    if (report_.imageTierCut != SaveTier::Bulk) {
        // A degraded save never wrote the bulk of memory back; whole-
        // system resume over missing data would be silent corruption.
        trySalvageColdBoot("degraded tier-cut image");
        return;
    }
    stepVerifyRegions(state);
}

void
RestoreRoutine::stepVerifyRegions(const MarkerState &state)
{
    if (directory_ == nullptr || state.directoryChecksum == 0) {
        // No registered regions at save time: legacy whole-resume.
        record("jump to resume block", queue_.now(), queue_.now());
        stepDevices();
        return;
    }
    const Tick start = queue_.now();
    auto image = SalvageDirectory::read(machine_.memory(),
                                        directory_->base());
    if (!image || image->checksum != state.directoryChecksum ||
        image->generation != state.bootSequence) {
        // The marker vouched for a directory we cannot decode — the
        // fault hit the table itself, so nothing can vouch for any
        // region. Only the full back-end rebuild is safe.
        report_.directoryOk = false;
        record("verify salvage regions", start, queue_.now());
        fallbackColdBoot("marker-bound salvage directory corrupt");
        return;
    }

    uint64_t saved_bytes = 0;
    for (const SalvageDirectoryEntry &entry : image->entries) {
        if (entry.saved)
            saved_bytes += entry.size;
    }
    const Tick cost = fromSeconds(static_cast<double>(saved_bytes) /
                                  config_.salvageCrcBandwidth);
    queue_.scheduleAfter(cost, [this, start, image = std::move(*image)] {
        if (!machine_.powerOn())
            return;
        // Whole-resume still re-verifies every region: a flash media
        // fault under an intact marker quarantines just that region
        // while the rest of the machine resumes.
        for (const SalvageDirectoryEntry &entry : image.entries)
            processRegion(entry);
        record("verify salvage regions", start, queue_.now());
        record("jump to resume block", queue_.now(), queue_.now());
        stepDevices();
    });
}

void
RestoreRoutine::processRegion(const SalvageDirectoryEntry &entry)
{
    RegionOutcome outcome;
    outcome.name = entry.name;
    outcome.base = entry.base;
    outcome.size = entry.size;
    outcome.tier = entry.tier;
    outcome.saved = entry.saved;

    bool intact = false;
    if (entry.saved) {
        // trustSalvageDirectory is the planted bug: skipping the CRC
        // re-verification revives media-faulted bytes silently.
        intact = config_.trustSalvageDirectory ||
                 SalvageDirectory::regionCrc(machine_.memory(), entry.base,
                                             entry.size) == entry.crc;
    }
    auto &registry = trace::StatRegistry::instance();
    if (intact) {
        outcome.salvaged = true;
        ++report_.regionsSalvaged;
        registry.counter("core.regions_salvaged").add();
        trace::frEmit(trace::FrEvent::RegionSalvaged,
                      trace::Category::Core,
                      static_cast<uint64_t>(entry.tier), entry.base);
    } else {
        // Scrub before recovery: a half-programmed or faulted region
        // must never masquerade as data.
        std::vector<uint8_t> zeros(
            std::min<uint64_t>(entry.size, 256 * 1024), 0);
        uint64_t offset = 0;
        while (offset < entry.size) {
            const uint64_t n =
                std::min<uint64_t>(entry.size - offset, zeros.size());
            machine_.memory().write(
                entry.base + offset,
                std::span<const uint8_t>(zeros.data(), n));
            offset += n;
        }
        outcome.quarantined = true;
        ++report_.regionsQuarantined;
        registry.counter("core.regions_quarantined").add();
        trace::frEmit(trace::FrEvent::RegionQuarantined,
                      trace::Category::Core,
                      static_cast<uint64_t>(entry.tier), entry.base);
        inform("restore: region '%s' quarantined (%s)",
               entry.name.c_str(),
               entry.saved ? "checksum mismatch" : "not saved");
        if (regionRecovery_) {
            regionRecovery_(outcome);
            outcome.recovered = true;
            ++report_.regionsRecovered;
            registry.counter("core.regions_recovered").add();
            trace::frEmit(trace::FrEvent::RegionRecovered,
                          trace::Category::Core,
                          static_cast<uint64_t>(entry.tier), entry.base);
        }
    }
    report_.regions.push_back(std::move(outcome));
}

void
RestoreRoutine::stepDevices()
{
    if (devices_ == nullptr) {
        stepRestoreContexts();
        return;
    }
    const Tick start = queue_.now();
    devices_->restoreAll(config_.devicePolicy,
                         config_.hostStackBootLatency,
                         [this, start](DeviceRestoreReport device_report) {
        if (!machine_.powerOn())
            return;
        report_.deviceReport = device_report;
        record("re-initialize devices", start, queue_.now());
        stepRestoreContexts();
    });
}

void
RestoreRoutine::stepRestoreContexts()
{
    const Tick start = queue_.now();

    if (config_.restoreMode == RestoreMode::ProcessOnly) {
        // Process persistence (paper section 6): application memory
        // survived, but a *fresh* kernel boots instead of resuming
        // the old one; applications re-attach to their state through
        // a narrow restart interface (Otherworld / Drawbridge). The
        // saved thread contexts are discarded.
        machine_.resetForBoot();
        marker_.clear();
        report_.contextsRestored = false;
        queue_.scheduleAfter(config_.freshKernelBootLatency,
                             [this, start] {
            if (!machine_.powerOn())
                return;
            record("boot fresh kernel, re-attach processes", start,
                   queue_.now());
            finish(true);
        });
        return;
    }

    for (unsigned i = 0; i < machine_.coreCount(); ++i) {
        machine_.core(i).context =
            resumeBlock_.loadContext(machine_.memory(), i);
        machine_.core(i).halted = false;
    }
    report_.contextsRestored = true;
    trace::frEmit(trace::FrEvent::ContextsRestored,
                  trace::Category::Core, machine_.coreCount(), 0);
    // The marker must not survive the resume: a crash after this
    // point is a fresh failure, not a replay of this image.
    marker_.clear();

    queue_.scheduleAfter(config_.osResumeLatency, [this, start] {
        if (!machine_.powerOn())
            return;
        record("restore CPU contexts, resume scheduling", start,
               queue_.now());
        finish(true);
    });
}

void
RestoreRoutine::trySalvageColdBoot(const char *reason)
{
    // Whole-system resume is off the table; see whether the save left
    // a trustworthy directory so intact regions survive the cold boot.
    if (directory_ == nullptr) {
        fallbackColdBoot(reason);
        return;
    }
    auto image =
        SalvageDirectory::read(machine_.memory(), directory_->base());
    if (!image || image->entries.empty() ||
        image->generation != nvdimms_.currentEpoch()) {
        // No table, a torn table, or one from an older boot: nothing
        // vouches for any region, so everything comes from the back
        // end.
        fallbackColdBoot(reason);
        return;
    }

    inform("restore: salvage cold boot (%s), %zu regions in directory",
           reason, image->entries.size());
    trace::StatRegistry::instance().counter("core.salvage_boots").add();
    TRACE_INSTANT(Core, "salvage cold boot");
    report_.salvageMode = true;
    report_.imageTierCut = image->tierCut;

    const Tick start = queue_.now();
    machine_.resetForBoot();
    nvdimms_.resetToActive();
    marker_.clear();

    uint64_t saved_bytes = 0;
    for (const SalvageDirectoryEntry &entry : image->entries) {
        if (entry.saved)
            saved_bytes += entry.size;
    }
    const Tick cost = fromSeconds(static_cast<double>(saved_bytes) /
                                  config_.salvageCrcBandwidth);
    queue_.scheduleAfter(cost, [this, start, image = std::move(*image)] {
        if (!machine_.powerOn())
            return;
        for (const SalvageDirectoryEntry &entry : image.entries)
            processRegion(entry);
        trace::frEmit(trace::FrEvent::SalvageColdBoot,
                      trace::Category::Core, report_.regionsSalvaged,
                      report_.regionsQuarantined);
        record("salvage checksummed regions", start, queue_.now());

        // Devices cold-start as on any boot; the back-end hook does
        // NOT run — recovery happened region by region.
        const Tick dev_start = queue_.now();
        auto after_devices = [this, dev_start] {
            record("cold boot", dev_start, queue_.now());
            finish(false);
        };
        if (devices_ != nullptr)
            devices_->coldBootAll(
                [after_devices](Tick) { after_devices(); });
        else
            after_devices();
    });
}

void
RestoreRoutine::fallbackColdBoot(const char *reason)
{
    inform("restore: falling back to cold boot (%s)", reason);
    trace::StatRegistry::instance().counter("core.cold_boots").add();
    trace::frEmit(trace::FrEvent::FallbackColdBoot,
                  trace::Category::Core, 0, 0);
    TRACE_INSTANT(Core, "fallback to cold boot");
    const Tick start = queue_.now();
    machine_.resetForBoot();
    nvdimms_.resetToActive();
    marker_.clear();

    // Devices cold-start as on any boot.
    auto after_devices = [this, start] {
        record("cold boot", start, queue_.now());
        if (backendRecovery_)
            backendRecovery_();
        finish(false);
    };
    if (devices_ != nullptr)
        devices_->coldBootAll([after_devices](Tick) { after_devices(); });
    else
        after_devices();
}

void
RestoreRoutine::finish(bool used_wsp)
{
    report_.usedWsp = used_wsp;
    report_.finished = queue_.now();
    trace::frEmit(trace::FrEvent::RestoreDone, trace::Category::Core,
                  used_wsp ? 1 : 0, report_.salvageMode ? 1 : 0);
    auto &registry = trace::StatRegistry::instance();
    registry.counter("core.restores_completed").add();
    registry.gauge("core.restore.total_ns")
        .set(static_cast<double>(report_.finished - report_.started));
    if (done_)
        done_(report_);
}

} // namespace wsp
