#include "core/restore_routine.h"

#include <cstdio>

#include "trace/stat_registry.h"
#include "trace/trace.h"
#include "util/logging.h"

namespace wsp {

RestoreRoutine::RestoreRoutine(MachineModel &machine,
                               NvdimmController &nvdimms,
                               ValidMarker &marker,
                               ResumeBlock &resume_block,
                               DeviceManager *devices,
                               const WspConfig &config)
    : machine_(machine), nvdimms_(nvdimms), marker_(marker),
      resumeBlock_(resume_block), devices_(devices), config_(config),
      queue_(machine.queue())
{
}

void
RestoreRoutine::record(const char *step, Tick start, Tick end)
{
    report_.steps.push_back(StepTiming{step, start, end});
    if (trace::enabled(trace::Category::Core)) {
        auto &manager = trace::TraceManager::instance();
        manager.emitAt(trace::Category::Core, trace::Phase::Begin, step,
                       start);
        manager.emitAt(trace::Category::Core, trace::Phase::End, step,
                       end);
    }
    char name[48];
    std::snprintf(name, sizeof(name), "core.restore.step%zu_ns",
                  report_.steps.size());
    trace::StatRegistry::instance().gauge(name).set(
        static_cast<double>(end - start));
}

void
RestoreRoutine::run(std::function<void()> backend_recovery,
                    std::function<void(RestoreReport)> done)
{
    backendRecovery_ = std::move(backend_recovery);
    done_ = std::move(done);
    report_ = RestoreReport{};
    report_.started = queue_.now();
    trace::TraceManager::instance().emitAt(
        trace::Category::Core, trace::Phase::Instant,
        "RestoreRoutine start", report_.started);
    machine_.resetForBoot();

    // Firmware: POST, memory re-initialization, boot loader.
    const Tick start = queue_.now();
    queue_.scheduleAfter(config_.firmwareBootLatency, [this, start] {
        if (!machine_.powerOn())
            return; // power failed again during the boot
        record("firmware boot", start, queue_.now());
        stepNvdimmRestore();
    });
}

void
RestoreRoutine::stepNvdimmRestore()
{
    if (!machine_.powerOn())
        return;
    if (!nvdimms_.allIdle()) {
        // A hardware-triggered save can still be draining its
        // ultracapacitor when power returns; the firmware waits.
        queue_.scheduleAfter(fromMillis(10.0),
                             [this] { stepNvdimmRestore(); });
        return;
    }
    const Tick start = queue_.now();
    report_.flashValid = nvdimms_.allFlashValid();
    if (!report_.flashValid) {
        fallbackColdBoot("no valid NVDIMM flash image");
        return;
    }
    nvdimms_.restoreAll([this, start] {
        if (!machine_.powerOn())
            return;
        report_.nvdimmRestoreTime = queue_.now() - start;
        record("restore NVDIMM contents", start, queue_.now());
        stepCheckMarker();
    });
}

void
RestoreRoutine::stepCheckMarker()
{
    const Tick start = queue_.now();
    const MarkerState state = marker_.read(machine_.memory());
    report_.markerValid = state.valid;
    if (!state.valid) {
        record("check image validity", start, queue_.now());
        fallbackColdBoot("valid marker missing or torn");
        return;
    }

    const uint64_t checksum = resumeBlock_.checksum(machine_.memory());
    report_.checksumOk = checksum == state.resumeChecksum;
    record("check image validity", start, queue_.now());
    if (!report_.checksumOk) {
        fallbackColdBoot("resume block checksum mismatch");
        return;
    }
    record("jump to resume block", queue_.now(), queue_.now());
    stepDevices();
}

void
RestoreRoutine::stepDevices()
{
    if (devices_ == nullptr) {
        stepRestoreContexts();
        return;
    }
    const Tick start = queue_.now();
    devices_->restoreAll(config_.devicePolicy,
                         config_.hostStackBootLatency,
                         [this, start](DeviceRestoreReport device_report) {
        if (!machine_.powerOn())
            return;
        report_.deviceReport = device_report;
        record("re-initialize devices", start, queue_.now());
        stepRestoreContexts();
    });
}

void
RestoreRoutine::stepRestoreContexts()
{
    const Tick start = queue_.now();

    if (config_.restoreMode == RestoreMode::ProcessOnly) {
        // Process persistence (paper section 6): application memory
        // survived, but a *fresh* kernel boots instead of resuming
        // the old one; applications re-attach to their state through
        // a narrow restart interface (Otherworld / Drawbridge). The
        // saved thread contexts are discarded.
        machine_.resetForBoot();
        marker_.clear();
        report_.contextsRestored = false;
        queue_.scheduleAfter(config_.freshKernelBootLatency,
                             [this, start] {
            if (!machine_.powerOn())
                return;
            record("boot fresh kernel, re-attach processes", start,
                   queue_.now());
            finish(true);
        });
        return;
    }

    for (unsigned i = 0; i < machine_.coreCount(); ++i) {
        machine_.core(i).context =
            resumeBlock_.loadContext(machine_.memory(), i);
        machine_.core(i).halted = false;
    }
    report_.contextsRestored = true;
    // The marker must not survive the resume: a crash after this
    // point is a fresh failure, not a replay of this image.
    marker_.clear();

    queue_.scheduleAfter(config_.osResumeLatency, [this, start] {
        if (!machine_.powerOn())
            return;
        record("restore CPU contexts, resume scheduling", start,
               queue_.now());
        finish(true);
    });
}

void
RestoreRoutine::fallbackColdBoot(const char *reason)
{
    inform("restore: falling back to cold boot (%s)", reason);
    trace::StatRegistry::instance().counter("core.cold_boots").add();
    TRACE_INSTANT(Core, "fallback to cold boot");
    const Tick start = queue_.now();
    machine_.resetForBoot();
    nvdimms_.resetToActive();
    marker_.clear();

    // Devices cold-start as on any boot.
    auto after_devices = [this, start] {
        record("cold boot", start, queue_.now());
        if (backendRecovery_)
            backendRecovery_();
        finish(false);
    };
    if (devices_ != nullptr)
        devices_->coldBootAll([after_devices](Tick) { after_devices(); });
    else
        after_devices();
}

void
RestoreRoutine::finish(bool used_wsp)
{
    report_.usedWsp = used_wsp;
    report_.finished = queue_.now();
    auto &registry = trace::StatRegistry::instance();
    registry.counter("core.restores_completed").add();
    registry.gauge("core.restore.total_ns")
        .set(static_cast<double>(report_.finished - report_.started));
    if (done_)
        done_(report_);
}

} // namespace wsp
