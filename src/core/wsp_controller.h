/**
 * @file
 * WSP controller: the whole-system persistence state machine.
 *
 * Owns the valid marker, the resume block, and the save/restore
 * routines, and wires them to the hardware substrates:
 *
 *  - the power monitor's fail interrupt triggers the flush-on-fail
 *    save on the control processor,
 *  - the PSU's regulation-end tick triggers the hard power loss that
 *    scrubs unprotected machine state,
 *  - boot() runs the restore routine and falls back to back-end
 *    recovery when the image is unusable.
 *
 * The controller also accounts the save's energy position inside the
 * residual window (the paper's 2-35% claim).
 */

#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "core/restore_routine.h"
#include "core/salvage_directory.h"
#include "core/save_routine.h"
#include "core/wsp_config.h"
#include "nvram/controller.h"
#include "power/health_monitor.h"
#include "power/power_monitor.h"
#include "power/psu.h"
#include "trace/flight_recorder.h"

namespace wsp {

/** Where the marker, resume block, salvage directory, and black-box
 *  flight recorder live. */
struct WspLayout
{
    uint64_t markerBase = 0;
    uint64_t resumeBase = 0;
    uint64_t directoryBase = 0;
    /** Flight-recorder header line (ring slots sit directly below). */
    uint64_t recorderHeader = 0;
    /** Flight-recorder slot 0. */
    uint64_t recorderBase = 0;

    /**
     * Place the structures at the top of a @p capacity space.
     * @p recorder_records sizes the flight-recorder ring below the
     * salvage directory; it does not move the other structures.
     */
    static WspLayout topOfMemory(uint64_t capacity, unsigned cores,
                                 size_t recorder_records =
                                     trace::kFrDefaultRecords);
};

/** Top-level whole-system persistence orchestrator. */
class WspController : public SimObject
{
  public:
    WspController(EventQueue &queue, MachineModel &machine,
                  AtxPowerSupply &psu, PowerMonitor &monitor,
                  NvdimmController &nvdimms, DeviceManager *devices,
                  WspConfig config);
    ~WspController();

    const WspConfig &config() const { return config_; }
    const WspLayout &layout() const { return layout_; }
    ValidMarker &marker() { return marker_; }
    ResumeBlock &resumeBlock() { return resumeBlock_; }
    SaveRoutine &saveRoutine() { return save_; }
    SalvageDirectory &salvageDirectory() { return directory_; }

    /** Register a region for tiered save and checksummed salvage. */
    void registerSalvageRegion(SalvageRegionSpec spec);

    /** Per-quarantined-region recovery hook (forwarded to restore). */
    void setRegionRecovery(std::function<void(const RegionOutcome &)> hook);

    /** The energy health monitor, if healthCheckPeriod enabled one. */
    EnergyHealthMonitor *healthMonitor() { return health_.get(); }

    /** True while the platform is in degraded mode (health verdict). */
    bool degraded() const { return degraded_; }

    /** Sequence number of the current boot epoch. */
    uint64_t bootSequence() const { return bootSequence_; }

    /** Report of the last completed save attempt, if any. */
    const std::optional<SaveReport> &lastSave() const { return lastSave_; }

    /** Report of the last restore attempt, if any. */
    const std::optional<RestoreReport> &lastRestore() const
    {
        return lastRestore_;
    }

    /** Tick at which the machine actually lost power (if it has). */
    std::optional<Tick> powerLostAt() const { return powerLostAt_; }

    /**
     * Fraction of the residual energy window the last completed save
     * consumed (paper section 5.3/5.4: 2-35%). Meaningful only after
     * a save raced an actual failure.
     */
    std::optional<double> windowFractionUsed() const;

    /**
     * Boot (or re-boot) the system: runs the restore routine.
     * @p backend_recovery runs when WSP recovery is impossible.
     * @p done receives the restore report.
     */
    void boot(std::function<void()> backend_recovery = nullptr,
              std::function<void(RestoreReport)> done = nullptr);

    /** True once boot() completed and the machine is running. */
    bool running() const { return running_; }

    /**
     * Mark a fresh system as up (initial power-on: no image to
     * restore, the marker is cleared as on any startup).
     */
    void start();

  private:
    void onPowerFailInterrupt();
    void onHardPowerLoss();
    void attachFlightRecorder();

    WspConfig config_;
    MachineModel &machine_;
    AtxPowerSupply &psu_;
    PowerMonitor &monitor_;
    NvdimmController &nvdimms_;
    DeviceManager *devices_;
    WspLayout layout_;

    ValidMarker marker_;
    ResumeBlock resumeBlock_;
    SalvageDirectory directory_;
    SaveRoutine save_;
    RestoreRoutine restore_;
    std::unique_ptr<EnergyHealthMonitor> health_;

    uint64_t bootSequence_ = 1;
    bool degraded_ = false;
    bool running_ = false;
    /** True from boot() entry until the restore completes: the ring's
     *  backing module can report Active with decayed DRAM in this
     *  window (a hardware-triggered save parks there), and anything
     *  published into it would be overwritten when the restore streams
     *  flash back. The flight recorder stages instead. */
    bool restoring_ = false;
    std::optional<SaveReport> lastSave_;
    std::optional<RestoreReport> lastRestore_;
    std::optional<Tick> powerLostAt_;
    std::optional<Tick> pwrOkDroppedAt_;
    std::optional<double> windowFractionUsed_;
};

} // namespace wsp
