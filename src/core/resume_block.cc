#include "core/resume_block.h"

#include <vector>

#include "util/checksum.h"
#include "util/logging.h"

namespace wsp {

namespace {

/** Context slot size rounded up to whole cache lines. */
constexpr uint64_t
slotSize()
{
    const uint64_t raw = CpuContext::serializedSize();
    const uint64_t line = CacheModel::kLineSize;
    return (raw + line - 1) / line * line;
}

} // namespace

ResumeBlock::ResumeBlock(CacheModel &cache, uint64_t base, unsigned cores)
    : cache_(cache), base_(base), cores_(cores)
{
    WSP_CHECK(base % CacheModel::kLineSize == 0);
    WSP_CHECK(cores >= 1);
}

uint64_t
ResumeBlock::sizeFor(unsigned cores)
{
    return kHeaderSize + static_cast<uint64_t>(cores) * slotSize();
}

uint64_t
ResumeBlock::slotAddr(unsigned core) const
{
    WSP_CHECK(core < cores_);
    return base_ + kHeaderSize + static_cast<uint64_t>(core) * slotSize();
}

Tick
ResumeBlock::saveContext(unsigned core, const CpuContext &context)
{
    std::vector<uint8_t> image(CpuContext::serializedSize());
    context.serialize(image);
    const uint64_t addr = slotAddr(core);
    cache_.write(addr, image);

    Tick cost = 0;
    for (uint64_t off = 0; off < slotSize(); off += CacheModel::kLineSize)
        cost += cache_.flushLine(addr + off);
    return cost;
}

Tick
ResumeBlock::writeHeader(uint64_t boot_sequence)
{
    cache_.writeU64(base_, kMagic);
    cache_.writeU64(base_ + 8, cores_);
    cache_.writeU64(base_ + 16, boot_sequence);
    return cache_.flushLine(base_);
}

uint64_t
ResumeBlock::checksum(const NvramSpace &memory) const
{
    std::vector<uint8_t> bytes(sizeFor(cores_));
    memory.read(base_, bytes);
    return fnv1a(bytes);
}

CpuContext
ResumeBlock::loadContext(const NvramSpace &memory, unsigned core) const
{
    std::vector<uint8_t> image(CpuContext::serializedSize());
    memory.read(slotAddr(core), image);
    return CpuContext::deserialize(image);
}

uint64_t
ResumeBlock::bootSequence(const NvramSpace &memory) const
{
    if (memory.readU64(base_) != kMagic)
        return 0;
    return memory.readU64(base_ + 16);
}

} // namespace wsp
