#include "apps/cluster.h"

#include <algorithm>

#include "util/logging.h"

namespace wsp::apps {

StormReport
correlatedOutage(const ClusterConfig &config)
{
    WSP_CHECK(config.servers >= 1);
    StormReport report;

    BackendStore backend(config.backend);
    report.backendSingle =
        backend.recoveryTime(config.memoryPerServer, 1);
    // Storm: every server recovers at once; the shared back end
    // spreads its aggregate bandwidth across them.
    report.backendRecovery =
        backend.recoveryTime(config.memoryPerServer, config.servers);

    // WSP: each server restores from its own NVDIMMs, fully parallel
    // across servers and across modules within a server; only the
    // stale tail of updates comes from the back end, and even in a
    // storm that traffic is tiny.
    NvdimmConfig module = config.nvdimm;
    module.capacityBytes = std::max<uint64_t>(module.capacityBytes, 1);
    const double restore_bw =
        module.channelRestoreBw *
        std::max(1u, module.flashChannels == 0
                         ? static_cast<unsigned>(
                               (module.capacityBytes + kGiB - 1) / kGiB)
                         : module.flashChannels);
    const Tick module_restore = fromSeconds(
        static_cast<double>(module.capacityBytes) / restore_bw);

    const auto stale_bytes = static_cast<uint64_t>(
        config.staleFraction *
        static_cast<double>(config.memoryPerServer));
    const Tick stale_fetch =
        backend.recoveryTime(stale_bytes, config.servers);

    report.wspRecovery =
        config.wspBootOverhead + module_restore + stale_fetch;
    report.speedup =
        static_cast<double>(report.backendRecovery) /
        static_cast<double>(std::max<Tick>(report.wspRecovery, 1));
    return report;
}

Tick
reReplicationTime(const ReplicationConfig &config)
{
    WSP_CHECK(config.copyBandwidth > 0.0);
    return fromSeconds(static_cast<double>(config.stateBytes) /
                       config.copyBandwidth);
}

Tick
wspCatchupTime(const ReplicationConfig &config, Tick outage)
{
    // Updates missed during (outage + recovery) must be streamed; the
    // stream itself falls behind by rate/bandwidth, converging when
    // rate < bandwidth: total transfer = missed / (1 - rate/bw).
    WSP_CHECK(config.updateRateBytesPerSec < config.copyBandwidth);
    const double behind_seconds =
        toSeconds(outage + config.wspRecoveryTime);
    const double missed_bytes =
        config.updateRateBytesPerSec * behind_seconds;
    const double stream_seconds =
        missed_bytes /
        (config.copyBandwidth - config.updateRateBytesPerSec);
    return outage + config.wspRecoveryTime + fromSeconds(stream_seconds);
}

Tick
breakEvenOutage(const ReplicationConfig &config)
{
    // Solve wspCatchupTime(t) = reReplicationTime for t: with
    // r = rate, b = bandwidth, R = wsp recovery, S = state/b:
    //   (t + R) * (1 + r/(b-r)) = S  =>  t = S*(b-r)/b - R.
    const double b = config.copyBandwidth;
    const double r = config.updateRateBytesPerSec;
    const double s_seconds = toSeconds(reReplicationTime(config));
    const double t =
        s_seconds * (b - r) / b - toSeconds(config.wspRecoveryTime);
    return t <= 0.0 ? 0 : fromSeconds(t);
}

} // namespace wsp::apps
