#include "apps/directory_server.h"

#include <array>

namespace wsp::apps {

namespace {

/** The attribute types the mini-schema accepts. */
constexpr std::array<std::string_view, 8> kKnownAttributes = {
    "objectClass", "cn", "sn", "givenName", "mail",
    "telephoneNumber", "uid", "description",
};

bool
knownAttribute(std::string_view name)
{
    for (std::string_view known : kKnownAttributes) {
        if (name == known)
            return true;
    }
    return false;
}

/** Split "name: value"; returns false on malformed lines. */
bool
splitLine(std::string_view line, std::string_view *name,
          std::string_view *value)
{
    const size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0)
        return false;
    *name = line.substr(0, colon);
    size_t start = colon + 1;
    while (start < line.size() && line[start] == ' ')
        ++start;
    *value = line.substr(start);
    return true;
}

} // namespace

std::string
directoryResultName(DirectoryResult result)
{
    switch (result) {
      case DirectoryResult::Success:
        return "success";
      case DirectoryResult::InvalidSyntax:
        return "invalid syntax";
      case DirectoryResult::UndefinedAttributeType:
        return "undefined attribute type";
      case DirectoryResult::EntryAlreadyExists:
        return "entry already exists";
      case DirectoryResult::NoSuchObject:
        return "no such object";
    }
    return "unknown";
}

DirectoryResult
parseEntry(std::string_view text, DirectoryEntry *out)
{
    out->dn.clear();
    out->attributes.clear();

    size_t pos = 0;
    bool first = true;
    while (pos < text.size()) {
        size_t end = text.find('\n', pos);
        if (end == std::string_view::npos)
            end = text.size();
        const std::string_view line = text.substr(pos, end - pos);
        pos = end + 1;
        if (line.empty())
            continue;

        std::string_view name;
        std::string_view value;
        if (!splitLine(line, &name, &value))
            return DirectoryResult::InvalidSyntax;
        if (first) {
            if (name != "dn" || value.empty())
                return DirectoryResult::InvalidSyntax;
            out->dn.assign(value);
            first = false;
            continue;
        }
        out->attributes.emplace_back(std::string(name),
                                     std::string(value));
    }
    if (first)
        return DirectoryResult::InvalidSyntax; // no dn line at all
    return DirectoryResult::Success;
}

DirectoryResult
validateEntry(const DirectoryEntry &entry)
{
    if (entry.dn.empty() || entry.attributes.empty())
        return DirectoryResult::InvalidSyntax;
    for (const auto &[name, value] : entry.attributes) {
        if (!knownAttribute(name))
            return DirectoryResult::UndefinedAttributeType;
        if (value.empty())
            return DirectoryResult::InvalidSyntax;
    }
    return DirectoryResult::Success;
}

DirectoryEntry
randomEntry(Rng &rng, uint64_t index)
{
    static const char *const kFirst[] = {"ada", "alan", "barbara",
                                         "donald", "edsger", "grace",
                                         "john", "leslie"};
    static const char *const kLast[] = {"lovelace", "turing", "liskov",
                                        "knuth", "dijkstra", "hopper",
                                        "backus", "lamport"};
    const char *first = kFirst[rng.next(8)];
    const char *last = kLast[rng.next(8)];
    const std::string uid =
        std::string(first) + "." + last + "." + std::to_string(index);

    DirectoryEntry entry;
    entry.dn = "uid=" + uid + ",ou=people,dc=example,dc=com";
    entry.attributes = {
        {"objectClass", "inetOrgPerson"},
        {"uid", uid},
        {"givenName", first},
        {"sn", last},
        {"cn", std::string(first) + " " + last},
        {"mail", uid + "@example.com"},
        {"telephoneNumber",
         "+1 555 " + std::to_string(1000000 + rng.next(9000000))},
    };
    return entry;
}

std::string
renderEntry(const DirectoryEntry &entry)
{
    std::string out = "dn: " + entry.dn + "\n";
    for (const auto &[name, value] : entry.attributes)
        out += name + ": " + value + "\n";
    return out;
}

} // namespace wsp::apps
