/**
 * @file
 * LDAP-style wire protocol: BER-ish TLV codec, DN normalization, ACL
 * evaluation.
 *
 * The paper's Table 1 measures a complete OpenLDAP request path, not
 * a bare tree insert: the client BER-encodes an AddRequest, slapd
 * decodes it, normalizes the DN, evaluates access control, updates
 * the store, and encodes a response. The persistence cost the paper
 * reports is therefore diluted by that per-request processing. This
 * module provides the same pipeline as real computation — a
 * tag-length-value codec, RFC-4514-flavoured DN normalization, and a
 * small ACL rule engine — so the Table 1 bench exercises a realistic
 * server path around the persistent index.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "apps/directory_server.h"

namespace wsp::apps {

/** Message types (mirroring LDAP protocol op tags). */
enum class LdapOp : uint8_t {
    AddRequest = 0x68,
    AddResponse = 0x69,
    SearchRequest = 0x63,
    SearchResponse = 0x64,
    ModifyRequest = 0x66,
    ModifyResponse = 0x67,
    DelRequest = 0x4a,
    DelResponse = 0x6b,
};

/** Wire-level result codes (subset of RFC 4511). */
enum class LdapCode : uint8_t {
    Success = 0,
    ProtocolError = 2,
    UndefinedAttributeType = 17,
    InvalidDnSyntax = 34,
    InsufficientAccessRights = 50,
    EntryAlreadyExists = 68,
    NoSuchObject = 32,
};

/** Map a DirectoryResult onto the wire code. */
LdapCode toLdapCode(DirectoryResult result);

/** BER-ish TLV encoder (definite lengths, big-endian). */
class BerWriter
{
  public:
    /** Begin a constructed sequence with @p tag; returns its index. */
    size_t beginSequence(uint8_t tag);

    /** Patch the sequence's length (call after its content). */
    void endSequence(size_t index);

    /** Append a primitive octet string (tag 0x04). */
    void writeOctetString(std::string_view value);

    /** Append a primitive integer (tag 0x02, minimal encoding). */
    void writeInteger(uint64_t value);

    /** Append an enumerated value (tag 0x0a). */
    void writeEnum(uint8_t value);

    const std::vector<uint8_t> &bytes() const { return bytes_; }

  private:
    void writeLengthAt(size_t pos, size_t length);

    std::vector<uint8_t> bytes_;
    std::vector<size_t> pending_;
};

/** BER-ish TLV decoder. */
class BerReader
{
  public:
    explicit BerReader(std::span<const uint8_t> bytes) : bytes_(bytes) {}

    bool atEnd() const { return pos_ >= bytes_.size(); }
    bool failed() const { return failed_; }

    /** Read a tag byte; 0 on failure. */
    uint8_t readTag();

    /** Read a definite length. */
    size_t readLength();

    /** Enter a constructed value of @p tag; returns content length. */
    bool enterSequence(uint8_t tag, size_t *content_len);

    /** Read an octet string. */
    bool readOctetString(std::string *out);

    /** Read an integer. */
    bool readInteger(uint64_t *out);

    /** Read an enumerated byte. */
    bool readEnum(uint8_t *out);

  private:
    std::span<const uint8_t> bytes_;
    size_t pos_ = 0;
    bool failed_ = false;
};

/** Encode an AddRequest for @p entry. */
std::vector<uint8_t> encodeAddRequest(const DirectoryEntry &entry,
                                      uint32_t message_id);

/** Decode an AddRequest; false on protocol error. */
bool decodeAddRequest(std::span<const uint8_t> bytes, uint32_t *message_id,
                      DirectoryEntry *entry);

/** Encode a DelRequest for @p dn. */
std::vector<uint8_t> encodeDelRequest(std::string_view dn,
                                      uint32_t message_id);

/** Decode a DelRequest; false on protocol error. */
bool decodeDelRequest(std::span<const uint8_t> bytes, uint32_t *message_id,
                      std::string *dn);

/** Encode a ModifyRequest (replace-all form) for @p entry. */
std::vector<uint8_t> encodeModifyRequest(const DirectoryEntry &entry,
                                         uint32_t message_id);

/** Decode a ModifyRequest; false on protocol error. */
bool decodeModifyRequest(std::span<const uint8_t> bytes,
                         uint32_t *message_id, DirectoryEntry *entry);

/** Encode a SearchRequest (base-object lookup) for @p dn. */
std::vector<uint8_t> encodeSearchRequest(std::string_view dn,
                                         uint32_t message_id);

/** Decode a SearchRequest; false on protocol error. */
bool decodeSearchRequest(std::span<const uint8_t> bytes,
                         uint32_t *message_id, std::string *dn);

/**
 * Encode a SearchResponse: result code plus, on success, the entry
 * rendered as attribute TLVs.
 */
std::vector<uint8_t> encodeSearchResponse(uint32_t message_id,
                                          LdapCode code,
                                          const DirectoryEntry *entry);

/** Decode a SearchResponse; @p entry is filled only on Success. */
bool decodeSearchResponse(std::span<const uint8_t> bytes,
                          uint32_t *message_id, LdapCode *code,
                          DirectoryEntry *entry);

/** Encode an Add/Del/Modify/Search response with a result code. */
std::vector<uint8_t> encodeResponse(LdapOp op, uint32_t message_id,
                                    LdapCode code);

/** Decode a response; false on protocol error. */
bool decodeResponse(std::span<const uint8_t> bytes, uint32_t *message_id,
                    LdapCode *code);

/**
 * Normalize a DN per the usual server rules: lowercase attribute
 * types and values, strip insignificant spaces around '=', ',' and
 * within components. Returns false on syntactically invalid DNs.
 */
bool normalizeDn(std::string_view dn, std::string *out);

/** One access-control rule: who may do what below a subtree. */
struct AclRule
{
    std::string subtreeSuffix; ///< normalized DN suffix ("" = all)
    bool allowAdd = false;
    bool allowSearch = true;
};

/** Ordered rule list; first match wins. */
class AccessControl
{
  public:
    void addRule(AclRule rule) { rules_.push_back(std::move(rule)); }

    /** Default policy used when no rule matches. */
    void setDefault(bool allow_add, bool allow_search);

    bool mayAdd(std::string_view normalized_dn) const;
    bool maySearch(std::string_view normalized_dn) const;

  private:
    const AclRule *match(std::string_view normalized_dn) const;

    std::vector<AclRule> rules_;
    AclRule defaultRule_{"", true, true};
};

/**
 * The full request pipeline around a DirectoryServer: decode ->
 * normalize -> ACL -> execute -> encode. This is what the Table 1
 * bench drives for each update.
 */
template <typename Policy>
std::vector<uint8_t>
handleAddRequest(DirectoryServer<Policy> &server,
                 const AccessControl &acl,
                 std::span<const uint8_t> request)
{
    uint32_t message_id = 0;
    DirectoryEntry entry;
    if (!decodeAddRequest(request, &message_id, &entry)) {
        return encodeResponse(LdapOp::AddResponse, message_id,
                              LdapCode::ProtocolError);
    }
    std::string normalized;
    if (!normalizeDn(entry.dn, &normalized)) {
        return encodeResponse(LdapOp::AddResponse, message_id,
                              LdapCode::InvalidDnSyntax);
    }
    if (!acl.mayAdd(normalized)) {
        return encodeResponse(LdapOp::AddResponse, message_id,
                              LdapCode::InsufficientAccessRights);
    }
    entry.dn = normalized;
    const DirectoryResult result = server.add(renderEntry(entry));
    return encodeResponse(LdapOp::AddResponse, message_id,
                          toLdapCode(result));
}

/** Delete pipeline: decode -> normalize -> ACL -> execute -> encode. */
template <typename Policy>
std::vector<uint8_t>
handleDelRequest(DirectoryServer<Policy> &server,
                 const AccessControl &acl,
                 std::span<const uint8_t> request)
{
    uint32_t message_id = 0;
    std::string dn;
    if (!decodeDelRequest(request, &message_id, &dn)) {
        return encodeResponse(LdapOp::DelResponse, message_id,
                              LdapCode::ProtocolError);
    }
    std::string normalized;
    if (!normalizeDn(dn, &normalized)) {
        return encodeResponse(LdapOp::DelResponse, message_id,
                              LdapCode::InvalidDnSyntax);
    }
    // Deletion requires the same write right as addition.
    if (!acl.mayAdd(normalized)) {
        return encodeResponse(LdapOp::DelResponse, message_id,
                              LdapCode::InsufficientAccessRights);
    }
    return encodeResponse(LdapOp::DelResponse, message_id,
                          toLdapCode(server.remove(normalized)));
}

/** Search pipeline: decode -> normalize -> ACL -> lookup -> encode. */
template <typename Policy>
std::vector<uint8_t>
handleSearchRequest(DirectoryServer<Policy> &server,
                    const AccessControl &acl,
                    std::span<const uint8_t> request)
{
    uint32_t message_id = 0;
    std::string dn;
    if (!decodeSearchRequest(request, &message_id, &dn)) {
        return encodeSearchResponse(message_id,
                                    LdapCode::ProtocolError, nullptr);
    }
    std::string normalized;
    if (!normalizeDn(dn, &normalized)) {
        return encodeSearchResponse(message_id,
                                    LdapCode::InvalidDnSyntax, nullptr);
    }
    if (!acl.maySearch(normalized)) {
        return encodeSearchResponse(
            message_id, LdapCode::InsufficientAccessRights, nullptr);
    }
    DirectoryEntry entry;
    const DirectoryResult result = server.search(normalized, &entry);
    if (result != DirectoryResult::Success)
        return encodeSearchResponse(message_id, toLdapCode(result),
                                    nullptr);
    return encodeSearchResponse(message_id, LdapCode::Success, &entry);
}

/** Modify pipeline (replace-all form). */
template <typename Policy>
std::vector<uint8_t>
handleModifyRequest(DirectoryServer<Policy> &server,
                    const AccessControl &acl,
                    std::span<const uint8_t> request)
{
    uint32_t message_id = 0;
    DirectoryEntry entry;
    if (!decodeModifyRequest(request, &message_id, &entry)) {
        return encodeResponse(LdapOp::ModifyResponse, message_id,
                              LdapCode::ProtocolError);
    }
    std::string normalized;
    if (!normalizeDn(entry.dn, &normalized)) {
        return encodeResponse(LdapOp::ModifyResponse, message_id,
                              LdapCode::InvalidDnSyntax);
    }
    if (!acl.mayAdd(normalized)) {
        return encodeResponse(LdapOp::ModifyResponse, message_id,
                              LdapCode::InsufficientAccessRights);
    }
    entry.dn = normalized;
    return encodeResponse(LdapOp::ModifyResponse, message_id,
                          toLdapCode(server.modify(entry)));
}

} // namespace wsp::apps
