#include "apps/checkpoint.h"

namespace wsp::apps {

CheckpointScheduler::CheckpointScheduler(EventQueue &queue, KvStore &store,
                                         BackendStore &backend,
                                         CheckpointConfig config)
    : SimObject(queue, "checkpoint-scheduler"), store_(store),
      backend_(backend), config_(config)
{
}

void
CheckpointScheduler::start()
{
    if (running_)
        return;
    running_ = true;
    checkpointTick();
    queue_.scheduleAfter(config_.shipInterval, [this] { shipTick(); });
}

void
CheckpointScheduler::stop()
{
    running_ = false;
}

void
CheckpointScheduler::noteUpdate(const BackendLogEntry &entry)
{
    pending_.push_back(entry);
}

void
CheckpointScheduler::shipNow()
{
    for (const BackendLogEntry &entry : pending_)
        backend_.logUpdate(entry);
    updatesShipped_ += pending_.size();
    pending_.clear();
}

void
CheckpointScheduler::checkpointTick()
{
    if (!running_)
        return;
    // A checkpoint subsumes the shipped log and any pending batch.
    shipNow();
    backend_.checkpoint(store_);
    ++checkpointsTaken_;
    queue_.scheduleAfter(config_.checkpointPeriod,
                         [this] { checkpointTick(); });
}

void
CheckpointScheduler::shipTick()
{
    if (!running_)
        return;
    shipNow();
    queue_.scheduleAfter(config_.shipInterval, [this] { shipTick(); });
}

} // namespace wsp::apps
