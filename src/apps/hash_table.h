/**
 * @file
 * Persistent open-chaining hash table (the Fig. 5 microbenchmark).
 *
 * The paper's hash-table benchmark pre-populates a table with 100,000
 * entries and measures 1,000,000 random operations at a varying
 * update probability, under each of the five persistence
 * configurations. The table here is templated over a transaction
 * Policy so every configuration runs exactly the instrumentation it
 * would in a real system (see pheap/policies.h).
 *
 * All table state — header, bucket array, nodes — lives in the
 * persistent heap and is only reached through the policy's
 * transactions, so the structure is crash-consistent under the
 * durable policies and STM-retry-safe under the STM ones.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "pheap/policies.h"
#include "util/logging.h"

namespace wsp::apps {

using pmem::kNullOffset;
using pmem::Offset;
using pmem::PHeap;

/** A persistent hash table specialized for a transaction policy. */
template <typename Policy>
class HashTable
{
  public:
    struct Node
    {
        uint64_t key;
        uint64_t value;
        Offset next;
    };

    /** Persistent header cell (the handle to attach to after boot). */
    struct Header
    {
        Offset buckets;
        uint64_t bucketCount;
        uint64_t size;
    };

    /** Create a fresh table with @p buckets chains inside @p heap. */
    HashTable(PHeap &heap, uint64_t buckets) : heap_(heap)
    {
        Policy::run(heap_, [&](typename Policy::Tx &tx) {
            header_ = tx.alloc(sizeof(Header));
            const Offset array = tx.alloc(buckets * sizeof(Offset));
            Header *h = hdr();
            tx.write(&h->buckets, array);
            tx.write(&h->bucketCount, buckets);
            tx.write(&h->size, uint64_t{0});
        });
        // A fresh bucket array is unreachable until published, so it
        // can be zeroed without transactional instrumentation.
        Header *h = hdr();
        for (uint64_t i = 0; i < buckets; ++i)
            *heap_.region().template at<Offset>(
                h->buckets + i * sizeof(Offset)) = kNullOffset;
    }

    /** Attach to an existing table (recovery path). */
    HashTable(PHeap &heap, Offset header_offset, std::nullptr_t)
        : heap_(heap), header_(header_offset)
    {
    }

    /** Persistent handle for PHeap::setRootObject. */
    Offset headerOffset() const { return header_; }

    uint64_t bucketCount() const { return hdr()->bucketCount; }
    uint64_t size() const { return hdr()->size; }

    /** Insert or update; one transaction. Returns true on insert. */
    bool
    insert(uint64_t key, uint64_t value)
    {
        bool inserted = false;
        Policy::run(heap_, [&](typename Policy::Tx &tx) {
            inserted = false;
            Offset *head = bucketPtr(tx, key);
            for (Offset cur = tx.read(head); cur != kNullOffset;) {
                Node *node = at(cur);
                if (tx.read(&node->key) == key) {
                    tx.write(&node->value, value);
                    return;
                }
                cur = tx.read(&node->next);
            }
            const Offset fresh = tx.alloc(sizeof(Node));
            Node *node = at(fresh);
            tx.write(&node->key, key);
            tx.write(&node->value, value);
            tx.write(&node->next, tx.read(head));
            tx.write(head, fresh);
            tx.write(&hdr()->size, tx.read(&hdr()->size) + 1);
            inserted = true;
        });
        return inserted;
    }

    /** Remove a key; one transaction. Returns true when found. */
    bool
    erase(uint64_t key)
    {
        bool erased = false;
        Policy::run(heap_, [&](typename Policy::Tx &tx) {
            erased = false;
            Offset *link = bucketPtr(tx, key);
            for (Offset cur = tx.read(link); cur != kNullOffset;) {
                Node *node = at(cur);
                if (tx.read(&node->key) == key) {
                    tx.write(link, tx.read(&node->next));
                    tx.free(cur, sizeof(Node));
                    tx.write(&hdr()->size, tx.read(&hdr()->size) - 1);
                    erased = true;
                    return;
                }
                link = &node->next;
                cur = tx.read(link);
            }
        });
        return erased;
    }

    /** Look a key up; one transaction. */
    bool
    lookup(uint64_t key, uint64_t *value_out = nullptr)
    {
        bool found = false;
        Policy::run(heap_, [&](typename Policy::Tx &tx) {
            found = false;
            for (Offset cur = tx.read(bucketPtr(tx, key));
                 cur != kNullOffset;) {
                Node *node = at(cur);
                if (tx.read(&node->key) == key) {
                    if (value_out != nullptr)
                        *value_out = tx.read(&node->value);
                    found = true;
                    return;
                }
                cur = tx.read(&node->next);
            }
        });
        return found;
    }

    /** Sum of all values (one transaction); for verification. */
    uint64_t
    sumValues()
    {
        uint64_t sum = 0;
        Policy::run(heap_, [&](typename Policy::Tx &tx) {
            sum = 0;
            const Header *h = hdr();
            for (uint64_t index = 0; index < h->bucketCount; ++index) {
                Offset cur = tx.read(heap_.region().template at<Offset>(
                    h->buckets + index * sizeof(Offset)));
                while (cur != kNullOffset) {
                    Node *node = at(cur);
                    sum += tx.read(&node->value);
                    cur = tx.read(&node->next);
                }
            }
        });
        return sum;
    }

  private:
    Header *hdr() const { return heap_.region().template at<Header>(header_); }
    Node *at(Offset offset) { return heap_.region().template at<Node>(offset); }

    template <typename Tx>
    Offset *
    bucketPtr(Tx &tx, uint64_t key)
    {
        uint64_t h = key;
        h ^= h >> 33;
        h *= 0xff51afd7ed558ccdull;
        h ^= h >> 33;
        const Header *header = hdr();
        const uint64_t index = h % tx.read(&header->bucketCount);
        return heap_.region().template at<Offset>(
            tx.read(&header->buckets) + index * sizeof(Offset));
    }

    PHeap &heap_;
    Offset header_ = kNullOffset;
};

/**
 * Lock-striped sharded hash table: N independent HashTables, each in
 * its *own* persistent heap, each behind its own mutex.
 *
 * Per-shard heap privacy is what makes the striping sound under real
 * threads: a transaction only ever touches its shard's region, undo
 * and redo logs, so two threads in different shards share no mutable
 * state at all. Shard count must be a power of two.
 */
template <typename Policy>
class ShardedHashTable
{
  public:
    /** Create @p shards fresh tables, each in a heap built from
     *  @p heap_config, with @p buckets_per_shard chains each. */
    ShardedHashTable(unsigned shards, pmem::PHeapConfig heap_config,
                     uint64_t buckets_per_shard)
        : locks_(std::make_unique<std::mutex[]>(shards))
    {
        WSP_CHECKF(shards >= 1 && (shards & (shards - 1)) == 0,
                   "shard count must be a power of two");
        heaps_.reserve(shards);
        tables_.reserve(shards);
        for (unsigned i = 0; i < shards; ++i) {
            heaps_.push_back(std::make_unique<PHeap>(heap_config));
            tables_.push_back(std::make_unique<HashTable<Policy>>(
                *heaps_[i], buckets_per_shard));
        }
    }

    unsigned shardCount() const
    {
        return static_cast<unsigned>(tables_.size());
    }

    /** The shard owning @p key. */
    unsigned
    shardOf(uint64_t key) const
    {
        uint64_t h = key;
        h ^= h >> 33;
        h *= 0xff51afd7ed558ccdull;
        h ^= h >> 29;
        return static_cast<unsigned>(h & (tables_.size() - 1));
    }

    bool
    insert(uint64_t key, uint64_t value)
    {
        const unsigned shard = shardOf(key);
        std::lock_guard<std::mutex> guard(locks_[shard]);
        return tables_[shard]->insert(key, value);
    }

    bool
    erase(uint64_t key)
    {
        const unsigned shard = shardOf(key);
        std::lock_guard<std::mutex> guard(locks_[shard]);
        return tables_[shard]->erase(key);
    }

    bool
    lookup(uint64_t key, uint64_t *value_out = nullptr)
    {
        const unsigned shard = shardOf(key);
        std::lock_guard<std::mutex> guard(locks_[shard]);
        return tables_[shard]->lookup(key, value_out);
    }

    /** Total entries across shards. */
    uint64_t
    size() const
    {
        uint64_t total = 0;
        for (size_t i = 0; i < tables_.size(); ++i) {
            std::lock_guard<std::mutex> guard(locks_[i]);
            total += tables_[i]->size();
        }
        return total;
    }

    /** Sum of all values across shards (order-independent). */
    uint64_t
    sumValues()
    {
        uint64_t sum = 0;
        for (size_t i = 0; i < tables_.size(); ++i) {
            std::lock_guard<std::mutex> guard(locks_[i]);
            sum += tables_[i]->sumValues();
        }
        return sum;
    }

    /** Shard @p i's heap (stats, recovery experiments). */
    PHeap &heap(unsigned i) { return *heaps_.at(i); }

  private:
    std::vector<std::unique_ptr<PHeap>> heaps_;
    std::vector<std::unique_ptr<HashTable<Policy>>> tables_;
    mutable std::unique_ptr<std::mutex[]> locks_;
};

} // namespace wsp::apps
