/**
 * @file
 * In-memory key-value store over the simulated machine.
 *
 * The motivating applications of the paper are main-memory key-value
 * stores and databases (section 1). KvStore is such an application
 * running *inside* the simulated WSP machine: its entire state lives
 * in NVRAM behind the write-back cache, so a power failure exercises
 * the full flush-on-fail path and a restore brings the store back
 * verbatim. Open addressing with linear probing; 64-bit keys and
 * values; key 0 is reserved as the empty slot marker.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "machine/cache.h"

namespace wsp::apps {

/** Fixed-capacity open-addressing hash store in simulated NVRAM. */
class KvStore
{
  public:
    /**
     * @param cache    the cache all accesses go through
     * @param base     NVRAM base address of the store's region
     * @param capacity slot count (power of two)
     */
    KvStore(CacheModel &cache, uint64_t base, uint64_t capacity);

    /** Bytes of NVRAM a store of @p capacity slots needs. */
    static uint64_t regionBytes(uint64_t capacity);

    /**
     * Attach to a store previously created at @p base (after a
     * restore); validates the header.
     * @return nullopt when no valid store lives there.
     */
    static std::optional<KvStore> attach(CacheModel &cache, uint64_t base);

    uint64_t capacity() const { return capacity_; }

    /** Number of live keys (reads the persistent header). */
    uint64_t size() const;

    /** Insert or update @p key (nonzero). False when full. */
    bool put(uint64_t key, uint64_t value);

    /** Look up @p key. */
    bool get(uint64_t key, uint64_t *value_out = nullptr) const;

    /** Remove @p key; false when absent. */
    bool erase(uint64_t key);

    /** Sum of all values (full scan); for state verification. */
    uint64_t checksum() const;

    /** Visit every live (key, value) pair (scan order). */
    void forEach(const std::function<void(uint64_t key, uint64_t value)>
                     &visit) const;

  private:
    static constexpr uint64_t kMagic = 0x5753504b56535431ull; // WSPKVST1
    static constexpr uint64_t kTombstone = ~0ull;
    static constexpr uint64_t kHeaderBytes = 64;

    uint64_t slotAddr(uint64_t index) const
    {
        return base_ + kHeaderBytes + index * 16;
    }

    uint64_t probeStart(uint64_t key) const;
    void setSize(uint64_t size);

    KvStore(CacheModel &cache, uint64_t base, uint64_t capacity,
            std::nullptr_t);

    CacheModel &cache_;
    uint64_t base_;
    uint64_t capacity_;
};

} // namespace wsp::apps
