/**
 * @file
 * In-memory key-value store over the simulated machine.
 *
 * The motivating applications of the paper are main-memory key-value
 * stores and databases (section 1). KvStore is such an application
 * running *inside* the simulated WSP machine: its entire state lives
 * in NVRAM behind the write-back cache, so a power failure exercises
 * the full flush-on-fail path and a restore brings the store back
 * verbatim. Open addressing with linear probing; 64-bit keys and
 * values; key 0 is reserved as the empty slot marker.
 */

#pragma once

#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "machine/cache.h"

namespace wsp::util {
class FlitTracker;
}

namespace wsp::apps {

/** One operation in a KV batch. */
struct KvOp
{
    enum class Kind : uint8_t { Put, Get, Erase };

    Kind kind = Kind::Get;
    uint64_t key = 0;
    uint64_t value = 0; ///< Put payload; ignored otherwise

    static KvOp put(uint64_t key, uint64_t value)
    {
        return KvOp{Kind::Put, key, value};
    }
    static KvOp get(uint64_t key) { return KvOp{Kind::Get, key, 0}; }
    static KvOp erase(uint64_t key) { return KvOp{Kind::Erase, key, 0}; }
};

/**
 * Merged outcome counters of an applied batch. Every field is a sum
 * over per-op outcomes, so results are order-independent and a
 * sharded application (grouped by shard) merges to exactly the
 * counters of the same ops applied one by one.
 */
struct KvBatchResult
{
    uint64_t puts = 0;         ///< puts that landed
    uint64_t putsRejected = 0; ///< puts refused (store full)
    uint64_t gets = 0;
    uint64_t getHits = 0;
    uint64_t getValueSum = 0;  ///< sum of hit values (verification)
    uint64_t erases = 0;
    uint64_t erasesHit = 0;    ///< erases that removed a key

    void merge(const KvBatchResult &other)
    {
        puts += other.puts;
        putsRejected += other.putsRejected;
        gets += other.gets;
        getHits += other.getHits;
        getValueSum += other.getValueSum;
        erases += other.erases;
        erasesHit += other.erasesHit;
    }

    uint64_t ops() const { return puts + putsRejected + gets + erases; }
};

/** Fixed-capacity open-addressing hash store in simulated NVRAM. */
class KvStore
{
  public:
    /**
     * @param cache    the cache all accesses go through
     * @param base     NVRAM base address of the store's region
     * @param capacity slot count (power of two)
     */
    KvStore(CacheModel &cache, uint64_t base, uint64_t capacity);

    /** Bytes of NVRAM a store of @p capacity slots needs. */
    static uint64_t regionBytes(uint64_t capacity);

    /**
     * Attach to a store previously created at @p base (after a
     * restore); validates the header.
     * @return nullopt when no valid store lives there.
     */
    static std::optional<KvStore> attach(CacheModel &cache, uint64_t base);

    uint64_t capacity() const { return capacity_; }

    /** Number of live keys (reads the persistent header). */
    uint64_t size() const;

    /** Insert or update @p key (nonzero). False when full. */
    bool put(uint64_t key, uint64_t value);

    /** Look up @p key. */
    bool get(uint64_t key, uint64_t *value_out = nullptr) const;

    /** Remove @p key; false when absent. */
    bool erase(uint64_t key);

    /**
     * Apply @p ops in order with the live-count header maintained
     * once per batch instead of once per mutation: the header
     * read-modify-write is a full cache-model round trip, so batching
     * amortizes the per-op accounting the serving tier pays.
     * Externally equivalent to the per-op calls in the same order.
     */
    KvBatchResult applyBatch(std::span<const KvOp> ops);

    /** Sum of all values (full scan); for state verification. */
    uint64_t checksum() const;

    /** Visit every live (key, value) pair (scan order). */
    void forEach(const std::function<void(uint64_t key, uint64_t value)>
                     &visit) const;

    /**
     * Route every subsequent mutation's stores into @p flit so the
     * correctness-conditions checkers can track persistence
     * boundaries (FliT-style, util/flit.h). Pass nullptr to detach.
     * Not owned; must outlive the store or be detached.
     */
    void setFlitTracker(util::FlitTracker *flit) { flit_ = flit; }

  private:
    static constexpr uint64_t kMagic = 0x5753504b56535431ull; // WSPKVST1
    static constexpr uint64_t kTombstone = ~0ull;
    static constexpr uint64_t kHeaderBytes = 64;

    uint64_t slotAddr(uint64_t index) const
    {
        return base_ + kHeaderBytes + index * 16;
    }

    uint64_t probeStart(uint64_t key) const;
    void setSize(uint64_t size);

    /** Mutation funnel: cached store plus FliT notification. */
    void storeU64(uint64_t addr, uint64_t value);

    /**
     * Store a slot's (key, value) pair — always within one line.
     * Takes the cache's line-granular fast path when possible; the
     * direct-pointer shortcut is only legal without a FliT tracker
     * attached, because the tracker must see every store through
     * storeU64's funnel.
     */
    void storeSlotPair(uint64_t addr, uint64_t key, uint64_t value)
    {
        if (flit_ == nullptr) {
            uint8_t *line =
                cache_.touchLine(addr & ~(CacheModel::kLineSize - 1));
            if (line != nullptr) {
                const uint64_t off = addr & (CacheModel::kLineSize - 1);
                std::memcpy(line + off, &key, 8);
                std::memcpy(line + off + 8, &value, 8);
                return;
            }
        }
        storeU64(addr, key);
        storeU64(addr + 8, value);
    }

    /** Put against the slot array only; header untouched.
     *  @return false when full; *inserted set when a new key landed. */
    bool putSlot(uint64_t key, uint64_t value, bool *inserted);

    /** Erase against the slot array only; true when a key was removed. */
    bool eraseSlot(uint64_t key);

    KvStore(CacheModel &cache, uint64_t base, uint64_t capacity,
            std::nullptr_t);

    CacheModel &cache_;
    uint64_t base_;
    uint64_t capacity_;
    util::FlitTracker *flit_ = nullptr;
};

/**
 * Lock-striped sharded view over N KvStore shards.
 *
 * Keys are assigned to shards by a mixed hash, each shard owns a
 * disjoint NVRAM region (shard i at base + i * shardStride), and each
 * shard has its own mutex, so operations on different shards never
 * contend. Two deployment modes:
 *
 *  - crashsim mode: every shard runs over the *same* CacheModel (one
 *    cache pointer repeated). The event queue is single-threaded, so
 *    the per-shard locks are uncontended formality; what matters is
 *    that the persistent layout is shard-striped exactly as in the
 *    concurrent deployment, so crash/recovery invariants cover it.
 *  - serving mode: every shard gets a *private* CacheModel (and
 *    backing NVRAM). The simulator's cache and sparse memory are not
 *    thread-safe, so shard privacy plus the per-shard lock is what
 *    makes real-thread concurrency sound.
 *
 * Shard count must be a power of two.
 */
class ShardedKvStore
{
  public:
    /**
     * Create fresh shards. @p caches supplies one cache per shard
     * (pointers may repeat for the shared-cache mode); shard count is
     * caches.size().
     */
    ShardedKvStore(std::span<CacheModel *const> caches, uint64_t base,
                   uint64_t per_shard_capacity);

    /** NVRAM stride between consecutive shards (cache-line aligned). */
    static uint64_t shardStride(uint64_t per_shard_capacity);

    /** Total NVRAM bytes for @p shards shards. */
    static uint64_t regionBytes(unsigned shards, uint64_t per_shard_capacity);

    /**
     * Attach to a previously created sharded store at @p base (after
     * a restore); shard count is caches.size() and must match the
     * creation-time count. @return nullopt when any shard header is
     * invalid or capacities disagree.
     */
    static std::optional<ShardedKvStore>
    attach(std::span<CacheModel *const> caches, uint64_t base);

    unsigned shardCount() const
    {
        return static_cast<unsigned>(shards_.size());
    }

    /** The shard owning @p key. Inline: the traffic plane's
     *  producers route every generated op through this. */
    unsigned shardOf(uint64_t key) const
    {
        // Distinct mix from KvStore::probeStart so shard choice and
        // probe position stay uncorrelated.
        uint64_t h = key;
        h ^= h >> 33;
        h *= 0xff51afd7ed558ccdull;
        h ^= h >> 29;
        return static_cast<unsigned>(h & (shards_.size() - 1));
    }

    /**
     * Read-only view of shard @p i. The fleet's anti-entropy pass
     * scans shards directly to build per-shard digests; mutations
     * still go through the locking front door above.
     */
    const KvStore &shard(unsigned i) const { return shards_.at(i); }

    uint64_t perShardCapacity() const { return shards_.front().capacity(); }

    /** Insert or update @p key in its shard. False when full. */
    bool put(uint64_t key, uint64_t value);

    /** Look up @p key in its shard. */
    bool get(uint64_t key, uint64_t *value_out = nullptr) const;

    /** Remove @p key; false when absent. */
    bool erase(uint64_t key);

    /**
     * Apply @p ops grouped by shard: one stable counting pass sorts
     * the batch into shard runs, then each involved shard is locked
     * once and applies its run as a KvStore batch. Per-key op order
     * is preserved (a key's ops all land in its shard, in batch
     * order), so the merged counters and final state are exactly
     * those of the same ops applied one by one — while the serving
     * tier pays one lock acquisition and one size-header update per
     * shard per batch instead of per op.
     */
    KvBatchResult applyBatch(std::span<const KvOp> ops);

    /**
     * Apply a run of ops that the caller already routed to @p shard
     * (every op's key must satisfy shardOf(key) == shard). This is
     * the submission rings' drain entry: the rings are per-shard, so
     * the grouping pass applyBatch pays has already happened at
     * enqueue time. Takes the shard lock like every other mutation.
     */
    KvBatchResult applyShardBatch(unsigned shard,
                                  std::span<const KvOp> ops);

    /** Total live keys across shards. */
    uint64_t size() const;

    /** Order-independent checksum across shards. */
    uint64_t checksum() const;

    /** Live key count per shard (for balance checks). */
    std::vector<uint64_t> shardSizes() const;

    /** Visit every live pair, shard by shard (scan order). */
    void forEach(const std::function<void(uint64_t key, uint64_t value)>
                     &visit) const;

    /** Forward a FliT tracker to every shard (see KvStore). */
    void setFlitTracker(util::FlitTracker *flit);

  private:
    ShardedKvStore() = default;

    KvStore &shardFor(uint64_t key) { return shards_[shardOf(key)]; }

    std::vector<KvStore> shards_;
    /// Heap-allocated because std::mutex is immovable and the class
    /// must move (attach returns by value).
    std::unique_ptr<std::mutex[]> locks_;
};

} // namespace wsp::apps
