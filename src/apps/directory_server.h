/**
 * @file
 * LDAP-like directory server (the Table 1 workload).
 *
 * The paper benchmarks OpenLDAP with its Berkeley DB back end
 * replaced by an AVL tree in the persistent heap, inserting 100,000
 * randomly generated entries. This server reproduces that data path:
 * entries arrive as LDIF-style text, are parsed and schema-checked,
 * serialized into the persistent heap, and indexed by DN in the
 * policy-instrumented AVL tree — so the Mnemosyne configuration pays
 * per-update logging and flushing on every index write, while the
 * WSP configuration runs the identical server code with plain
 * in-memory stores.
 */

#pragma once

#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "apps/avl_tree.h"
#include "util/checksum.h"
#include "util/rng.h"

namespace wsp::apps {

/** A parsed directory entry. */
struct DirectoryEntry
{
    std::string dn;
    std::vector<std::pair<std::string, std::string>> attributes;
};

/** Result codes mirroring LDAP's common outcomes. */
enum class DirectoryResult {
    Success,
    InvalidSyntax,
    UndefinedAttributeType,
    EntryAlreadyExists,
    NoSuchObject,
};

/** Human-readable result name. */
std::string directoryResultName(DirectoryResult result);

/**
 * Parse LDIF-ish text ("dn: ...\nattr: value\n..."). Returns
 * InvalidSyntax on malformed input.
 */
DirectoryResult parseEntry(std::string_view text, DirectoryEntry *out);

/** Schema check: known attribute types, non-empty dn and values. */
DirectoryResult validateEntry(const DirectoryEntry &entry);

/** Generate a random person entry like the paper's workload. */
DirectoryEntry randomEntry(Rng &rng, uint64_t index);

/** Render an entry back to LDIF-ish text. */
std::string renderEntry(const DirectoryEntry &entry);

/** The server: parse -> validate -> serialize -> index. */
template <typename Policy>
class DirectoryServer
{
  public:
    explicit DirectoryServer(PHeap &heap) : heap_(heap), index_(heap) {}

    uint64_t entryCount() const { return index_.size(); }

    /** Add one entry from LDIF text (the benchmark's update op). */
    DirectoryResult
    add(std::string_view text)
    {
        DirectoryEntry entry;
        DirectoryResult result = parseEntry(text, &entry);
        if (result != DirectoryResult::Success)
            return result;
        result = validateEntry(entry);
        if (result != DirectoryResult::Success)
            return result;

        const uint64_t key = dnKey(entry.dn);
        if (index_.find(key))
            return DirectoryResult::EntryAlreadyExists;

        // Serialize the entry into the heap, then index it. The
        // bulk payload is written before the (transactional) index
        // insert publishes it, mirroring how the paper's port keeps
        // the tree as the only schema change.
        index_.insert(key, storeBlob(renderEntry(entry)));
        return DirectoryResult::Success;
    }

    /** Search by DN; fills @p out when found. */
    DirectoryResult
    search(std::string_view dn, DirectoryEntry *out = nullptr)
    {
        Offset payload = kNullOffset;
        if (!index_.find(dnKey(dn), &payload))
            return DirectoryResult::NoSuchObject;
        if (out != nullptr) {
            const uint64_t size =
                *heap_.region().template at<uint64_t>(payload);
            std::string blob(
                reinterpret_cast<const char *>(
                    heap_.region().at(payload + 8)),
                size);
            const DirectoryResult parsed = parseEntry(blob, out);
            if (parsed != DirectoryResult::Success)
                return parsed;
        }
        return DirectoryResult::Success;
    }

    /** Delete an entry by DN. */
    DirectoryResult
    remove(std::string_view dn)
    {
        const uint64_t key = dnKey(dn);
        Offset payload = kNullOffset;
        if (!index_.find(key, &payload))
            return DirectoryResult::NoSuchObject;
        index_.erase(key);
        freePayload(payload);
        return DirectoryResult::Success;
    }

    /**
     * Replace an entry's attributes (LDAP modify, replace-all form):
     * the DN must exist; the stored blob is rewritten.
     */
    DirectoryResult
    modify(const DirectoryEntry &entry)
    {
        const DirectoryResult valid = validateEntry(entry);
        if (valid != DirectoryResult::Success)
            return valid;
        const uint64_t key = dnKey(entry.dn);
        Offset old_payload = kNullOffset;
        if (!index_.find(key, &old_payload))
            return DirectoryResult::NoSuchObject;

        const Offset fresh = storeBlob(renderEntry(entry));
        index_.insert(key, fresh); // replaces the payload offset
        freePayload(old_payload);
        return DirectoryResult::Success;
    }

    /** The index (exposed for invariant checks in tests). */
    AvlTree<Policy> &index() { return index_; }

  private:
    /** Allocate and fill a length-prefixed blob; returns its offset. */
    Offset
    storeBlob(const std::string &blob)
    {
        Offset payload = kNullOffset;
        Policy::run(heap_, [&](typename Policy::Tx &tx) {
            payload = tx.alloc(blob.size() + 8);
        });
        *heap_.region().template at<uint64_t>(payload) = blob.size();
        std::memcpy(heap_.region().at(payload + 8), blob.data(),
                    blob.size());
        return payload;
    }

    /** Return a blob's block to the heap. */
    void
    freePayload(Offset payload)
    {
        const uint64_t size =
            *heap_.region().template at<uint64_t>(payload);
        Policy::run(heap_, [&](typename Policy::Tx &tx) {
            tx.free(payload, size + 8);
        });
    }

    static uint64_t
    dnKey(std::string_view dn)
    {
        return fnv1a(std::span<const uint8_t>(
            reinterpret_cast<const uint8_t *>(dn.data()), dn.size()));
    }

    PHeap &heap_;
    AvlTree<Policy> index_;
};

} // namespace wsp::apps
