/**
 * @file
 * Workload generators for the benchmark suite.
 *
 * The paper's microbenchmark draws keys uniformly; real key-value
 * traffic is skewed, which matters for flush-on-commit because hot
 * lines get flushed over and over. The generators here provide both:
 * a uniform stream (the paper's Fig. 5 setup) and a Zipfian stream
 * for the skew ablation.
 */

#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "util/logging.h"
#include "util/rng.h"

namespace wsp::apps {

/** Kinds of operation in a generated stream. */
enum class OpKind : uint8_t { Lookup = 0, Insert = 1, Erase = 2 };

/** One generated operation. */
struct WorkloadOp
{
    uint64_t key = 0;
    uint64_t value = 0;
    OpKind kind = OpKind::Lookup;
};

/** Key distribution of a stream. */
enum class KeyDistribution { Uniform, Zipfian };

/** Parameters of a generated stream. */
struct WorkloadSpec
{
    uint64_t keySpace = 200000;
    double updateProbability = 0.5; ///< updates split insert/erase
    KeyDistribution distribution = KeyDistribution::Uniform;
    double zipfTheta = 0.99; ///< YCSB-style skew parameter
};

/**
 * Zipfian key sampler over [1, n] using the Gray/Jim-Gray rejection
 * method (as in YCSB): constant-time draws after O(1) setup.
 */
class ZipfianSampler
{
  public:
    ZipfianSampler(uint64_t n, double theta) : n_(n), theta_(theta)
    {
        WSP_CHECK(n >= 1);
        WSP_CHECK(theta > 0.0 && theta < 1.0);
        zeta2_ = zeta(2, theta);
        zetaN_ = zeta(n, theta);
        alpha_ = 1.0 / (1.0 - theta_);
        eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_),
                               1.0 - theta_)) /
               (1.0 - zeta2_ / zetaN_);
    }

    /** Draw a key in [1, n]; small keys are the hot ones. */
    uint64_t
    next(Rng &rng)
    {
        const double u = rng.uniform();
        const double uz = u * zetaN_;
        if (uz < 1.0)
            return 1;
        if (uz < 1.0 + std::pow(0.5, theta_))
            return 2;
        const double raw =
            1.0 + static_cast<double>(n_) *
                      std::pow(eta_ * u - eta_ + 1.0, alpha_);
        const auto key = static_cast<uint64_t>(raw);
        return key < 1 ? 1 : (key > n_ ? n_ : key);
    }

  private:
    static double
    zeta(uint64_t n, double theta)
    {
        // Direct sum for small n; the standard approximation above
        // ~1e6 terms keeps setup fast.
        const uint64_t limit = n < 1000000 ? n : 1000000;
        double sum = 0.0;
        for (uint64_t i = 1; i <= limit; ++i)
            sum += 1.0 / std::pow(static_cast<double>(i), theta);
        if (limit < n) {
            // Integral tail approximation.
            sum += (std::pow(static_cast<double>(n), 1.0 - theta) -
                    std::pow(static_cast<double>(limit), 1.0 - theta)) /
                   (1.0 - theta);
        }
        return sum;
    }

    uint64_t n_;
    double theta_;
    double zeta2_;
    double zetaN_;
    double alpha_;
    double eta_;
};

/** Generate a pre-drawn operation stream per @p spec. */
inline std::vector<WorkloadOp>
generateWorkload(const WorkloadSpec &spec, uint64_t operations, Rng &rng)
{
    std::vector<WorkloadOp> ops(operations);
    ZipfianSampler zipf(spec.keySpace,
                        spec.distribution == KeyDistribution::Zipfian
                            ? spec.zipfTheta
                            : 0.5);
    for (auto &op : ops) {
        op.key = spec.distribution == KeyDistribution::Zipfian
                     ? zipf.next(rng)
                     : rng.next(spec.keySpace) + 1;
        op.value = rng();
        if (rng.uniform() < spec.updateProbability)
            op.kind = rng.chance(0.5) ? OpKind::Insert : OpKind::Erase;
        else
            op.kind = OpKind::Lookup;
    }
    return ops;
}

} // namespace wsp::apps
