#include "apps/kv_service.h"

#include <algorithm>
#include <chrono>
#include <mutex>

#include "apps/directory_server.h"
#include "trace/flight_recorder.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace wsp::apps {

namespace {

/** Per-worker op counters, merged in worker-index order. */
struct WorkerStats
{
    uint64_t ops = 0;
    uint64_t puts = 0;
    uint64_t gets = 0;
    uint64_t getHits = 0;
    uint64_t erases = 0;
};

/**
 * Apply worker @p worker's deterministic op stream to @p store.
 * Works against both ShardedKvStore and a plain KvStore (the
 * reference), which share the put/get/erase signatures.
 */
template <typename Store>
WorkerStats
runWorkerOps(Store &store, const KvServiceConfig &config, unsigned worker)
{
    // stream() depends only on (seed, worker), so the draw sequence is
    // identical no matter which thread runs the worker, or when.
    Rng rng = Rng(config.seed).stream(worker);
    const uint64_t lo = 1 + worker * config.keysPerWorker;
    WorkerStats stats;
    // Ops are generated into a batch and applied through the store's
    // batched path: one stripe-lock acquisition and one size-header
    // round trip per shard per batch instead of per op. kBatchOps is
    // also the black-box marker cadence — one KvBatch record per
    // applied batch, stamped with the shard of the batch's final key
    // (sharded store only). Emission is mutex-serialized inside the
    // recorder, so real-thread workers are safe.
    constexpr uint64_t kBatchOps = 1024;
    const auto emitBatch = [&](uint64_t key, uint64_t ops) {
        uint64_t shard = 0;
        if constexpr (requires { store.shardOf(key); })
            shard = store.shardOf(key);
        trace::frEmit(trace::FrEvent::KvBatch, trace::Category::Apps,
                      (shard << 32) | worker, ops);
    };
    std::vector<KvOp> batch;
    batch.reserve(kBatchOps);
    uint64_t remaining = config.opsPerThread;
    while (remaining > 0) {
        const uint64_t take = std::min(remaining, kBatchOps);
        batch.clear();
        for (uint64_t i = 0; i < take; ++i) {
            const uint64_t key = lo + rng.next(config.keysPerWorker);
            const double draw = rng.uniform();
            if (draw < config.putProbability) {
                batch.push_back(KvOp::put(key, rng() | 1));
            } else if (draw <
                       config.putProbability + config.eraseProbability) {
                batch.push_back(KvOp::erase(key));
            } else {
                batch.push_back(KvOp::get(key));
            }
        }
        const KvBatchResult applied = store.applyBatch(batch);
        WSP_CHECKF(applied.putsRejected == 0,
                   "KvService store rejected a put (full)");
        stats.ops += applied.ops();
        stats.puts += applied.puts;
        stats.gets += applied.gets;
        stats.getHits += applied.getHits;
        stats.erases += applied.erases;
        emitBatch(batch.back().key, take);
        remaining -= take;
    }
    return stats;
}

/** Merge per-worker stats (worker order) into a summary. */
void
mergeStats(KvServiceSummary &summary, const std::vector<WorkerStats> &stats)
{
    for (const WorkerStats &s : stats) {
        summary.opsApplied += s.ops;
        summary.puts += s.puts;
        summary.gets += s.gets;
        summary.getHits += s.getHits;
        summary.erases += s.erases;
    }
}

uint64_t
mix(uint64_t h, uint64_t v)
{
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    return h;
}

NvdimmConfig
moduleConfig(uint64_t bytes)
{
    NvdimmConfig config;
    // Round up to a MiB so tiny stores don't create degenerate
    // modules; flash channels stay on the one-per-GiB auto rule.
    config.capacityBytes = ((bytes + kMiB - 1) / kMiB) * kMiB;
    return config;
}

} // namespace

uint64_t
KvServiceSummary::fingerprint() const
{
    uint64_t h = 0x5753502d6b767376ull; // "WSP-kvsv"
    h = mix(h, opsApplied);
    h = mix(h, puts);
    h = mix(h, gets);
    h = mix(h, getHits);
    h = mix(h, erases);
    h = mix(h, finalSize);
    h = mix(h, finalChecksum);
    for (uint64_t size : shardSizes)
        h = mix(h, size);
    return h;
}

ShardEnvironment::ShardEnvironment(const std::string &name,
                                   uint64_t nvdimm_bytes,
                                   CacheModel::LineStore line_store)
    : dimm(queue, name, moduleConfig(nvdimm_bytes)),
      cache(name + ".cache", 2 * kMiB, CacheTiming{}, space, line_store)
{
    space.addModule(dimm);
}

KvService::KvService(KvServiceConfig config) : config_(std::move(config))
{
    WSP_CHECKF(config_.shards >= 1 &&
                   (config_.shards & (config_.shards - 1)) == 0,
               "KvService shard count must be a power of two");
    WSP_CHECKF(config_.threads >= 1, "KvService needs at least one thread");
    // Each shard addresses its slice of the striped layout inside its
    // own private space, so every module must span the full region.
    const uint64_t region =
        ShardedKvStore::regionBytes(config_.shards, config_.perShardCapacity);
    for (unsigned i = 0; i < config_.shards; ++i) {
        environments_.push_back(std::make_unique<ShardEnvironment>(
            "kvsvc.shard" + std::to_string(i), region,
            config_.lineStore));
        caches_.push_back(&environments_.back()->cache);
    }
    store_ = std::make_unique<ShardedKvStore>(
        std::span<CacheModel *const>(caches_), 0, config_.perShardCapacity);
}

KvServiceSummary
KvService::run()
{
    ThreadPool pool(config_.threads);
    std::vector<WorkerStats> stats(config_.threads);
    const auto begin = std::chrono::steady_clock::now();
    pool.runWorkers([this, &stats](unsigned worker) {
        stats[worker] = runWorkerOps(*store_, config_, worker);
    });
    const auto end = std::chrono::steady_clock::now();

    KvServiceSummary summary;
    mergeStats(summary, stats);
    summary.finalSize = store_->size();
    summary.finalChecksum = store_->checksum();
    summary.shardSizes = store_->shardSizes();
    summary.wallSeconds =
        std::chrono::duration<double>(end - begin).count();
    return summary;
}

KvServiceSummary
KvService::runReference(const KvServiceConfig &config)
{
    // One shard, total capacity, workers applied sequentially in
    // worker order. Because workers own disjoint key ranges, this is
    // observationally the state every interleaving of run() reaches.
    const uint64_t capacity = config.perShardCapacity * config.shards;
    ShardEnvironment environment("kvsvc.reference",
                                 KvStore::regionBytes(capacity));
    KvStore store(environment.cache, 0, capacity);

    std::vector<WorkerStats> stats(config.threads);
    for (unsigned worker = 0; worker < config.threads; ++worker)
        stats[worker] = runWorkerOps(store, config, worker);

    KvServiceSummary summary;
    mergeStats(summary, stats);
    summary.finalSize = store.size();
    summary.finalChecksum = store.checksum();
    summary.shardSizes = {store.size()};
    return summary;
}

uint64_t
runShardedDirectoryWorkload(unsigned shards, unsigned threads,
                            uint64_t entries_per_thread, uint64_t seed)
{
    WSP_CHECKF(shards >= 1 && (shards & (shards - 1)) == 0,
               "directory shard count must be a power of two");
    // Per-shard server in a private heap behind a stripe lock: the
    // Table 1 data path (parse -> validate -> serialize -> index)
    // runs concurrently across shards.
    struct DirectoryShard
    {
        DirectoryShard(pmem::PHeapConfig config)
            : heap(config), server(heap)
        {
        }
        pmem::PHeap heap;
        DirectoryServer<pmem::RawPolicy> server;
        std::mutex lock;
    };

    pmem::PHeapConfig heap_config;
    heap_config.regionSize = 16 * kMiB; // two 4 MiB logs + header + arena
    std::vector<std::unique_ptr<DirectoryShard>> stripes;
    stripes.reserve(shards);
    for (unsigned i = 0; i < shards; ++i)
        stripes.push_back(std::make_unique<DirectoryShard>(heap_config));

    ThreadPool pool(threads);
    pool.runWorkers([&](unsigned worker) {
        Rng rng = Rng(seed).stream(worker);
        for (uint64_t i = 0; i < entries_per_thread; ++i) {
            // Index is globally unique, so DNs never collide across
            // workers and the final count is exact.
            const uint64_t index = worker * entries_per_thread + i;
            const DirectoryEntry entry = randomEntry(rng, index);
            uint64_t h = 0;
            for (char c : entry.dn)
                h = h * 131 + static_cast<unsigned char>(c);
            DirectoryShard &stripe = *stripes[h & (shards - 1)];
            std::lock_guard<std::mutex> guard(stripe.lock);
            const DirectoryResult added =
                stripe.server.add(renderEntry(entry));
            WSP_CHECK(added == DirectoryResult::Success);
            // Read-your-write through the full search path.
            const DirectoryResult found = stripe.server.search(entry.dn);
            WSP_CHECK(found == DirectoryResult::Success);
        }
    });

    uint64_t total = 0;
    for (const auto &stripe : stripes)
        total += stripe->server.entryCount();
    return total;
}

} // namespace wsp::apps
