/**
 * @file
 * Cluster recovery-storm model.
 *
 * The paper's opening motivation (sections 1-2): a correlated power
 * outage makes 10s-100s of main-memory servers refresh terabytes
 * from a shared back end at once — the Facebook 2010 outage took
 * 2.5 hours — while WSP lets every server recover locally and in
 * parallel from its own NVDIMMs. This model quantifies both regimes
 * for a configurable cluster.
 */

#pragma once

#include <cstdint>

#include "apps/backend_store.h"
#include "nvram/nvdimm.h"
#include "util/units.h"

namespace wsp::apps {

/** Cluster and per-server parameters. */
struct ClusterConfig
{
    unsigned servers = 100;
    uint64_t memoryPerServer = 256ull * 1024 * 1024 * 1024;
    BackendConfig backend;

    /** Per-server NVDIMM configuration (for the WSP regime). */
    NvdimmConfig nvdimm;

    /** Firmware + OS resume overhead per server on the WSP path. */
    Tick wspBootOverhead = fromSeconds(10.0);

    /** Fraction of updates since the checkpoint that must be
     *  re-fetched even under WSP (the state is slightly stale). */
    double staleFraction = 0.001;
};

/** Recovery times for a correlated whole-cluster outage. */
struct StormReport
{
    Tick backendRecovery = 0; ///< storm: all servers on the back end
    Tick backendSingle = 0;   ///< one server alone on the back end
    Tick wspRecovery = 0;     ///< all servers restore locally
    double speedup = 0.0;     ///< backendRecovery / wspRecovery
};

/** Compute both regimes for a correlated outage of the whole cluster. */
StormReport correlatedOutage(const ClusterConfig &config);

/**
 * Replica-management tradeoff (paper section 6, "Long outages"):
 * when one replica of a state-machine-replicated service fails, the
 * system can immediately re-instantiate a fresh replica (full state
 * copy from a live one) or wait for the failed server to come back
 * with its NVRAM state and only stream it the updates it missed.
 */
struct ReplicationConfig
{
    uint64_t stateBytes = 256ull * 1024 * 1024 * 1024;

    /** Replica-to-replica copy bandwidth (network-bound). */
    double copyBandwidth = 1.25e9; // 10 GbE

    /** Rate at which the live replicas accrue new updates. */
    double updateRateBytesPerSec = 10.0e6;

    /** Local WSP recovery time of the failed server once power is
     *  back (boot + NVDIMM restore). */
    Tick wspRecoveryTime = fromSeconds(15.0);
};

/** Time to bring up a brand-new replica by full state copy. */
Tick reReplicationTime(const ReplicationConfig &config);

/**
 * Time from failure to a fully caught-up replica when waiting out an
 * outage of @p outage and recovering via WSP: the outage itself, the
 * local recovery, and streaming the updates missed meanwhile (which
 * themselves accrue more updates while streaming).
 */
Tick wspCatchupTime(const ReplicationConfig &config, Tick outage);

/**
 * The outage duration at which immediate re-replication becomes
 * faster than waiting for WSP recovery. Returns 0 when
 * re-replication always wins (e.g. tiny state).
 */
Tick breakEvenOutage(const ReplicationConfig &config);

} // namespace wsp::apps
