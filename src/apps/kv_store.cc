#include "apps/kv_store.h"

#include "util/flit.h"
#include "util/logging.h"

namespace wsp::apps {

namespace {

// Header word offsets.
constexpr uint64_t kOffMagic = 0;
constexpr uint64_t kOffCapacity = 8;
constexpr uint64_t kOffSize = 16;

} // namespace

KvStore::KvStore(CacheModel &cache, uint64_t base, uint64_t capacity)
    : cache_(cache), base_(base), capacity_(capacity)
{
    WSP_CHECKF((capacity & (capacity - 1)) == 0,
               "KvStore capacity must be a power of two");
    // O(1) line lookups over our region (flat store only; a no-op on
    // the reference store). With a shared cache the last shard's
    // registration wins — earlier shards just keep the hash probe.
    cache_.registerRegionView(base_, regionBytes(capacity));
    cache_.writeU64(base_ + kOffMagic, kMagic);
    cache_.writeU64(base_ + kOffCapacity, capacity);
    cache_.writeU64(base_ + kOffSize, 0);
    for (uint64_t i = 0; i < capacity; ++i) {
        cache_.writeU64(slotAddr(i), 0);
        cache_.writeU64(slotAddr(i) + 8, 0);
    }
}

KvStore::KvStore(CacheModel &cache, uint64_t base, uint64_t capacity,
                 std::nullptr_t)
    : cache_(cache), base_(base), capacity_(capacity)
{
    cache_.registerRegionView(base_, regionBytes(capacity_));
}

uint64_t
KvStore::regionBytes(uint64_t capacity)
{
    return kHeaderBytes + capacity * 16;
}

std::optional<KvStore>
KvStore::attach(CacheModel &cache, uint64_t base)
{
    if (cache.readU64(base + kOffMagic) != kMagic)
        return std::nullopt;
    const uint64_t capacity = cache.readU64(base + kOffCapacity);
    if (capacity == 0 || (capacity & (capacity - 1)) != 0)
        return std::nullopt;
    return KvStore(cache, base, capacity, nullptr);
}

uint64_t
KvStore::size() const
{
    return cache_.readU64(base_ + kOffSize);
}

void
KvStore::setSize(uint64_t size)
{
    storeU64(base_ + kOffSize, size);
}

void
KvStore::storeU64(uint64_t addr, uint64_t value)
{
    cache_.writeU64(addr, value);
    if (flit_ != nullptr)
        flit_->onStore(addr, 8);
}

uint64_t
KvStore::probeStart(uint64_t key) const
{
    uint64_t h = key;
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ull;
    h ^= h >> 27;
    return h & (capacity_ - 1);
}

// The probe loops below walk slots line-wise: four 16-byte slots
// share a cache line, so one peekLine probe serves up to four key
// reads (and a slot's value always sits in the same line as its
// key). A nullptr line — not dirty, or the reference store — falls
// back to the per-word cache calls, which have identical semantics;
// writes go through storeSlotU64/storeSlotPair so a FliT tracker
// still sees every store.

namespace {

constexpr uint64_t kLineMask = CacheModel::kLineSize - 1;

inline uint64_t
loadSlotKey(const CacheModel &cache, const uint8_t *line, uint64_t addr)
{
    if (line != nullptr) {
        uint64_t key;
        std::memcpy(&key, line + (addr & kLineMask), 8);
        return key;
    }
    return cache.readU64(addr);
}

} // namespace

bool
KvStore::putSlot(uint64_t key, uint64_t value, bool *inserted)
{
    WSP_CHECKF(key != 0 && key != kTombstone,
               "KvStore keys 0 and ~0 are reserved");
    *inserted = false;
    const uint64_t mask = capacity_ - 1;
    const uint64_t start = probeStart(key);
    uint64_t first_tombstone = capacity_;
    // The probed line is resolved once and written through directly
    // when it lands in the same line (the common case): the LineRef
    // carries the slab slot, so marking the line written needs no
    // second table probe. The direct path is barred while a FliT
    // tracker is attached — it must see every store.
    const bool direct = flit_ == nullptr;
    CacheModel::LineRef line;
    uint64_t line_base = ~0ull;
    for (uint64_t step = 0; step < capacity_; ++step) {
        const uint64_t index = (start + step) & mask;
        const uint64_t addr = slotAddr(index);
        if ((addr & ~kLineMask) != line_base) {
            line_base = addr & ~kLineMask;
            line = cache_.findLineMut(line_base);
        }
        uint64_t slot_key;
        if (line)
            std::memcpy(&slot_key, line.data + (addr & kLineMask), 8);
        else
            slot_key = cache_.readU64(addr);
        if (slot_key == key) {
            if (direct && line) {
                cache_.touchLineRef(line);
                std::memcpy(line.data + ((addr + 8) & kLineMask), &value,
                            8);
            } else {
                storeU64(addr + 8, value);
            }
            return true;
        }
        if (slot_key == kTombstone) {
            if (first_tombstone == capacity_)
                first_tombstone = index;
            continue;
        }
        if (slot_key == 0) {
            const uint64_t target =
                first_tombstone != capacity_ ? first_tombstone : index;
            const uint64_t target_addr = slotAddr(target);
            if (direct && line && (target_addr & ~kLineMask) == line_base) {
                cache_.touchLineRef(line);
                const uint64_t off = target_addr & kLineMask;
                std::memcpy(line.data + off, &key, 8);
                std::memcpy(line.data + off + 8, &value, 8);
            } else {
                storeSlotPair(target_addr, key, value);
            }
            *inserted = true;
            return true;
        }
    }
    if (first_tombstone != capacity_) {
        storeSlotPair(slotAddr(first_tombstone), key, value);
        *inserted = true;
        return true;
    }
    return false; // full
}

bool
KvStore::put(uint64_t key, uint64_t value)
{
    bool inserted = false;
    if (!putSlot(key, value, &inserted))
        return false;
    if (inserted)
        setSize(size() + 1);
    return true;
}

bool
KvStore::get(uint64_t key, uint64_t *value_out) const
{
    const uint64_t mask = capacity_ - 1;
    const uint64_t start = probeStart(key);
    const uint8_t *line = nullptr;
    uint64_t line_base = ~0ull;
    for (uint64_t step = 0; step < capacity_; ++step) {
        const uint64_t index = (start + step) & mask;
        const uint64_t addr = slotAddr(index);
        if ((addr & ~kLineMask) != line_base) {
            line_base = addr & ~kLineMask;
            line = cache_.peekLine(line_base);
        }
        const uint64_t slot_key = loadSlotKey(cache_, line, addr);
        if (slot_key == key) {
            if (value_out != nullptr) {
                if (line != nullptr)
                    std::memcpy(value_out, line + ((addr + 8) & kLineMask),
                                8);
                else
                    *value_out = cache_.readU64(addr + 8);
            }
            return true;
        }
        if (slot_key == 0)
            return false;
    }
    return false;
}

bool
KvStore::eraseSlot(uint64_t key)
{
    const uint64_t mask = capacity_ - 1;
    const uint64_t start = probeStart(key);
    const bool direct = flit_ == nullptr;
    CacheModel::LineRef line;
    uint64_t line_base = ~0ull;
    for (uint64_t step = 0; step < capacity_; ++step) {
        const uint64_t index = (start + step) & mask;
        const uint64_t addr = slotAddr(index);
        if ((addr & ~kLineMask) != line_base) {
            line_base = addr & ~kLineMask;
            line = cache_.findLineMut(line_base);
        }
        uint64_t slot_key;
        if (line)
            std::memcpy(&slot_key, line.data + (addr & kLineMask), 8);
        else
            slot_key = cache_.readU64(addr);
        if (slot_key == key) {
            if (direct && line) {
                cache_.touchLineRef(line);
                const uint64_t off = addr & kLineMask;
                const uint64_t tombstone = kTombstone;
                const uint64_t zero = 0;
                std::memcpy(line.data + off, &tombstone, 8);
                std::memcpy(line.data + off + 8, &zero, 8);
            } else {
                storeSlotPair(addr, kTombstone, 0);
            }
            return true;
        }
        if (slot_key == 0)
            return false;
    }
    return false;
}

bool
KvStore::erase(uint64_t key)
{
    if (!eraseSlot(key))
        return false;
    setSize(size() - 1);
    return true;
}

KvBatchResult
KvStore::applyBatch(std::span<const KvOp> ops)
{
    KvBatchResult result;
    int64_t delta = 0;
    for (const KvOp &op : ops) {
        switch (op.kind) {
          case KvOp::Kind::Put: {
            bool inserted = false;
            if (putSlot(op.key, op.value, &inserted)) {
                ++result.puts;
                delta += inserted ? 1 : 0;
            } else {
                ++result.putsRejected;
            }
            break;
          }
          case KvOp::Kind::Get: {
            uint64_t value = 0;
            ++result.gets;
            if (get(op.key, &value)) {
                ++result.getHits;
                result.getValueSum += value;
            }
            break;
          }
          case KvOp::Kind::Erase: {
            ++result.erases;
            if (eraseSlot(op.key)) {
                ++result.erasesHit;
                --delta;
            }
            break;
          }
        }
    }
    // One header round trip for the whole batch; per-op accounting
    // through the cache model is the cost this amortizes.
    if (delta != 0)
        setSize(size() + static_cast<uint64_t>(delta));
    return result;
}

void
KvStore::forEach(
    const std::function<void(uint64_t, uint64_t)> &visit) const
{
    for (uint64_t i = 0; i < capacity_; ++i) {
        const uint64_t key = cache_.readU64(slotAddr(i));
        if (key != 0 && key != kTombstone)
            visit(key, cache_.readU64(slotAddr(i) + 8));
    }
}

uint64_t
KvStore::checksum() const
{
    uint64_t sum = 0;
    for (uint64_t i = 0; i < capacity_; ++i) {
        const uint64_t key = cache_.readU64(slotAddr(i));
        if (key != 0 && key != kTombstone) {
            sum += key * 0x9e3779b97f4a7c15ull +
                   cache_.readU64(slotAddr(i) + 8);
        }
    }
    return sum;
}

ShardedKvStore::ShardedKvStore(std::span<CacheModel *const> caches,
                               uint64_t base, uint64_t per_shard_capacity)
{
    const auto shards = static_cast<unsigned>(caches.size());
    WSP_CHECKF(shards >= 1 && (shards & (shards - 1)) == 0,
               "shard count must be a power of two");
    const uint64_t stride = shardStride(per_shard_capacity);
    shards_.reserve(shards);
    for (unsigned i = 0; i < shards; ++i) {
        shards_.emplace_back(*caches[i], base + i * stride,
                             per_shard_capacity);
    }
    locks_ = std::make_unique<std::mutex[]>(shards);
}

uint64_t
ShardedKvStore::shardStride(uint64_t per_shard_capacity)
{
    const uint64_t bytes = KvStore::regionBytes(per_shard_capacity);
    return (bytes + CacheModel::kLineSize - 1) & ~(CacheModel::kLineSize - 1);
}

uint64_t
ShardedKvStore::regionBytes(unsigned shards, uint64_t per_shard_capacity)
{
    return shards * shardStride(per_shard_capacity);
}

std::optional<ShardedKvStore>
ShardedKvStore::attach(std::span<CacheModel *const> caches, uint64_t base)
{
    const auto shards = static_cast<unsigned>(caches.size());
    if (shards == 0 || (shards & (shards - 1)) != 0)
        return std::nullopt;
    // Shard 0's header fixes the per-shard capacity, hence the stride
    // at which the remaining shards must be found.
    auto first = KvStore::attach(*caches[0], base);
    if (!first)
        return std::nullopt;
    const uint64_t stride = shardStride(first->capacity());

    ShardedKvStore store;
    store.shards_.reserve(shards);
    store.shards_.push_back(*first);
    for (unsigned i = 1; i < shards; ++i) {
        auto shard = KvStore::attach(*caches[i], base + i * stride);
        if (!shard || shard->capacity() != first->capacity())
            return std::nullopt;
        store.shards_.push_back(*shard);
    }
    store.locks_ = std::make_unique<std::mutex[]>(shards);
    return store;
}

bool
ShardedKvStore::put(uint64_t key, uint64_t value)
{
    const unsigned shard = shardOf(key);
    std::lock_guard<std::mutex> guard(locks_[shard]);
    return shards_[shard].put(key, value);
}

bool
ShardedKvStore::get(uint64_t key, uint64_t *value_out) const
{
    const unsigned shard = shardOf(key);
    std::lock_guard<std::mutex> guard(locks_[shard]);
    return shards_[shard].get(key, value_out);
}

bool
ShardedKvStore::erase(uint64_t key)
{
    const unsigned shard = shardOf(key);
    std::lock_guard<std::mutex> guard(locks_[shard]);
    return shards_[shard].erase(key);
}

KvBatchResult
ShardedKvStore::applyBatch(std::span<const KvOp> ops)
{
    KvBatchResult result;
    if (ops.empty())
        return result;
    const size_t shard_count = shards_.size();
    if (shard_count == 1) {
        std::lock_guard<std::mutex> guard(locks_[0]);
        return shards_[0].applyBatch(ops);
    }

    // Stable counting sort into shard runs: per-key order survives
    // (a key's ops all map to one shard, in batch order), and each
    // run is contiguous so the shard applies it as one KvStore batch.
    // Scratch is thread-local: each serving worker reuses its arrays
    // across batches instead of paying five allocations per call.
    static thread_local std::vector<uint32_t> shard_of;
    static thread_local std::vector<uint32_t> counts;
    static thread_local std::vector<uint32_t> offsets;
    static thread_local std::vector<uint32_t> fill;
    static thread_local std::vector<KvOp> grouped;
    shard_of.resize(ops.size());
    counts.assign(shard_count, 0);
    for (size_t i = 0; i < ops.size(); ++i) {
        shard_of[i] = shardOf(ops[i].key);
        ++counts[shard_of[i]];
    }
    offsets.resize(shard_count);
    uint32_t cursor = 0;
    for (size_t s = 0; s < shard_count; ++s) {
        offsets[s] = cursor;
        cursor += counts[s];
    }
    grouped.resize(ops.size());
    fill = offsets;
    for (size_t i = 0; i < ops.size(); ++i)
        grouped[fill[shard_of[i]]++] = ops[i];

    for (size_t s = 0; s < shard_count; ++s) {
        if (counts[s] == 0)
            continue;
        std::lock_guard<std::mutex> guard(locks_[s]);
        result.merge(shards_[s].applyBatch(
            std::span<const KvOp>(grouped.data() + offsets[s], counts[s])));
    }
    return result;
}

KvBatchResult
ShardedKvStore::applyShardBatch(unsigned shard, std::span<const KvOp> ops)
{
    std::lock_guard<std::mutex> guard(locks_[shard]);
    return shards_[shard].applyBatch(ops);
}

uint64_t
ShardedKvStore::size() const
{
    uint64_t total = 0;
    for (size_t i = 0; i < shards_.size(); ++i) {
        std::lock_guard<std::mutex> guard(locks_[i]);
        total += shards_[i].size();
    }
    return total;
}

uint64_t
ShardedKvStore::checksum() const
{
    // Per-slot terms are order-independent, so the sharded checksum
    // equals a single-shard store's checksum over the same pairs.
    uint64_t sum = 0;
    for (size_t i = 0; i < shards_.size(); ++i) {
        std::lock_guard<std::mutex> guard(locks_[i]);
        sum += shards_[i].checksum();
    }
    return sum;
}

std::vector<uint64_t>
ShardedKvStore::shardSizes() const
{
    std::vector<uint64_t> sizes;
    sizes.reserve(shards_.size());
    for (size_t i = 0; i < shards_.size(); ++i) {
        std::lock_guard<std::mutex> guard(locks_[i]);
        sizes.push_back(shards_[i].size());
    }
    return sizes;
}

void
ShardedKvStore::forEach(
    const std::function<void(uint64_t, uint64_t)> &visit) const
{
    for (size_t i = 0; i < shards_.size(); ++i) {
        std::lock_guard<std::mutex> guard(locks_[i]);
        shards_[i].forEach(visit);
    }
}

void
ShardedKvStore::setFlitTracker(util::FlitTracker *flit)
{
    for (KvStore &shard : shards_)
        shard.setFlitTracker(flit);
}

} // namespace wsp::apps
