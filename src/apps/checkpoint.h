/**
 * @file
 * Periodic checkpointing to the storage back end.
 *
 * Paper section 3.2: WSP is combined with a block-based back end —
 * "applications can periodically checkpoint their state to a file" —
 * so NVRAM handles power failures instantly while severe failures
 * (dead server, corrupted state) fall back to checkpoint + log
 * recovery. CheckpointScheduler drives that tier for a KvStore on the
 * simulated event queue: full checkpoints every period, updates
 * shipped to the back-end log in small batches with a bounded
 * shipping lag (the tail that a destroyed server loses).
 */

#pragma once

#include <vector>

#include "apps/backend_store.h"
#include "sim/sim_object.h"

namespace wsp::apps {

/** Checkpoint/shipping cadence. */
struct CheckpointConfig
{
    Tick checkpointPeriod = fromSeconds(60.0);
    Tick shipInterval = fromMillis(100.0);
};

/** Event-driven checkpoint + log-shipping driver. */
class CheckpointScheduler : public SimObject
{
  public:
    CheckpointScheduler(EventQueue &queue, KvStore &store,
                        BackendStore &backend,
                        CheckpointConfig config = {});

    const CheckpointConfig &config() const { return config_; }

    /** Begin the periodic cycle (takes an immediate checkpoint). */
    void start();

    /** Stop scheduling further work (e.g. power failed). */
    void stop();

    /**
     * Record an application update; it reaches the back-end log at
     * the next shipping tick.
     */
    void noteUpdate(const BackendLogEntry &entry);

    /** Force the pending batch out now (synchronous ship). */
    void shipNow();

    /** Updates recorded but not yet shipped (lost if the server
     *  vanishes right now). */
    size_t unshippedUpdates() const { return pending_.size(); }

    uint64_t checkpointsTaken() const { return checkpointsTaken_; }
    uint64_t updatesShipped() const { return updatesShipped_; }

  private:
    void checkpointTick();
    void shipTick();

    KvStore &store_;
    BackendStore &backend_;
    CheckpointConfig config_;
    std::vector<BackendLogEntry> pending_;
    bool running_ = false;
    uint64_t checkpointsTaken_ = 0;
    uint64_t updatesShipped_ = 0;
};

} // namespace wsp::apps
