#include "apps/ldap_protocol.h"

#include <algorithm>
#include <cctype>

namespace wsp::apps {

namespace {

constexpr uint8_t kTagOctetString = 0x04;
constexpr uint8_t kTagInteger = 0x02;
constexpr uint8_t kTagEnum = 0x0a;
constexpr uint8_t kTagMessage = 0x30; // universal SEQUENCE
constexpr uint8_t kTagAttribute = 0x30;

} // namespace

LdapCode
toLdapCode(DirectoryResult result)
{
    switch (result) {
      case DirectoryResult::Success:
        return LdapCode::Success;
      case DirectoryResult::InvalidSyntax:
        return LdapCode::InvalidDnSyntax;
      case DirectoryResult::UndefinedAttributeType:
        return LdapCode::UndefinedAttributeType;
      case DirectoryResult::EntryAlreadyExists:
        return LdapCode::EntryAlreadyExists;
      case DirectoryResult::NoSuchObject:
        return LdapCode::NoSuchObject;
    }
    return LdapCode::ProtocolError;
}

// BerWriter -------------------------------------------------------------

size_t
BerWriter::beginSequence(uint8_t tag)
{
    bytes_.push_back(tag);
    // Reserve a 4-byte long-form length (0x83 + 3 bytes) to patch.
    const size_t index = bytes_.size();
    bytes_.push_back(0x83);
    bytes_.push_back(0);
    bytes_.push_back(0);
    bytes_.push_back(0);
    pending_.push_back(index);
    return index;
}

void
BerWriter::writeLengthAt(size_t pos, size_t length)
{
    bytes_[pos + 1] = static_cast<uint8_t>((length >> 16) & 0xff);
    bytes_[pos + 2] = static_cast<uint8_t>((length >> 8) & 0xff);
    bytes_[pos + 3] = static_cast<uint8_t>(length & 0xff);
}

void
BerWriter::endSequence(size_t index)
{
    pending_.pop_back();
    writeLengthAt(index, bytes_.size() - index - 4);
}

void
BerWriter::writeOctetString(std::string_view value)
{
    bytes_.push_back(kTagOctetString);
    bytes_.push_back(0x83);
    bytes_.push_back(static_cast<uint8_t>((value.size() >> 16) & 0xff));
    bytes_.push_back(static_cast<uint8_t>((value.size() >> 8) & 0xff));
    bytes_.push_back(static_cast<uint8_t>(value.size() & 0xff));
    bytes_.insert(bytes_.end(), value.begin(), value.end());
}

void
BerWriter::writeInteger(uint64_t value)
{
    uint8_t raw[8];
    int len = 0;
    do {
        raw[len++] = static_cast<uint8_t>(value & 0xff);
        value >>= 8;
    } while (value != 0);
    bytes_.push_back(kTagInteger);
    bytes_.push_back(static_cast<uint8_t>(len));
    for (int i = len - 1; i >= 0; --i)
        bytes_.push_back(raw[i]);
}

void
BerWriter::writeEnum(uint8_t value)
{
    bytes_.push_back(kTagEnum);
    bytes_.push_back(1);
    bytes_.push_back(value);
}

// BerReader -------------------------------------------------------------

uint8_t
BerReader::readTag()
{
    if (pos_ >= bytes_.size()) {
        failed_ = true;
        return 0;
    }
    return bytes_[pos_++];
}

size_t
BerReader::readLength()
{
    if (pos_ >= bytes_.size()) {
        failed_ = true;
        return 0;
    }
    const uint8_t first = bytes_[pos_++];
    if ((first & 0x80) == 0)
        return first;
    const int count = first & 0x7f;
    if (count > 4 || pos_ + static_cast<size_t>(count) > bytes_.size()) {
        failed_ = true;
        return 0;
    }
    size_t length = 0;
    for (int i = 0; i < count; ++i)
        length = (length << 8) | bytes_[pos_++];
    return length;
}

bool
BerReader::enterSequence(uint8_t tag, size_t *content_len)
{
    if (readTag() != tag) {
        failed_ = true;
        return false;
    }
    *content_len = readLength();
    if (failed_ || pos_ + *content_len > bytes_.size()) {
        failed_ = true;
        return false;
    }
    return true;
}

bool
BerReader::readOctetString(std::string *out)
{
    if (readTag() != kTagOctetString) {
        failed_ = true;
        return false;
    }
    const size_t length = readLength();
    if (failed_ || pos_ + length > bytes_.size()) {
        failed_ = true;
        return false;
    }
    out->assign(reinterpret_cast<const char *>(bytes_.data() + pos_),
                length);
    pos_ += length;
    return true;
}

bool
BerReader::readInteger(uint64_t *out)
{
    if (readTag() != kTagInteger) {
        failed_ = true;
        return false;
    }
    const size_t length = readLength();
    if (failed_ || length > 8 || pos_ + length > bytes_.size()) {
        failed_ = true;
        return false;
    }
    uint64_t value = 0;
    for (size_t i = 0; i < length; ++i)
        value = (value << 8) | bytes_[pos_++];
    *out = value;
    return true;
}

bool
BerReader::readEnum(uint8_t *out)
{
    if (readTag() != kTagEnum) {
        failed_ = true;
        return false;
    }
    const size_t length = readLength();
    if (failed_ || length != 1 || pos_ >= bytes_.size()) {
        failed_ = true;
        return false;
    }
    *out = bytes_[pos_++];
    return true;
}

// Messages ----------------------------------------------------------------

std::vector<uint8_t>
encodeAddRequest(const DirectoryEntry &entry, uint32_t message_id)
{
    BerWriter writer;
    const size_t message = writer.beginSequence(kTagMessage);
    writer.writeInteger(message_id);
    const size_t op = writer.beginSequence(
        static_cast<uint8_t>(LdapOp::AddRequest));
    writer.writeOctetString(entry.dn);
    for (const auto &[name, value] : entry.attributes) {
        const size_t attr = writer.beginSequence(kTagAttribute);
        writer.writeOctetString(name);
        writer.writeOctetString(value);
        writer.endSequence(attr);
    }
    writer.endSequence(op);
    writer.endSequence(message);
    return writer.bytes();
}

bool
decodeAddRequest(std::span<const uint8_t> bytes, uint32_t *message_id,
                 DirectoryEntry *entry)
{
    BerReader reader(bytes);
    size_t content = 0;
    if (!reader.enterSequence(kTagMessage, &content))
        return false;
    uint64_t id = 0;
    if (!reader.readInteger(&id))
        return false;
    *message_id = static_cast<uint32_t>(id);
    if (!reader.enterSequence(static_cast<uint8_t>(LdapOp::AddRequest),
                              &content)) {
        return false;
    }
    entry->attributes.clear();
    if (!reader.readOctetString(&entry->dn))
        return false;
    while (!reader.atEnd() && !reader.failed()) {
        size_t attr_len = 0;
        if (!reader.enterSequence(kTagAttribute, &attr_len))
            return false;
        std::string name;
        std::string value;
        if (!reader.readOctetString(&name) ||
            !reader.readOctetString(&value)) {
            return false;
        }
        entry->attributes.emplace_back(std::move(name), std::move(value));
    }
    return !reader.failed();
}

std::vector<uint8_t>
encodeDelRequest(std::string_view dn, uint32_t message_id)
{
    BerWriter writer;
    const size_t message = writer.beginSequence(kTagMessage);
    writer.writeInteger(message_id);
    const size_t op = writer.beginSequence(
        static_cast<uint8_t>(LdapOp::DelRequest));
    writer.writeOctetString(dn);
    writer.endSequence(op);
    writer.endSequence(message);
    return writer.bytes();
}

bool
decodeDelRequest(std::span<const uint8_t> bytes, uint32_t *message_id,
                 std::string *dn)
{
    BerReader reader(bytes);
    size_t content = 0;
    if (!reader.enterSequence(kTagMessage, &content))
        return false;
    uint64_t id = 0;
    if (!reader.readInteger(&id))
        return false;
    *message_id = static_cast<uint32_t>(id);
    if (!reader.enterSequence(static_cast<uint8_t>(LdapOp::DelRequest),
                              &content)) {
        return false;
    }
    return reader.readOctetString(dn);
}

std::vector<uint8_t>
encodeModifyRequest(const DirectoryEntry &entry, uint32_t message_id)
{
    BerWriter writer;
    const size_t message = writer.beginSequence(kTagMessage);
    writer.writeInteger(message_id);
    const size_t op = writer.beginSequence(
        static_cast<uint8_t>(LdapOp::ModifyRequest));
    writer.writeOctetString(entry.dn);
    for (const auto &[name, value] : entry.attributes) {
        const size_t attr = writer.beginSequence(kTagAttribute);
        writer.writeOctetString(name);
        writer.writeOctetString(value);
        writer.endSequence(attr);
    }
    writer.endSequence(op);
    writer.endSequence(message);
    return writer.bytes();
}

bool
decodeModifyRequest(std::span<const uint8_t> bytes, uint32_t *message_id,
                    DirectoryEntry *entry)
{
    BerReader reader(bytes);
    size_t content = 0;
    if (!reader.enterSequence(kTagMessage, &content))
        return false;
    uint64_t id = 0;
    if (!reader.readInteger(&id))
        return false;
    *message_id = static_cast<uint32_t>(id);
    if (!reader.enterSequence(
            static_cast<uint8_t>(LdapOp::ModifyRequest), &content)) {
        return false;
    }
    entry->attributes.clear();
    if (!reader.readOctetString(&entry->dn))
        return false;
    while (!reader.atEnd() && !reader.failed()) {
        size_t attr_len = 0;
        if (!reader.enterSequence(kTagAttribute, &attr_len))
            return false;
        std::string name;
        std::string value;
        if (!reader.readOctetString(&name) ||
            !reader.readOctetString(&value)) {
            return false;
        }
        entry->attributes.emplace_back(std::move(name), std::move(value));
    }
    return !reader.failed();
}

std::vector<uint8_t>
encodeSearchRequest(std::string_view dn, uint32_t message_id)
{
    BerWriter writer;
    const size_t message = writer.beginSequence(kTagMessage);
    writer.writeInteger(message_id);
    const size_t op = writer.beginSequence(
        static_cast<uint8_t>(LdapOp::SearchRequest));
    writer.writeOctetString(dn);
    writer.endSequence(op);
    writer.endSequence(message);
    return writer.bytes();
}

bool
decodeSearchRequest(std::span<const uint8_t> bytes, uint32_t *message_id,
                    std::string *dn)
{
    BerReader reader(bytes);
    size_t content = 0;
    if (!reader.enterSequence(kTagMessage, &content))
        return false;
    uint64_t id = 0;
    if (!reader.readInteger(&id))
        return false;
    *message_id = static_cast<uint32_t>(id);
    if (!reader.enterSequence(
            static_cast<uint8_t>(LdapOp::SearchRequest), &content)) {
        return false;
    }
    return reader.readOctetString(dn);
}

std::vector<uint8_t>
encodeSearchResponse(uint32_t message_id, LdapCode code,
                     const DirectoryEntry *entry)
{
    BerWriter writer;
    const size_t message = writer.beginSequence(kTagMessage);
    writer.writeInteger(message_id);
    const size_t body = writer.beginSequence(
        static_cast<uint8_t>(LdapOp::SearchResponse));
    writer.writeEnum(static_cast<uint8_t>(code));
    if (code == LdapCode::Success && entry != nullptr) {
        writer.writeOctetString(entry->dn);
        for (const auto &[name, value] : entry->attributes) {
            const size_t attr = writer.beginSequence(kTagAttribute);
            writer.writeOctetString(name);
            writer.writeOctetString(value);
            writer.endSequence(attr);
        }
    }
    writer.endSequence(body);
    writer.endSequence(message);
    return writer.bytes();
}

bool
decodeSearchResponse(std::span<const uint8_t> bytes, uint32_t *message_id,
                     LdapCode *code, DirectoryEntry *entry)
{
    BerReader reader(bytes);
    size_t content = 0;
    if (!reader.enterSequence(kTagMessage, &content))
        return false;
    uint64_t id = 0;
    if (!reader.readInteger(&id))
        return false;
    *message_id = static_cast<uint32_t>(id);
    if (!reader.enterSequence(
            static_cast<uint8_t>(LdapOp::SearchResponse), &content)) {
        return false;
    }
    uint8_t raw = 0;
    if (!reader.readEnum(&raw))
        return false;
    *code = static_cast<LdapCode>(raw);
    if (*code != LdapCode::Success || entry == nullptr)
        return true;
    entry->attributes.clear();
    if (!reader.readOctetString(&entry->dn))
        return false;
    while (!reader.atEnd() && !reader.failed()) {
        size_t attr_len = 0;
        if (!reader.enterSequence(kTagAttribute, &attr_len))
            return false;
        std::string name;
        std::string value;
        if (!reader.readOctetString(&name) ||
            !reader.readOctetString(&value)) {
            return false;
        }
        entry->attributes.emplace_back(std::move(name), std::move(value));
    }
    return !reader.failed();
}

std::vector<uint8_t>
encodeResponse(LdapOp op, uint32_t message_id, LdapCode code)
{
    BerWriter writer;
    const size_t message = writer.beginSequence(kTagMessage);
    writer.writeInteger(message_id);
    const size_t body = writer.beginSequence(static_cast<uint8_t>(op));
    writer.writeEnum(static_cast<uint8_t>(code));
    writer.endSequence(body);
    writer.endSequence(message);
    return writer.bytes();
}

bool
decodeResponse(std::span<const uint8_t> bytes, uint32_t *message_id,
               LdapCode *code)
{
    BerReader reader(bytes);
    size_t content = 0;
    if (!reader.enterSequence(kTagMessage, &content))
        return false;
    uint64_t id = 0;
    if (!reader.readInteger(&id))
        return false;
    *message_id = static_cast<uint32_t>(id);
    uint8_t tag_content = reader.readTag();
    (void)tag_content;
    reader.readLength();
    uint8_t raw = 0;
    if (!reader.readEnum(&raw))
        return false;
    *code = static_cast<LdapCode>(raw);
    return true;
}

// DN normalization ---------------------------------------------------------

bool
normalizeDn(std::string_view dn, std::string *out)
{
    out->clear();
    out->reserve(dn.size());
    if (dn.empty())
        return false;

    size_t pos = 0;
    bool first_component = true;
    while (pos < dn.size()) {
        size_t end = dn.find(',', pos);
        if (end == std::string_view::npos)
            end = dn.size();
        std::string_view component = dn.substr(pos, end - pos);
        pos = end + 1;

        // Trim surrounding spaces.
        while (!component.empty() && component.front() == ' ')
            component.remove_prefix(1);
        while (!component.empty() && component.back() == ' ')
            component.remove_suffix(1);
        const size_t eq = component.find('=');
        if (eq == std::string_view::npos || eq == 0 ||
            eq == component.size() - 1) {
            return false;
        }
        std::string_view type = component.substr(0, eq);
        std::string_view value = component.substr(eq + 1);
        while (!type.empty() && type.back() == ' ')
            type.remove_suffix(1);
        while (!value.empty() && value.front() == ' ')
            value.remove_prefix(1);
        if (type.empty() || value.empty())
            return false;

        if (!first_component)
            out->push_back(',');
        first_component = false;
        for (char c : type)
            out->push_back(static_cast<char>(
                std::tolower(static_cast<unsigned char>(c))));
        out->push_back('=');
        for (char c : value)
            out->push_back(static_cast<char>(
                std::tolower(static_cast<unsigned char>(c))));
    }
    return true;
}

// AccessControl -------------------------------------------------------------

void
AccessControl::setDefault(bool allow_add, bool allow_search)
{
    defaultRule_.allowAdd = allow_add;
    defaultRule_.allowSearch = allow_search;
}

const AclRule *
AccessControl::match(std::string_view normalized_dn) const
{
    for (const AclRule &rule : rules_) {
        if (rule.subtreeSuffix.empty() ||
            (normalized_dn.size() >= rule.subtreeSuffix.size() &&
             normalized_dn.substr(normalized_dn.size() -
                                  rule.subtreeSuffix.size()) ==
                 rule.subtreeSuffix)) {
            return &rule;
        }
    }
    return &defaultRule_;
}

bool
AccessControl::mayAdd(std::string_view normalized_dn) const
{
    return match(normalized_dn)->allowAdd;
}

bool
AccessControl::maySearch(std::string_view normalized_dn) const
{
    return match(normalized_dn)->allowSearch;
}

} // namespace wsp::apps
