#include "apps/backend_store.h"

#include <algorithm>

#include "util/logging.h"

namespace wsp::apps {

void
BackendStore::checkpoint(const KvStore &store)
{
    snapshot_.clear();
    store.forEach([this](uint64_t key, uint64_t value) {
        snapshot_.emplace_back(key, value);
    });
    // The checkpoint on the back end stores the full region image the
    // server would write out (slots, not just live pairs).
    checkpointBytes_ = KvStore::regionBytes(store.capacity());
    checkpointCapacity_ = store.capacity();
    log_.clear();
}

void
BackendStore::logUpdate(const BackendLogEntry &entry)
{
    log_.push_back(entry);
}

size_t
BackendStore::recoverInto(KvStore *store) const
{
    WSP_CHECK(store != nullptr);
    size_t applied = 0;
    for (const auto &[key, value] : snapshot_) {
        store->put(key, value);
        ++applied;
    }
    for (const BackendLogEntry &entry : log_) {
        if (entry.isErase)
            store->erase(entry.key);
        else
            store->put(entry.key, entry.value);
        ++applied;
    }
    return applied;
}

Tick
BackendStore::recoveryTime(uint64_t state_bytes,
                           unsigned concurrent_recoveries) const
{
    WSP_CHECK(concurrent_recoveries >= 1);
    // A storm divides the aggregate bandwidth; a single recovery is
    // limited by its own stream.
    const double share =
        config_.aggregateBandwidth /
        static_cast<double>(concurrent_recoveries);
    const double bandwidth =
        std::min(config_.perStreamBandwidth, share);
    return fromSeconds(static_cast<double>(state_bytes) / bandwidth);
}

} // namespace wsp::apps
