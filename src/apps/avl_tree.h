/**
 * @file
 * Persistent AVL tree.
 *
 * The paper's Table 1 workload replaces OpenLDAP's Berkeley DB back
 * end with "an AVL tree stored in the Mnemosyne NV-heap". This is
 * that tree: keys are 64-bit, each node carries a payload offset (the
 * directory entry), and all structural updates — including rebalance
 * rotations — go through the transaction policy, so the Mnemosyne
 * configuration pays logging/flushing for every pointer it touches.
 */

#pragma once

#include <cstdint>

#include "pheap/policies.h"

namespace wsp::apps {

using pmem::kNullOffset;
using pmem::Offset;
using pmem::PHeap;

/** A persistent AVL tree specialized for a transaction policy. */
template <typename Policy>
class AvlTree
{
  public:
    struct Node
    {
        uint64_t key;
        Offset payload;
        Offset left;
        Offset right;
        uint64_t height;
    };

    /** Persistent header cell (the handle to attach to after boot). */
    struct Header
    {
        Offset root;
        uint64_t size;
    };

    /** Create a fresh tree inside @p heap. */
    explicit AvlTree(PHeap &heap) : heap_(heap)
    {
        Policy::run(heap_, [&](typename Policy::Tx &tx) {
            header_ = tx.alloc(sizeof(Header));
            Header *h = hdr();
            tx.write(&h->root, kNullOffset);
            tx.write(&h->size, uint64_t{0});
        });
    }

    /** Attach to an existing tree (recovery path). */
    AvlTree(PHeap &heap, Offset header_offset, std::nullptr_t)
        : heap_(heap), header_(header_offset)
    {
    }

    /** Persistent handle for PHeap::setRootObject. */
    Offset headerOffset() const { return header_; }

    uint64_t size() const { return hdr()->size; }

    /**
     * Insert or replace; one transaction. Returns true on insert,
     * false when an existing key's payload was replaced.
     */
    bool
    insert(uint64_t key, Offset payload)
    {
        bool inserted = false;
        Policy::run(heap_, [&](typename Policy::Tx &tx) {
            inserted = false;
            Header *h = hdr();
            const Offset root =
                insertRec(tx, tx.read(&h->root), key, payload, &inserted);
            tx.write(&h->root, root);
            if (inserted)
                tx.write(&h->size, tx.read(&h->size) + 1);
        });
        return inserted;
    }

    /**
     * Remove a key; one transaction. Returns true when found. The
     * node's block is returned to the heap; the payload block (if
     * any) is the caller's to free.
     */
    bool
    erase(uint64_t key)
    {
        bool erased = false;
        Policy::run(heap_, [&](typename Policy::Tx &tx) {
            erased = false;
            Header *h = hdr();
            const Offset root =
                eraseRec(tx, tx.read(&h->root), key, &erased);
            tx.write(&h->root, root);
            if (erased)
                tx.write(&h->size, tx.read(&h->size) - 1);
        });
        return erased;
    }

    /** Find a key; one transaction. */
    bool
    find(uint64_t key, Offset *payload_out = nullptr)
    {
        bool found = false;
        Policy::run(heap_, [&](typename Policy::Tx &tx) {
            found = false;
            Offset cur = tx.read(&hdr()->root);
            while (cur != kNullOffset) {
                Node *node = at(cur);
                const uint64_t k = tx.read(&node->key);
                if (k == key) {
                    if (payload_out != nullptr)
                        *payload_out = tx.read(&node->payload);
                    found = true;
                    return;
                }
                cur = key < k ? tx.read(&node->left)
                              : tx.read(&node->right);
            }
        });
        return found;
    }

    /** In-order minimum key (0 when empty); for verification. */
    uint64_t
    minKey()
    {
        uint64_t result = 0;
        Policy::run(heap_, [&](typename Policy::Tx &tx) {
            Offset cur = tx.read(&hdr()->root);
            result = 0;
            while (cur != kNullOffset) {
                Node *node = at(cur);
                result = tx.read(&node->key);
                cur = tx.read(&node->left);
            }
        });
        return result;
    }

    /** Height of the root (0 when empty). */
    uint64_t
    height()
    {
        uint64_t h = 0;
        Policy::run(heap_, [&](typename Policy::Tx &tx) {
            const Offset root = tx.read(&hdr()->root);
            h = root == kNullOffset ? 0 : tx.read(&at(root)->height);
        });
        return h;
    }

    /**
     * Verify AVL invariants (balance and ordering) over the whole
     * tree; returns false on any violation. Test helper.
     */
    bool
    checkInvariants()
    {
        bool ok = true;
        Policy::run(heap_, [&](typename Policy::Tx &tx) {
            uint64_t count = 0;
            Header *h = hdr();
            ok = checkRec(tx, tx.read(&h->root), nullptr, nullptr,
                          &count) >= 0 &&
                 count == tx.read(&h->size);
        });
        return ok;
    }

  private:
    Header *hdr() const { return heap_.region().template at<Header>(header_); }
    Node *at(Offset offset) { return heap_.region().template at<Node>(offset); }

    template <typename Tx>
    uint64_t
    heightOf(Tx &tx, Offset node)
    {
        return node == kNullOffset ? 0 : tx.read(&at(node)->height);
    }

    template <typename Tx>
    void
    updateHeight(Tx &tx, Offset node)
    {
        const uint64_t l = heightOf(tx, tx.read(&at(node)->left));
        const uint64_t r = heightOf(tx, tx.read(&at(node)->right));
        tx.write(&at(node)->height, 1 + (l > r ? l : r));
    }

    template <typename Tx>
    int64_t
    balanceOf(Tx &tx, Offset node)
    {
        const auto l = static_cast<int64_t>(
            heightOf(tx, tx.read(&at(node)->left)));
        const auto r = static_cast<int64_t>(
            heightOf(tx, tx.read(&at(node)->right)));
        return l - r;
    }

    template <typename Tx>
    Offset
    rotateRight(Tx &tx, Offset y)
    {
        const Offset x = tx.read(&at(y)->left);
        const Offset t2 = tx.read(&at(x)->right);
        tx.write(&at(x)->right, y);
        tx.write(&at(y)->left, t2);
        updateHeight(tx, y);
        updateHeight(tx, x);
        return x;
    }

    template <typename Tx>
    Offset
    rotateLeft(Tx &tx, Offset x)
    {
        const Offset y = tx.read(&at(x)->right);
        const Offset t2 = tx.read(&at(y)->left);
        tx.write(&at(y)->left, x);
        tx.write(&at(x)->right, t2);
        updateHeight(tx, x);
        updateHeight(tx, y);
        return y;
    }

    template <typename Tx>
    Offset
    insertRec(Tx &tx, Offset node, uint64_t key, Offset payload,
              bool *inserted)
    {
        if (node == kNullOffset) {
            const Offset fresh = tx.alloc(sizeof(Node));
            Node *n = at(fresh);
            tx.write(&n->key, key);
            tx.write(&n->payload, payload);
            tx.write(&n->left, kNullOffset);
            tx.write(&n->right, kNullOffset);
            tx.write(&n->height, uint64_t{1});
            *inserted = true;
            return fresh;
        }

        const uint64_t k = tx.read(&at(node)->key);
        if (key == k) {
            tx.write(&at(node)->payload, payload);
            return node;
        }
        if (key < k) {
            tx.write(&at(node)->left,
                     insertRec(tx, tx.read(&at(node)->left), key, payload,
                               inserted));
        } else {
            tx.write(&at(node)->right,
                     insertRec(tx, tx.read(&at(node)->right), key,
                               payload, inserted));
        }
        updateHeight(tx, node);

        const int64_t balance = balanceOf(tx, node);
        if (balance > 1) {
            const Offset left = tx.read(&at(node)->left);
            if (key > tx.read(&at(left)->key))
                tx.write(&at(node)->left, rotateLeft(tx, left));
            return rotateRight(tx, node);
        }
        if (balance < -1) {
            const Offset right = tx.read(&at(node)->right);
            if (key < tx.read(&at(right)->key))
                tx.write(&at(node)->right, rotateRight(tx, right));
            return rotateLeft(tx, node);
        }
        return node;
    }

    /** Rebalance @p node after a child subtree changed height. */
    template <typename Tx>
    Offset
    rebalance(Tx &tx, Offset node)
    {
        updateHeight(tx, node);
        const int64_t balance = balanceOf(tx, node);
        if (balance > 1) {
            const Offset left = tx.read(&at(node)->left);
            if (balanceOf(tx, left) < 0)
                tx.write(&at(node)->left, rotateLeft(tx, left));
            return rotateRight(tx, node);
        }
        if (balance < -1) {
            const Offset right = tx.read(&at(node)->right);
            if (balanceOf(tx, right) > 0)
                tx.write(&at(node)->right, rotateRight(tx, right));
            return rotateLeft(tx, node);
        }
        return node;
    }

    /** Detach the minimum node of @p node's subtree; returns the new
     *  subtree root and the detached node through @p min_out. */
    template <typename Tx>
    Offset
    detachMin(Tx &tx, Offset node, Offset *min_out)
    {
        const Offset left = tx.read(&at(node)->left);
        if (left == kNullOffset) {
            *min_out = node;
            return tx.read(&at(node)->right);
        }
        tx.write(&at(node)->left, detachMin(tx, left, min_out));
        return rebalance(tx, node);
    }

    template <typename Tx>
    Offset
    eraseRec(Tx &tx, Offset node, uint64_t key, bool *erased)
    {
        if (node == kNullOffset)
            return kNullOffset;

        const uint64_t k = tx.read(&at(node)->key);
        if (key < k) {
            tx.write(&at(node)->left,
                     eraseRec(tx, tx.read(&at(node)->left), key, erased));
        } else if (key > k) {
            tx.write(&at(node)->right,
                     eraseRec(tx, tx.read(&at(node)->right), key,
                              erased));
        } else {
            *erased = true;
            const Offset left = tx.read(&at(node)->left);
            const Offset right = tx.read(&at(node)->right);
            if (left == kNullOffset || right == kNullOffset) {
                const Offset child =
                    left != kNullOffset ? left : right;
                tx.free(node, sizeof(Node));
                return child;
            }
            // Two children: splice in the in-order successor.
            Offset successor = kNullOffset;
            const Offset new_right = detachMin(tx, right, &successor);
            tx.write(&at(successor)->left, left);
            tx.write(&at(successor)->right, new_right);
            tx.free(node, sizeof(Node));
            return rebalance(tx, successor);
        }
        return rebalance(tx, node);
    }

    /** Returns subtree height, or -1 on violation. */
    template <typename Tx>
    int64_t
    checkRec(Tx &tx, Offset node, const uint64_t *lo, const uint64_t *hi,
             uint64_t *count)
    {
        if (node == kNullOffset)
            return 0;
        Node *n = at(node);
        const uint64_t key = tx.read(&n->key);
        if ((lo != nullptr && key <= *lo) || (hi != nullptr && key >= *hi))
            return -1;
        ++*count;
        const int64_t l = checkRec(tx, tx.read(&n->left), lo, &key, count);
        const int64_t r = checkRec(tx, tx.read(&n->right), &key, hi, count);
        if (l < 0 || r < 0)
            return -1;
        if (l - r > 1 || r - l > 1)
            return -1;
        const int64_t h = 1 + (l > r ? l : r);
        if (static_cast<uint64_t>(h) != tx.read(&n->height))
            return -1;
        return h;
    }

    PHeap &heap_;
    Offset header_ = kNullOffset;
};

} // namespace wsp::apps
