/**
 * @file
 * Back-end storage layer: checkpoint + update log.
 *
 * NVRAM is the *first* resort after a crash, not the last (paper
 * section 3.1): every server still checkpoints to a storage back end
 * and replays a log of recent updates when local recovery is
 * impossible. BackendStore is that layer for the simulated KvStore —
 * functionally (it really rebuilds the state) and with the paper's
 * timing model: recovery is bound by read bandwidth (section 2:
 * "reading 256 GB at 0.5 GB/s ... will take more than 8 min"), and a
 * shared back end divides its aggregate bandwidth across concurrently
 * recovering servers.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "apps/kv_store.h"
#include "util/units.h"

namespace wsp::apps {

/** Back-end bandwidth and cost parameters. */
struct BackendConfig
{
    /** Per-stream read bandwidth a single recovering server gets. */
    double perStreamBandwidth = 0.5e9;

    /** Total bandwidth the back end can serve across all streams. */
    double aggregateBandwidth = 2.0e9;

    /** CPU+network cost of replaying one logged update. */
    Tick perLogEntryReplay = fromMicros(5.0);
};

/** One logged update. */
struct BackendLogEntry
{
    uint64_t key = 0;
    uint64_t value = 0;
    bool isErase = false;
};

/** Checkpoint + log back end for a KvStore. */
class BackendStore
{
  public:
    explicit BackendStore(BackendConfig config = {}) : config_(config) {}

    const BackendConfig &config() const { return config_; }

    /** Capture a full checkpoint of @p store; truncates the log. */
    void checkpoint(const KvStore &store);

    /** Append an update to the log (called on the write path). */
    void logUpdate(const BackendLogEntry &entry);

    uint64_t checkpointBytes() const { return checkpointBytes_; }
    size_t logEntries() const { return log_.size(); }

    /**
     * Functionally rebuild @p store from the checkpoint plus the
     * log. Returns the number of operations applied.
     */
    size_t recoverInto(KvStore *store) const;

    /**
     * Modelled recovery time for a state of @p state_bytes when
     * @p concurrent_recoveries servers hit the back end at once
     * (the "recovery storm" regime).
     */
    Tick recoveryTime(uint64_t state_bytes,
                      unsigned concurrent_recoveries = 1) const;

    /** Modelled recovery time for this store's own checkpoint+log. */
    Tick
    ownRecoveryTime(unsigned concurrent_recoveries = 1) const
    {
        return recoveryTime(checkpointBytes_, concurrent_recoveries) +
               config_.perLogEntryReplay * log_.size();
    }

  private:
    BackendConfig config_;
    std::vector<std::pair<uint64_t, uint64_t>> snapshot_;
    std::vector<BackendLogEntry> log_;
    uint64_t checkpointBytes_ = 0;
    uint64_t checkpointCapacity_ = 0;
};

} // namespace wsp::apps
