/**
 * @file
 * Concurrent KV serving layer over the sharded store.
 *
 * The paper's motivating deployments are main-memory stores serving
 * heavy concurrent traffic (sections 1-2). KvService is that serving
 * tier for the simulator: N lock-striped shards, each running over a
 * *private* simulated environment (event queue, NVDIMM, NVRAM space,
 * write-back cache), driven by a pool of real worker threads.
 *
 * Shard privacy is the concurrency-soundness argument: the cache and
 * sparse-memory models are deliberately simple and not thread-safe,
 * so the service gives every shard its own copies and serializes
 * access per shard with the stripe lock. Two threads on different
 * shards share no simulator state at all; two threads on the same
 * shard queue on its mutex, exactly like a striped production store.
 *
 * Determinism: worker w draws its operations from Rng::stream(w) —
 * order-independent of scheduling — and workers operate on disjoint
 * key ranges, so the final store state and the merged per-worker
 * counters depend only on the seed, never on thread interleaving.
 * The same property makes the N-shard run observationally equal to a
 * sequential single-shard reference, which the concurrency battery
 * checks.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "apps/kv_store.h"
#include "machine/cache.h"
#include "nvram/nvdimm.h"
#include "nvram/nvram_space.h"
#include "sim/event_queue.h"
#include "util/rng.h"

namespace wsp::apps {

/** Parameters of one service run. */
struct KvServiceConfig
{
    unsigned shards = 4;  ///< power of two
    unsigned threads = 4; ///< worker threads driving clients
    uint64_t perShardCapacity = 4096;
    uint64_t opsPerThread = 20000;

    /** Keys per worker; worker w owns [1 + w*keysPerWorker,
     *  (w+1)*keysPerWorker], so interleaving cannot change the final
     *  state. */
    uint64_t keysPerWorker = 512;

    double putProbability = 0.5;
    double eraseProbability = 0.1; ///< remainder are gets

    uint64_t seed = 42;

    /** Line-store implementation for every shard cache. Flat is the
     *  serving default; Reference re-creates the pre-optimization
     *  cache exactly, which is what lets bench/kv_throughput measure
     *  the old dispatch as a baseline arm inside one binary. */
    CacheModel::LineStore lineStore = CacheModel::LineStore::Flat;
};

/** Deterministic outcome of a run (plus wall-clock, which is not). */
struct KvServiceSummary
{
    uint64_t opsApplied = 0;
    uint64_t puts = 0;
    uint64_t gets = 0;
    uint64_t getHits = 0;
    uint64_t erases = 0;
    uint64_t finalSize = 0;
    uint64_t finalChecksum = 0;
    std::vector<uint64_t> shardSizes;

    /** Wall-clock seconds of the op phase; excluded from the
     *  fingerprint because it varies run to run. */
    double wallSeconds = 0.0;

    /** Order-sensitive mix of every deterministic field. */
    uint64_t fingerprint() const;
};

/**
 * One shard's private simulated machine slice. Members are declared
 * in dependency order: the queue feeds the NVDIMM, the space routes
 * to it, the cache writes through to the space.
 */
struct ShardEnvironment
{
    ShardEnvironment(const std::string &name, uint64_t nvdimm_bytes,
                     CacheModel::LineStore line_store =
                         CacheModel::LineStore::Flat);

    EventQueue queue;
    NvdimmModule dimm;
    NvramSpace space;
    CacheModel cache;
};

/** The serving tier: shard environments + striped store + pool. */
class KvService
{
  public:
    explicit KvService(KvServiceConfig config);

    const KvServiceConfig &config() const { return config_; }
    ShardedKvStore &store() { return *store_; }

    /**
     * Drive config.threads workers for config.opsPerThread ops each
     * through the sharded store and return the merged summary.
     * Repeated calls continue mutating the same store.
     */
    KvServiceSummary run();

    /**
     * Sequential single-shard reference: the same per-worker op
     * streams applied worker-by-worker to a 1-shard store of equal
     * total capacity. The concurrency battery checks run() against
     * this for observational equality.
     */
    static KvServiceSummary runReference(const KvServiceConfig &config);

  private:
    KvServiceConfig config_;
    std::vector<std::unique_ptr<ShardEnvironment>> environments_;
    std::vector<CacheModel *> caches_;
    std::unique_ptr<ShardedKvStore> store_;
};

/**
 * Sharded directory serving (the Table 1 workload, striped): worker
 * threads add and search LDIF entries against per-shard
 * DirectoryServer instances, each in its own persistent heap behind
 * its own stripe lock. Returns the summed entry count (deterministic
 * for the same seed and shape, by the same disjoint-range argument).
 */
uint64_t runShardedDirectoryWorkload(unsigned shards, unsigned threads,
                                     uint64_t entries_per_thread,
                                     uint64_t seed);

} // namespace wsp::apps
