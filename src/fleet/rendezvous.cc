#include "fleet/rendezvous.h"

#include <algorithm>

#include "util/logging.h"

namespace wsp::fleet {

void
RendezvousHash::addNode(uint32_t node)
{
    const auto it = std::lower_bound(nodes_.begin(), nodes_.end(), node);
    if (it != nodes_.end() && *it == node)
        return;
    nodes_.insert(it, node);
}

void
RendezvousHash::removeNode(uint32_t node)
{
    const auto it = std::lower_bound(nodes_.begin(), nodes_.end(), node);
    if (it != nodes_.end() && *it == node)
        nodes_.erase(it);
}

bool
RendezvousHash::contains(uint32_t node) const
{
    return std::binary_search(nodes_.begin(), nodes_.end(), node);
}

uint64_t
RendezvousHash::score(uint32_t node, uint64_t key)
{
    // Mix the pair through the murmur3 finalizer. The node id is
    // pre-spread by the golden-ratio constant so ids 0, 1, 2, ...
    // land far apart before they meet the key bits.
    uint64_t h = key ^ ((static_cast<uint64_t>(node) + 1) *
                        0x9e3779b97f4a7c15ull);
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdull;
    h ^= h >> 33;
    h *= 0xc4ceb9fe1a85ec53ull;
    h ^= h >> 33;
    return h;
}

std::vector<uint32_t>
RendezvousHash::replicaSet(uint64_t key, unsigned r) const
{
    struct Scored
    {
        uint64_t score;
        uint32_t node;
    };
    std::vector<Scored> scored;
    scored.reserve(nodes_.size());
    for (uint32_t node : nodes_)
        scored.push_back({score(node, key), node});

    const size_t take = std::min<size_t>(r, scored.size());
    std::partial_sort(scored.begin(), scored.begin() + take, scored.end(),
                      [](const Scored &a, const Scored &b) {
                          if (a.score != b.score)
                              return a.score > b.score;
                          return a.node < b.node;
                      });
    std::vector<uint32_t> replicas;
    replicas.reserve(take);
    for (size_t i = 0; i < take; ++i)
        replicas.push_back(scored[i].node);
    return replicas;
}

uint32_t
RendezvousHash::primary(uint64_t key) const
{
    WSP_CHECK(!nodes_.empty());
    uint32_t best = nodes_.front();
    uint64_t best_score = score(best, key);
    for (uint32_t node : nodes_) {
        const uint64_t s = score(node, key);
        if (s > best_score || (s == best_score && node < best)) {
            best = node;
            best_score = s;
        }
    }
    return best;
}

} // namespace wsp::fleet
