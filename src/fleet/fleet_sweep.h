/**
 * @file
 * Fleet-level crash-point exploration.
 *
 * The single-machine CrashExplorer proves one chassis survives a
 * power loss at any instant of its save pipeline; this layer proves a
 * *replicated service* does. A fleet schedule reuses CrashSchedule —
 * the fleet-shaped fields (fleetNodes, fleetReplication,
 * fleetKillMask, fleetPolicy) ride alongside the classic window /
 * outage / train knobs — and every run is an outage-train storm:
 * correlated kills of an arbitrary node subset at an exact instant of
 * their save windows, client traffic hammering the survivors, the
 * configured recovery policy bringing victims back, and anti-entropy
 * certifying them.
 *
 * The verdict is the NoReplicaDivergence checker: after the fleet
 * settles, every acknowledged write must be present with its acked
 * value on every Up replica of its key (and acked erases absent) —
 * replicas agree with the acked history and therefore with each
 * other, and no client-visible acknowledged write was lost.
 */

#pragma once

#include <string>
#include <vector>

#include "crashsim/crash_schedule.h"
#include "fleet/fleet.h"

namespace wsp::fleet {

/**
 * The NoReplicaDivergence checker: convergence of Up replica sets
 * with the acked-write history, plus whole-fleet health (every
 * commissioned node certified Up, no recovery left pending).
 * Empty result = held.
 */
std::vector<std::string> noReplicaDivergence(const Fleet &fleet);

/** Outcome of one fleet crash/recovery run. */
struct FleetCrashResult
{
    crashsim::CrashSchedule schedule;
    StormOutcome storm; ///< accumulated over the outage train
    RequestStats stats;
    std::vector<std::string> violations;

    bool held() const { return violations.empty(); }
};

/** Aggregate of a fleet sweep or fuzz campaign. */
struct FleetSweepReport
{
    size_t points = 0;
    size_t wspRecoveries = 0;
    size_t salvageBoots = 0;
    size_t backendRefills = 0;
    std::vector<FleetCrashResult> failures;

    bool allHeld() const { return failures.empty(); }
};

/** Enumerates, sweeps, fuzzes and minimizes fleet crash schedules. */
class FleetSweep
{
  public:
    explicit FleetSweep(crashsim::CrashSchedule base = defaultSchedule())
        : base_(base)
    {
    }

    const crashsim::CrashSchedule &base() const { return base_; }

    /** A small fleet schedule with the fleet fields switched on. */
    static crashsim::CrashSchedule defaultSchedule();

    /** The FleetConfig a schedule's runs use. */
    static FleetConfig configFor(const crashsim::CrashSchedule &schedule);

    /**
     * Execute one fleet schedule end to end: pre-storm traffic, then
     * trainCycles correlated-kill storms (mask = fleetKillMask, 0 =
     * every node) with interleaved client traffic and recovery, then
     * settle and run NoReplicaDivergence.
     */
    static FleetCrashResult
    runSchedule(const crashsim::CrashSchedule &schedule);

    /**
     * Every distinguishable kill instant of one fleet node's save
     * pipeline, via the single-machine explorer on an equivalent
     * chassis (fleet nodes are crashsim-sized, so the windows line
     * up), thinned to @p max_points.
     */
    std::vector<Tick> enumerateCrashPoints(size_t max_points = 24);

    /** Run the base schedule once per enumerated kill window. */
    FleetSweepReport
    sweepEnumerated(bool stop_on_first_violation = false,
                    size_t max_points = 24);

    /** Seed-driven random fleet schedules (masks, policies, sizes). */
    FleetSweepReport fuzz(unsigned runs, uint64_t seed);

    /**
     * Greedily shrink @p failing toward the simplest fleet schedule
     * that still violates NoReplicaDivergence, spending at most
     * @p budget runs. Returns the input unchanged if it holds.
     */
    static crashsim::CrashSchedule
    minimize(crashsim::CrashSchedule failing, unsigned budget = 32);

  private:
    crashsim::CrashSchedule base_;
};

} // namespace wsp::fleet
