#include "fleet/node.h"

#include <cstdio>

#include "core/failure_injector.h"
#include "core/salvage_directory.h"
#include "trace/stat_registry.h"
#include "util/logging.h"

namespace wsp::fleet {

namespace {

/** NVRAM base of the node's store (below everything reserved). */
constexpr uint64_t kStoreBase = 0;

/** KvStore header bytes ahead of a shard's slot array. */
constexpr uint64_t kKvHeaderBytes = 64;

} // namespace

const char *
nodeStateName(NodeState state)
{
    switch (state) {
      case NodeState::Up:
        return "up";
      case NodeState::Saving:
        return "saving";
      case NodeState::Dark:
        return "dark";
      case NodeState::Restoring:
        return "restoring";
      case NodeState::CatchingUp:
        return "catching-up";
      case NodeState::DegradedReadOnly:
        return "degraded-read-only";
      case NodeState::Decommissioned:
        return "decommissioned";
    }
    return "?";
}

const char *
recoveryPolicyName(RecoveryPolicy policy)
{
    switch (policy) {
      case RecoveryPolicy::WspLocal:
        return "wsp-local";
      case RecoveryPolicy::BackendRefill:
        return "backend-refill";
      case RecoveryPolicy::DegradedTier:
        return "degraded-tier";
    }
    return "?";
}

FleetNode::FleetNode(FleetNodeConfig config) : config_(config)
{
    WSP_CHECKF(config_.shards >= 1 &&
                   (config_.shards & (config_.shards - 1)) == 0,
               "fleet node shard count must be a power of two");
}

FleetNode::~FleetNode() = default;

unsigned
FleetNode::shardOf(uint64_t key) const
{
    // Mirrors ShardedKvStore::shardOf so shard indices align across
    // nodes (and with the salvage region names).
    uint64_t h = key;
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdull;
    h ^= h >> 29;
    return static_cast<unsigned>(h & (config_.shards - 1));
}

SystemConfig
FleetNode::systemConfig() const
{
    // Crashsim-sized chassis: small modules so kill/capture/boot
    // cycles stay fast, exact jitter-free residual windows so a storm
    // lands every victim at a chosen instant of its save pipeline.
    SystemConfig config;
    config.seed = config_.seed;
    config.nvdimmCount = 2;
    config.nvdimm.capacityBytes = 4 * kMiB;
    config.nvdimm.flashChannels = 1;
    config.nvdimm.verifySaves = true;
    config.devices.clear();
    config.wsp.firmwareBootLatency = fromMillis(50.0);
    config.wsp.osResumeLatency = fromMillis(1.0);
    config.wsp.hostStackBootLatency = fromMillis(50.0);
    // Fleet runs construct many systems; keep the black box volatile
    // so every node does not pay an NVRAM ring.
    config.wsp.flightRecorder = trace::FrMode::Volatile;
    return FailureInjector::withExactWindow(std::move(config),
                                            config_.killWindow);
}

void
FleetNode::registerRegions()
{
    if (!config_.salvage)
        return;
    const uint64_t stride =
        apps::ShardedKvStore::shardStride(config_.perShardCapacity);
    for (unsigned i = 0; i < config_.shards; ++i) {
        const uint64_t shard_base = kStoreBase + i * stride;
        char name[SalvageDirectory::kMaxNameBytes + 1];
        std::snprintf(name, sizeof(name), "kv%u.meta", i);
        system_->registerSalvageRegion(SalvageRegionSpec{
            name, shard_base, kKvHeaderBytes, SaveTier::Metadata});
        std::snprintf(name, sizeof(name), "kv%u.data", i);
        system_->registerSalvageRegion(SalvageRegionSpec{
            name, shard_base + kKvHeaderBytes,
            config_.perShardCapacity * 16, SaveTier::Bulk});
    }
}

void
FleetNode::createStore()
{
    std::vector<CacheModel *> caches(config_.shards, &system_->cache());
    store_.emplace(std::span<CacheModel *const>(caches), kStoreBase,
                   config_.perShardCapacity);
}

void
FleetNode::bootFresh()
{
    system_ = std::make_unique<WspSystem>(systemConfig());
    system_->start();
    createStore();
    registerRegions();
    state_ = NodeState::Up;
}

void
FleetNode::crash(Tick window)
{
    WSP_CHECKF(serving(), "node %u crashed while not serving",
               config_.id);
    state_ = NodeState::Saving;
    // Land the hard loss exactly `window` after the (zero-delay)
    // PWR_OK drop of *this* kill, whatever the construction-time
    // window was.
    system_->psu().setResidualWindows(std::max<Tick>(window, 1),
                                      std::max<Tick>(window, 1), 0);
    system_->psu().failInputNow();
    system_->runFor(window + fromMillis(10.0));
    // A module still mid-save runs on its own ultracapacitor; let it
    // conclude (finish or exhaust) before pulling the DIMMs.
    unsigned guard = 0;
    while (!system_->nvdimms().allIdle() && guard++ < 1000)
        system_->runFor(fromMillis(10.0));
    WSP_CHECKF(system_->nvdimms().allIdle(),
               "node %u NVDIMMs never settled after the kill",
               config_.id);
    image_ = system_->captureNvramImage();
    imageValid_ = true;
    store_.reset();
    system_.reset();
    state_ = NodeState::Dark;
    trace::StatRegistry::instance().counter("fleet.kills").add();
}

void
FleetNode::rebuildShard(unsigned shard)
{
    WSP_CHECK(refill_ != nullptr);
    // Reformat exactly this shard and replay its keys; sibling shards
    // (whose headers may themselves be casualties mid-restore) are
    // not touched.
    const uint64_t stride =
        apps::ShardedKvStore::shardStride(config_.perShardCapacity);
    apps::KvStore fresh(system_->cache(), kStoreBase + shard * stride,
                        config_.perShardCapacity);
    for (const auto &[key, value] : refill_(shard))
        fresh.put(key, value);
}

void
FleetNode::attachOrRefill(bool force_refill)
{
    std::vector<CacheModel *> caches(config_.shards, &system_->cache());
    if (!force_refill) {
        auto attached = apps::ShardedKvStore::attach(
            std::span<CacheModel *const>(caches), kStoreBase);
        if (attached) {
            store_ = std::move(attached);
            return;
        }
    }
    createStore();
    WSP_CHECK(refill_ != nullptr);
    for (unsigned shard = 0; shard < config_.shards; ++shard)
        for (const auto &[key, value] : refill_(shard))
            store_->put(key, value);
}

RestoreReport
FleetNode::reboot()
{
    WSP_CHECKF(system_ == nullptr && imageValid_,
               "node %u reboot needs a captured image", config_.id);
    system_ = std::make_unique<WspSystem>(systemConfig());
    bool backend_ran = false;
    // Region salvage: a quarantined shard is rebuilt from the refill
    // source while intact siblings keep their surviving bytes.
    system_->setRegionRecovery([this](const RegionOutcome &region) {
        unsigned shard = 0;
        if (std::sscanf(region.name.c_str(), "kv%u.", &shard) == 1 &&
            shard < config_.shards)
            rebuildShard(shard);
    });
    lastRestore_ = system_->bootFromImage(image_, [&backend_ran]() {
        backend_ran = true;
    });
    // Cold boot: nothing usable survived, so the whole store comes
    // back from the refill source ("fetch from the storage back
    // end"). Salvage boots re-attach — the region hooks already
    // rebuilt the casualties.
    attachOrRefill(backend_ran);
    registerRegions(); // the fresh controller must save them next time

    auto &stats = trace::StatRegistry::instance();
    if (lastRestore_.usedWsp) {
        ++wspRecoveries_;
        stats.counter("fleet.wsp_recoveries").add();
    } else if (lastRestore_.salvageMode) {
        ++salvageBoots_;
        stats.counter("fleet.salvage_boots").add();
    } else {
        ++backendRefills_;
        stats.counter("fleet.backend_refills").add();
    }
    state_ = NodeState::Restoring;
    return lastRestore_;
}

void
FleetNode::rebootColdRefill()
{
    WSP_CHECKF(system_ == nullptr, "node %u still has a chassis",
               config_.id);
    imageValid_ = false; // the image is deliberately discarded
    system_ = std::make_unique<WspSystem>(systemConfig());
    system_->start();
    lastRestore_ = RestoreReport{};
    attachOrRefill(true);
    registerRegions();
    ++backendRefills_;
    trace::StatRegistry::instance().counter("fleet.backend_refills").add();
    state_ = NodeState::Restoring;
}

void
FleetNode::decommission()
{
    store_.reset();
    system_.reset();
    imageValid_ = false;
    state_ = NodeState::Decommissioned;
}

bool
FleetNode::put(uint64_t key, uint64_t value)
{
    WSP_CHECK(serving());
    return store_->put(key, value);
}

bool
FleetNode::erase(uint64_t key)
{
    WSP_CHECK(serving());
    return store_->erase(key);
}

bool
FleetNode::get(uint64_t key, uint64_t *value_out) const
{
    WSP_CHECK(serving());
    return store_->get(key, value_out);
}

uint64_t
FleetNode::shardDigest(unsigned shard,
                       const std::function<bool(uint64_t)> &owned) const
{
    WSP_CHECK(serving());
    // Commutative mix: scan order (which differs between a node that
    // wrote keys in one order and a peer that replayed them in
    // another) must not matter.
    uint64_t digest = 0;
    uint64_t count = 0;
    store_->shard(shard).forEach(
        [&](uint64_t key, uint64_t value) {
            if (!owned(key))
                return;
            uint64_t h = key * 0x9e3779b97f4a7c15ull ^ value;
            h ^= h >> 33;
            h *= 0xff51afd7ed558ccdull;
            h ^= h >> 33;
            digest += h;
            ++count;
        });
    return digest ^ (count * 0xc4ceb9fe1a85ec53ull);
}

std::vector<std::pair<uint64_t, uint64_t>>
FleetNode::collectShard(unsigned shard,
                        const std::function<bool(uint64_t)> &owned) const
{
    WSP_CHECK(serving());
    std::vector<std::pair<uint64_t, uint64_t>> pairs;
    store_->shard(shard).forEach([&](uint64_t key, uint64_t value) {
        if (owned(key))
            pairs.emplace_back(key, value);
    });
    return pairs;
}

} // namespace wsp::fleet
