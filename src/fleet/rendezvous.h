/**
 * @file
 * Rendezvous (highest-random-weight) placement for the fleet.
 *
 * Every key is served by the R live-or-dark nodes with the highest
 * score(node, key), where the score is a murmur-style 64-bit mix of
 * the node id and the key. HRW gives the fleet the property the
 * BigWorld exemplar tests for its database placement: when a node
 * joins or leaves, only the keys whose top-R set actually contained
 * (or now contains) that node move — ~K/N of them — and every other
 * replica set is untouched. No ring state beyond the node list is
 * needed, so placement survives arbitrary crash/recovery histories
 * bit-for-bit deterministically.
 */

#pragma once

#include <cstdint>
#include <vector>

namespace wsp::fleet {

/** HRW placement over a mutable node set. */
class RendezvousHash
{
  public:
    RendezvousHash() = default;

    /** Add @p node to the candidate set (idempotent). */
    void addNode(uint32_t node);

    /** Remove @p node; no-op when absent. */
    void removeNode(uint32_t node);

    bool contains(uint32_t node) const;

    /** Current candidate nodes, ascending by id. */
    const std::vector<uint32_t> &nodes() const { return nodes_; }

    /**
     * The placement score of @p node for @p key: a murmur3-finalizer
     * mix over node-id x key. Pure function — identical across every
     * process that ever computes it.
     */
    static uint64_t score(uint32_t node, uint64_t key);

    /**
     * The replica set of @p key: the min(r, nodes) candidates with the
     * highest scores, ordered best-first (element 0 is the primary).
     * Ties break toward the lower node id (scores are 64-bit mixes, so
     * ties are vanishingly rare; the break just pins determinism).
     */
    std::vector<uint32_t> replicaSet(uint64_t key, unsigned r) const;

    /** The primary owner of @p key; nodes() must be non-empty. */
    uint32_t primary(uint64_t key) const;

  private:
    std::vector<uint32_t> nodes_;
};

} // namespace wsp::fleet
