#include "fleet/fleet_sweep.h"

#include <algorithm>

#include "crashsim/crash_explorer.h"
#include "util/logging.h"
#include "util/rng.h"

namespace wsp::fleet {

namespace {

/** Mix of puts/gets/erases the sweep's client driver issues. */
constexpr double kPutFraction = 0.6;

RecoveryPolicy
policyOf(const crashsim::CrashSchedule &schedule)
{
    switch (schedule.fleetPolicy) {
      case 1:
        return RecoveryPolicy::BackendRefill;
      case 2:
        return RecoveryPolicy::DegradedTier;
      default:
        return RecoveryPolicy::WspLocal;
    }
}

void
accumulate(StormOutcome *total, const StormOutcome &storm)
{
    total->victims += storm.victims;
    total->wspRecoveries += storm.wspRecoveries;
    total->salvageBoots += storm.salvageBoots;
    total->backendRefills += storm.backendRefills;
    total->digestsExchanged += storm.digestsExchanged;
    total->repairStreamedBytes += storm.repairStreamedBytes;
    total->shardsRepaired += storm.shardsRepaired;
    total->timeToFullCapacity =
        std::max(total->timeToFullCapacity, storm.timeToFullCapacity);
    total->fullCapacityAt =
        std::max(total->fullCapacityAt, storm.fullCapacityAt);
}

} // namespace

std::vector<std::string>
noReplicaDivergence(const Fleet &fleet)
{
    std::vector<std::string> violations = fleet.checkReplicaConvergence();
    if (fleet.recoveryPending())
        violations.push_back("recovery events still pending at check");
    for (uint32_t id = 0; id < fleet.nodeCount(); ++id) {
        const FleetNode &node = fleet.node(id);
        if (node.state() != NodeState::Decommissioned && !node.up())
            violations.push_back("node " + std::to_string(id) +
                                 " never certified up (state " +
                                 nodeStateName(node.state()) + ")");
    }
    return violations;
}

crashsim::CrashSchedule
FleetSweep::defaultSchedule()
{
    crashsim::CrashSchedule schedule;
    schedule.fleetNodes = 3;
    schedule.fleetReplication = 3;
    schedule.fleetKillMask = 0; // every node: the correlated outage
    schedule.fleetPolicy = 0;
    schedule.ops = 48;
    schedule.shards = 8;
    schedule.salvage = true;
    schedule.outage = fromSeconds(1.0);
    return schedule;
}

FleetConfig
FleetSweep::configFor(const crashsim::CrashSchedule &schedule)
{
    FleetConfig config;
    config.nodes = schedule.fleetNodes == 0 ? 3 : schedule.fleetNodes;
    config.replication =
        std::max(1u, std::min(schedule.fleetReplication, config.nodes));
    config.seed = schedule.seed;
    config.policy = policyOf(schedule);
    config.shardsPerNode = std::max(1u, schedule.shards);
    config.keyUniverse = 256;
    config.killWindow = schedule.window;
    // Sweeps always register salvage regions: mid-save kills with
    // media damage must exercise the per-region path, not fall to
    // whole-image backend recovery.
    config.salvage = true;
    // Small modelled footprint keeps recovery timelines (and thus the
    // interleaved sampled traffic) short; the bench raises it to the
    // paper's 256 GiB per server.
    config.memoryPerServer = 4ull * kGiB;
    return config;
}

FleetCrashResult
FleetSweep::runSchedule(const crashsim::CrashSchedule &schedule)
{
    FleetCrashResult result;
    result.schedule = schedule;

    Fleet fleet(configFor(schedule));
    // Pre-storm traffic seeds acked state the kills must not lose.
    fleet.runTraffic(schedule.ops, kPutFraction);

    const unsigned cycles = std::max(1u, schedule.trainCycles);
    for (unsigned cycle = 0; cycle < cycles; ++cycle) {
        const StormOutcome storm =
            fleet.runStorm(schedule.fleetKillMask, schedule.outage,
                           schedule.window, kPutFraction);
        accumulate(&result.storm, storm);
        // Between cycles the fleet serves normally for a while, so
        // the next kill lands on re-dirtied stores.
        fleet.runTraffic(schedule.ops / 4 + 1, kPutFraction);
    }

    fleet.settle();
    result.violations = noReplicaDivergence(fleet);
    result.stats = fleet.stats();
    return result;
}

std::vector<Tick>
FleetSweep::enumerateCrashPoints(size_t max_points)
{
    // Fleet nodes are crashsim-sized chassis running the same sharded
    // store, so the save pipeline's distinguishable instants come
    // from the single-machine explorer on an equivalent schedule.
    crashsim::CrashSchedule single;
    single.seed = base_.seed;
    single.ops = base_.ops;
    single.shards = std::max(1u, base_.shards);
    single.salvage = true;
    crashsim::CrashExplorer explorer(single);
    return explorer.enumerateCrashPoints(max_points);
}

FleetSweepReport
FleetSweep::sweepEnumerated(bool stop_on_first_violation,
                            size_t max_points)
{
    FleetSweepReport report;
    for (Tick window : enumerateCrashPoints(max_points)) {
        crashsim::CrashSchedule schedule = base_;
        schedule.window = window;
        FleetCrashResult result = runSchedule(schedule);
        ++report.points;
        report.wspRecoveries += result.storm.wspRecoveries;
        report.salvageBoots += result.storm.salvageBoots;
        report.backendRefills += result.storm.backendRefills;
        if (!result.held()) {
            report.failures.push_back(std::move(result));
            if (stop_on_first_violation)
                break;
        }
    }
    return report;
}

FleetSweepReport
FleetSweep::fuzz(unsigned runs, uint64_t seed)
{
    FleetSweepReport report;
    Rng rng(seed);
    for (unsigned run = 0; run < runs; ++run) {
        crashsim::CrashSchedule schedule = base_;
        schedule.seed = rng();
        schedule.fleetNodes = 3 + static_cast<unsigned>(rng.next(3));
        schedule.fleetReplication =
            2 + static_cast<unsigned>(rng.next(2));
        // Mostly partial-subset kills; keep some full-fleet storms.
        schedule.fleetKillMask =
            rng.chance(0.3) ? 0
                            : rng() & ((1ull << schedule.fleetNodes) - 1);
        schedule.fleetPolicy = static_cast<int>(rng.next(3));
        schedule.window =
            fromMicros(rng.uniform(500.0, 40.0 * 1000.0));
        schedule.outage = fromSeconds(rng.uniform(0.5, 3.0));
        schedule.trainCycles = 1 + static_cast<unsigned>(rng.next(2));
        schedule.ops = 24 + static_cast<unsigned>(rng.next(48));

        FleetCrashResult result = runSchedule(schedule);
        ++report.points;
        report.wspRecoveries += result.storm.wspRecoveries;
        report.salvageBoots += result.storm.salvageBoots;
        report.backendRefills += result.storm.backendRefills;
        if (!result.held())
            report.failures.push_back(std::move(result));
    }
    return report;
}

crashsim::CrashSchedule
FleetSweep::minimize(crashsim::CrashSchedule failing, unsigned budget)
{
    if (runSchedule(failing).held())
        return failing;

    unsigned spent = 0;
    const auto try_accept =
        [&](crashsim::CrashSchedule candidate) -> bool {
        if (spent >= budget)
            return false;
        ++spent;
        if (runSchedule(candidate).held())
            return false;
        failing = candidate;
        return true;
    };

    // Shrink the fleet first (smaller repros dominate debuggability),
    // then the sabotage, then the workload and the timing.
    for (bool progress = true; progress && spent < budget;) {
        progress = false;
        if (failing.fleetNodes > 3) {
            auto candidate = failing;
            candidate.fleetNodes = 3;
            candidate.fleetKillMask &= (1ull << 3) - 1;
            progress |= try_accept(candidate);
        }
        if (failing.fleetReplication > 2) {
            auto candidate = failing;
            --candidate.fleetReplication;
            progress |= try_accept(candidate);
        }
        if (failing.trainCycles > 1) {
            auto candidate = failing;
            candidate.trainCycles = 1;
            progress |= try_accept(candidate);
        }
        if (failing.fleetKillMask == 0 ||
            __builtin_popcountll(failing.fleetKillMask) > 1) {
            // Try a single victim: the lowest node of the mask (or
            // node 0 when the mask meant "everyone").
            auto candidate = failing;
            candidate.fleetKillMask =
                failing.fleetKillMask == 0
                    ? 1ull
                    : failing.fleetKillMask & -failing.fleetKillMask;
            progress |= try_accept(candidate);
        }
        if (failing.fleetPolicy != 0) {
            auto candidate = failing;
            candidate.fleetPolicy = 0;
            progress |= try_accept(candidate);
        }
        if (failing.ops > 8) {
            auto candidate = failing;
            candidate.ops /= 2;
            progress |= try_accept(candidate);
        }
        if (failing.outage > fromSeconds(1.0)) {
            auto candidate = failing;
            candidate.outage = fromSeconds(1.0);
            progress |= try_accept(candidate);
        }
    }
    return failing;
}

} // namespace wsp::fleet
