#include "fleet/fleet.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <thread>

#include "load/op_stream.h"
#include "load/spsc_ring.h"
#include "trace/stat_registry.h"
#include "util/arena.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace wsp::fleet {

namespace {

/** Bytes one streamed (key, value) pair stands for on the wire. */
constexpr uint64_t kPairBytes = 16;

bool
containsNode(const std::vector<uint32_t> &set, uint32_t node)
{
    return std::find(set.begin(), set.end(), node) != set.end();
}

} // namespace

Fleet::Fleet(FleetConfig config)
    : config_(config), rng_(config.seed),
      capacity_{"fleet up fraction", {}, {}}
{
    WSP_CHECKF(config_.nodes >= 1 && config_.nodes <= 64,
               "fleet size must be 1..64 (kill masks are 64-bit)");
    effectiveR_ = std::max(1u, std::min(config_.replication, config_.nodes));
    writeQuorum_ =
        config_.writeQuorum == 0
            ? effectiveR_ / 2 + 1
            : std::min(config_.writeQuorum, effectiveR_);

    for (uint32_t id = 0; id < config_.nodes; ++id) {
        FleetNodeConfig node_config;
        node_config.id = id;
        node_config.seed = Rng(config_.seed).stream(id + 1)();
        node_config.shards = config_.shardsPerNode;
        node_config.perShardCapacity = config_.perShardCapacity;
        node_config.killWindow = config_.killWindow;
        node_config.salvage = config_.salvage;
        auto node = std::make_unique<FleetNode>(node_config);
        node->setRefillSource([this, id](unsigned shard) {
            // The backend's checkpoint+log view of this node: every
            // acked pair that hashes to the shard and whose replica
            // set (under the *current* ring) includes the node.
            std::vector<std::pair<uint64_t, uint64_t>> pairs;
            for (const auto &[key, value] : model_)
                if (nodes_[id]->shardOf(key) == shard &&
                    assignedTo(key, id))
                    pairs.emplace_back(key, value);
            return pairs;
        });
        node->bootFresh();
        nodes_.push_back(std::move(node));
        ring_.addNode(id);
        latency_.emplace_back(0.0, config_.latencyHiMs,
                              config_.latencyBuckets);
        epoch_.push_back(0);
    }
    recordCapacity();
}

Fleet::~Fleet() = default;

unsigned
Fleet::upNodes() const
{
    unsigned up = 0;
    for (const auto &node : nodes_)
        up += node->up() ? 1 : 0;
    return up;
}

bool
Fleet::assignedTo(uint64_t key, uint32_t node_id) const
{
    return containsNode(ring_.replicaSet(key, effectiveR_), node_id);
}

Tick
Fleet::serviceDraw()
{
    // Exponential service time around the configured mean.
    double u = rng_.uniform();
    while (u >= 1.0)
        u = rng_.uniform();
    return std::max<Tick>(
        1, fromSeconds(-toSeconds(config_.serviceMean) *
                       std::log(1.0 - u)));
}

Tick
Fleet::backoff(unsigned attempt)
{
    // Capped exponential backoff with +/-50% jitter so a storm's
    // retries do not re-synchronize into a thundering herd.
    Tick base = config_.backoffBase;
    for (unsigned i = 0; i < attempt && base < config_.backoffCap; ++i)
        base *= 2;
    base = std::min(base, config_.backoffCap);
    return base / 2 + rng_.next(base / 2 + 1);
}

void
Fleet::recordLatency(uint64_t key, Tick latency)
{
    // Attribute to the key's primary so per-node histograms show
    // which owners ran hot; the fleet-wide view is their merge.
    const auto replicas = ring_.replicaSet(key, effectiveR_);
    if (replicas.empty())
        return;
    latency_[replicas.front()].add(toSeconds(latency) * 1e3);
}

void
Fleet::recordCapacity()
{
    unsigned commissioned = 0;
    unsigned up = 0;
    for (const auto &node : nodes_) {
        if (node->state() == NodeState::Decommissioned)
            continue;
        ++commissioned;
        up += node->up() ? 1 : 0;
    }
    capacity_.add(toSeconds(now_),
                  commissioned == 0
                      ? 0.0
                      : static_cast<double>(up) / commissioned);
}

// Client plane -------------------------------------------------------

bool
Fleet::applyWrite(uint64_t key, uint64_t value, bool is_erase)
{
    WSP_CHECKF(key != 0, "key 0 is reserved by the store");
    ++stats_.requests;
    const auto replicas = ring_.replicaSet(key, effectiveR_);
    Tick latency = 0;
    const Tick start = now_;

    for (unsigned attempt = 0; attempt < config_.maxAttempts; ++attempt) {
        unsigned up = 0;
        for (uint32_t id : replicas)
            up += nodes_[id]->up() ? 1 : 0;

        if (up >= writeQuorum_) {
            // Fan out to the Up quorum in parallel; the ack waits for
            // the slowest member.
            Tick round = 0;
            for (uint32_t id : replicas)
                if (nodes_[id]->up())
                    round = std::max(round, serviceDraw());
            latency += round;
            // Apply to *every* live replica (catching-up and degraded
            // nodes included) so live replicas never diverge and
            // repair only has to cover each node's dark window.
            for (uint32_t id : replicas) {
                if (!nodes_[id]->live() || !nodes_[id]->serving())
                    continue;
                if (is_erase)
                    nodes_[id]->erase(key);
                else
                    nodes_[id]->put(key, value);
            }
            if (is_erase)
                model_.erase(key);
            else
                model_[key] = value;
            touched_.insert(key);
            ++stats_.succeeded;
            ++stats_.ackedWrites;
            recordLatency(key, latency);
            return true;
        }

        // Quorum unreachable: the client burns its timeout on the
        // dead majority, backs off, and retries — recoveries may
        // complete while it waits.
        latency += config_.requestTimeout + backoff(attempt);
        ++stats_.timeouts;
        ++stats_.retries;
        advanceTo(start + latency);
    }

    ++stats_.failed;
    ++stats_.rejectedWrites;
    recordLatency(key, latency);
    return false;
}

bool
Fleet::clientPut(uint64_t key, uint64_t value)
{
    return applyWrite(key, value, false);
}

bool
Fleet::clientErase(uint64_t key)
{
    return applyWrite(key, 0, true);
}

bool
Fleet::clientGet(uint64_t key, uint64_t *value_out)
{
    WSP_CHECKF(key != 0, "key 0 is reserved by the store");
    ++stats_.requests;
    const auto replicas = ring_.replicaSet(key, effectiveR_);
    Tick latency = 0;
    const Tick start = now_;

    for (unsigned attempt = 0; attempt < config_.maxAttempts; ++attempt) {
        for (uint32_t id : replicas) {
            FleetNode &node = *nodes_[id];
            const bool degraded_ok =
                config_.policy == RecoveryPolicy::DegradedTier &&
                node.state() == NodeState::DegradedReadOnly &&
                node.serving();
            if (node.up() || degraded_ok) {
                latency += serviceDraw();
                if (degraded_ok)
                    ++stats_.degradedReads;
                ++stats_.succeeded;
                recordLatency(key, latency);
                const bool found = node.get(key, value_out);
                return found;
            }
            // Dead or syncing replica: pay the contact timeout and
            // fall through to the next member of the set.
            latency += config_.requestTimeout;
            ++stats_.timeouts;
        }
        latency += backoff(attempt);
        ++stats_.retries;
        advanceTo(start + latency);
    }

    ++stats_.failed;
    recordLatency(key, latency);
    return false;
}

void
Fleet::oneRequest(double put_fraction)
{
    const uint64_t key = rng_.next(config_.keyUniverse) + 1;
    const double draw = rng_.uniform();
    if (draw < put_fraction) {
        clientPut(key, ++opCounter_);
    } else if (draw < put_fraction + (1.0 - put_fraction) * 0.8) {
        clientGet(key);
    } else {
        clientErase(key);
    }
}

void
Fleet::trafficUntil(Tick t, double put_fraction)
{
    while (now_ + config_.trafficSpacing <= t) {
        now_ += config_.trafficSpacing;
        oneRequest(put_fraction);
    }
}

void
Fleet::runTraffic(unsigned requests, double put_fraction)
{
    for (unsigned i = 0; i < requests; ++i) {
        now_ += config_.trafficSpacing;
        // Process any recovery event the spacing stepped over.
        advanceTo(now_);
        oneRequest(put_fraction);
    }
}

// Timeline -----------------------------------------------------------

void
Fleet::advanceTo(Tick t)
{
    while (!agenda_.empty() && agenda_.begin()->first <= t) {
        const auto it = agenda_.begin();
        const Tick when = it->first;
        const Event event = it->second;
        agenda_.erase(it);
        now_ = std::max(now_, when);
        processEvent(when, event);
    }
    now_ = std::max(now_, t);
}

void
Fleet::settle()
{
    while (!agenda_.empty())
        advanceTo(agenda_.begin()->first);
}

// Modelled-time plane ------------------------------------------------

apps::ClusterConfig
Fleet::analytic() const
{
    apps::ClusterConfig cluster;
    cluster.servers = config_.nodes;
    cluster.memoryPerServer = config_.memoryPerServer;
    cluster.backend = config_.backend;
    cluster.nvdimm.capacityBytes = config_.memoryPerServer;
    cluster.nvdimm.flashChannels = 0; // auto: one per GiB
    cluster.wspBootOverhead = config_.wspBootOverhead;
    cluster.staleFraction = config_.staleFraction;
    return cluster;
}

Tick
Fleet::modeledBootAndRestore() const
{
    // Same module math as apps::correlatedOutage: flash restore runs
    // one channel per GiB in parallel.
    const apps::ClusterConfig cluster = analytic();
    NvdimmConfig module = cluster.nvdimm;
    module.capacityBytes = std::max<uint64_t>(module.capacityBytes, 1);
    const double restore_bw =
        module.channelRestoreBw *
        std::max(1u, module.flashChannels == 0
                         ? static_cast<unsigned>(
                               (module.capacityBytes + kGiB - 1) / kGiB)
                         : module.flashChannels);
    return config_.wspBootOverhead +
           fromSeconds(static_cast<double>(module.capacityBytes) /
                       restore_bw);
}

Tick
Fleet::modeledStaleFetch(unsigned concurrent) const
{
    apps::BackendStore backend(config_.backend);
    return backend.recoveryTime(
        static_cast<uint64_t>(config_.staleFraction *
                              static_cast<double>(config_.memoryPerServer)),
        std::max(1u, concurrent));
}

Tick
Fleet::modeledWspRecovery(unsigned concurrent) const
{
    return modeledBootAndRestore() + modeledStaleFetch(concurrent);
}

Tick
Fleet::modeledRefill(unsigned concurrent) const
{
    apps::BackendStore backend(config_.backend);
    return backend.recoveryTime(config_.memoryPerServer,
                                std::max(1u, concurrent));
}

// Fault plane --------------------------------------------------------

unsigned
Fleet::killSubset(uint64_t mask, Tick outage, Tick window)
{
    if (config_.nodes < 64)
        mask &= (1ull << config_.nodes) - 1;
    if (mask == 0)
        mask = config_.nodes < 64 ? (1ull << config_.nodes) - 1 : ~0ull;

    std::vector<uint32_t> victims;
    for (uint32_t id = 0; id < config_.nodes; ++id) {
        if (!(mask & (1ull << id)))
            continue;
        FleetNode &node = *nodes_[id];
        if (node.serving()) {
            victims.push_back(id);
        } else if (node.state() == NodeState::Dark) {
            // Already dark: power stays out longer. Its pending
            // PowerRestored event is superseded.
            ++epoch_[id];
            agenda_.insert(
                {now_ + outage,
                 Event{EventKind::PowerRestored, id, epoch_[id]}});
        }
    }

    if (!storm_.active || storm_.remaining == 0) {
        storm_ = StormState{};
        storm_.active = true;
        storm_.start = now_;
    }
    storm_.powerRestored = now_ + outage;
    storm_.victims += static_cast<unsigned>(victims.size());
    storm_.remaining += static_cast<unsigned>(victims.size());

    for (uint32_t id : victims) {
        nodes_[id]->crash(window);
        ++epoch_[id]; // stale recovery events for this node die here
        agenda_.insert({now_ + outage,
                        Event{EventKind::PowerRestored, id, epoch_[id]}});
    }
    recordCapacity();
    return static_cast<unsigned>(victims.size());
}

void
Fleet::processEvent(Tick when, const Event &event)
{
    FleetNode &node = *nodes_[event.node];
    if (event.epoch != epoch_[event.node])
        return; // the node was re-killed; this timeline is dead
    auto &stats = trace::StatRegistry::instance();

    switch (event.kind) {
      case EventKind::PowerRestored: {
        if (node.state() != NodeState::Dark)
            return;
        const unsigned concurrent = std::max(1u, storm_.remaining);
        Tick duration = 0;
        if (config_.policy == RecoveryPolicy::BackendRefill) {
            node.rebootColdRefill();
            duration = modeledRefill(concurrent);
            ++storm_.backendRefills;
        } else {
            const RestoreReport &report = node.reboot();
            if (report.usedWsp) {
                duration = modeledBootAndRestore();
                ++storm_.wspRecoveries;
            } else if (report.salvageMode) {
                // Intact regions restored locally; the quarantined
                // fraction of the modelled memory refills from the
                // backend alongside the other victims.
                const double quarantined =
                    report.regions.empty()
                        ? 0.0
                        : static_cast<double>(report.regionsQuarantined) /
                              static_cast<double>(report.regions.size());
                apps::BackendStore backend(config_.backend);
                duration =
                    modeledBootAndRestore() +
                    backend.recoveryTime(
                        static_cast<uint64_t>(
                            quarantined *
                            static_cast<double>(config_.memoryPerServer)),
                        concurrent);
                ++storm_.salvageBoots;
            } else {
                duration = modeledRefill(concurrent);
                ++storm_.backendRefills;
            }
        }
        agenda_.insert(
            {when + duration,
             Event{EventKind::RestoreDone, event.node, event.epoch}});
        break;
      }

      case EventKind::RestoreDone: {
        if (node.state() != NodeState::Restoring)
            return;
        // The node rejoins the replication stream now; anti-entropy
        // covers the window it was dark.
        const RepairResult repair = repairNode(node);
        storm_.digests += repair.digests;
        storm_.streamed += repair.streamed;
        storm_.shardsRepaired += repair.shards;
        stats.counter("fleet.repair_streamed_bytes")
            .add(repair.streamed);

        Tick duration =
            fromSeconds(static_cast<double>(repair.streamed) /
                        config_.antiEntropyBandwidth);
        const bool wsp_path =
            config_.policy != RecoveryPolicy::BackendRefill &&
            (node.lastRestore().usedWsp || node.lastRestore().salvageMode);
        if (wsp_path)
            duration += modeledStaleFetch(std::max(1u, storm_.remaining));

        if (config_.policy == RecoveryPolicy::DegradedTier && wsp_path) {
            node.setState(NodeState::DegradedReadOnly);
            stats.counter("fleet.degraded_entries").add();
        } else {
            node.setState(NodeState::CatchingUp);
        }
        agenda_.insert(
            {when + std::max<Tick>(duration, 1),
             Event{EventKind::RepairDone, event.node, event.epoch}});
        break;
      }

      case EventKind::RepairDone: {
        if (node.state() != NodeState::CatchingUp &&
            node.state() != NodeState::DegradedReadOnly)
            return;
        // Certification pass: the node took live writes while it
        // caught up, so this final delta is normally empty.
        const RepairResult repair = repairNode(node);
        storm_.digests += repair.digests;
        storm_.streamed += repair.streamed;
        storm_.shardsRepaired += repair.shards;
        node.setState(NodeState::Up);
        recordCapacity();
        if (storm_.remaining > 0)
            --storm_.remaining;
        storm_.lastReady = std::max(storm_.lastReady, when);
        stats.counter("fleet.repairs_certified").add();
        break;
      }
    }
}

StormOutcome
Fleet::runStorm(uint64_t mask, Tick outage, Tick window,
                double put_fraction)
{
    const StormState before = storm_;
    killSubset(mask, outage, window);

    // Drive sampled client traffic between recovery events until the
    // fleet is whole again.
    while (!agenda_.empty()) {
        const Tick next = agenda_.begin()->first;
        trafficUntil(next, put_fraction);
        advanceTo(next);
    }

    StormOutcome outcome;
    outcome.start = storm_.start;
    outcome.powerRestored = storm_.powerRestored;
    outcome.fullCapacityAt = storm_.lastReady;
    outcome.timeToFullCapacity =
        storm_.lastReady > storm_.powerRestored
            ? storm_.lastReady - storm_.powerRestored
            : 0;
    outcome.victims = storm_.victims - before.victims;
    outcome.wspRecoveries = storm_.wspRecoveries - before.wspRecoveries;
    outcome.salvageBoots = storm_.salvageBoots - before.salvageBoots;
    outcome.backendRefills =
        storm_.backendRefills - before.backendRefills;
    outcome.digestsExchanged = storm_.digests - before.digests;
    outcome.repairStreamedBytes = storm_.streamed - before.streamed;
    outcome.shardsRepaired =
        storm_.shardsRepaired - before.shardsRepaired;
    storm_.active = false;
    return outcome;
}

StormOutcome
Fleet::runStormThreaded(ThreadPool &pool, uint64_t mask, Tick outage,
                        Tick window, const StormLoad &load)
{
    WSP_CHECK(load.generators >= 1);
    WSP_CHECKF(pool.threadCount() == load.generators + 1,
               "pool has %u threads, storm load wants %u generators + 1",
               pool.threadCount(), load.generators);
    WSP_CHECK(load.ringFrames >= 2 &&
              (load.ringFrames & (load.ringFrames - 1)) == 0);

    // One SPSC ring per generator, timeline worker as sole consumer.
    util::Arena arena;
    std::vector<wsp::load::SpscRing<apps::KvOp> *> rings;
    rings.reserve(load.generators);
    for (unsigned g = 0; g < load.generators; ++g) {
        auto *frames = arena.allocate<apps::KvOp>(load.ringFrames);
        auto *ring = static_cast<wsp::load::SpscRing<apps::KvOp> *>(
            arena.allocate(sizeof(wsp::load::SpscRing<apps::KvOp>),
                           alignof(wsp::load::SpscRing<apps::KvOp>)));
        rings.push_back(new (ring) wsp::load::SpscRing<apps::KvOp>(
            frames, load.ringFrames));
    }

    std::atomic<bool> done{false};
    std::vector<uint64_t> producedPerGen(load.generators, 0);
    std::vector<uint64_t> stallsPerGen(load.generators, 0);
    StormOutcome outcome;

    pool.runWorkers([&](unsigned worker) {
        if (worker == 0) {
            // Timeline worker: the storm loop of runStorm, with the
            // sampled client traffic popped from the generator rings
            // (round-robin by request index) instead of drawn from
            // the fleet rng. Fleet state stays single-threaded.
            const StormState before = storm_;
            killSubset(mask, outage, window);
            unsigned turn = 0;
            apps::KvOp op{};
            std::span<apps::KvOp> one(&op, 1);
            const auto popNext = [&]() {
                wsp::load::SpscRing<apps::KvOp> &ring = *rings[turn];
                turn = (turn + 1) % load.generators;
                while (ring.tryPop(one) == 0) {
                    // Generators only stop after done is set below,
                    // so the ring always refills; just wait our turn.
                    std::this_thread::yield();
                }
            };
            while (!agenda_.empty()) {
                const Tick next = agenda_.begin()->first;
                while (now_ + config_.trafficSpacing <= next) {
                    now_ += config_.trafficSpacing;
                    popNext();
                    switch (op.kind) {
                    case apps::KvOp::Kind::Put:
                        clientPut(op.key, op.value);
                        break;
                    case apps::KvOp::Kind::Get:
                        clientGet(op.key);
                        break;
                    case apps::KvOp::Kind::Erase:
                        clientErase(op.key);
                        break;
                    }
                }
                advanceTo(next);
            }
            done.store(true, std::memory_order_release);

            outcome.start = storm_.start;
            outcome.powerRestored = storm_.powerRestored;
            outcome.fullCapacityAt = storm_.lastReady;
            outcome.timeToFullCapacity =
                storm_.lastReady > storm_.powerRestored
                    ? storm_.lastReady - storm_.powerRestored
                    : 0;
            outcome.victims = storm_.victims - before.victims;
            outcome.wspRecoveries =
                storm_.wspRecoveries - before.wspRecoveries;
            outcome.salvageBoots =
                storm_.salvageBoots - before.salvageBoots;
            outcome.backendRefills =
                storm_.backendRefills - before.backendRefills;
            outcome.digestsExchanged = storm_.digests - before.digests;
            outcome.repairStreamedBytes =
                storm_.streamed - before.streamed;
            outcome.shardsRepaired =
                storm_.shardsRepaired - before.shardsRepaired;
            storm_.active = false;
            return;
        }

        // Generator worker: deterministic op stream into our ring
        // until the timeline declares the storm over. Keys are drawn
        // from the full client universe (all generators share it —
        // aggregate totals are deterministic, per-key history is the
        // drain interleave's, which is also fixed).
        const unsigned g = worker - 1;
        wsp::load::OpStreamConfig sc;
        sc.keyLo = 1;
        sc.keyCount = config_.keyUniverse;
        sc.getPermille = load.getPermille;
        sc.erasePermille = load.erasePermille;
        wsp::load::OpStream stream(sc, Rng(config_.seed).stream(g + 100));
        wsp::load::SpscRing<apps::KvOp> &ring = *rings[g];
        while (!done.load(std::memory_order_acquire)) {
            const apps::KvOp next = stream.next();
            while (!ring.tryPush(next)) {
                ++stallsPerGen[g];
                if (done.load(std::memory_order_acquire))
                    return; // leftover frames are simply dropped
                std::this_thread::yield();
            }
            ++producedPerGen[g];
        }
    });

    for (unsigned g = 0; g < load.generators; ++g) {
        outcome.generatorOps += producedPerGen[g];
        outcome.generatorStalls += stallsPerGen[g];
    }
    auto &stats = trace::StatRegistry::instance();
    stats.counter("fleet.storm.generator_ops").add(outcome.generatorOps);
    stats.counter("fleet.storm.generator_stalls")
        .add(outcome.generatorStalls);
    return outcome;
}

// Anti-entropy -------------------------------------------------------

Fleet::RepairResult
Fleet::repairNode(FleetNode &target)
{
    RepairResult result;
    if (!target.serving())
        return result;
    const uint32_t target_id = target.id();
    const auto owned_by_target = [&](uint64_t key) {
        return assignedTo(key, target_id);
    };

    for (unsigned shard = 0; shard < target.shards(); ++shard) {
        // Digest exchange: compare the target against every Up peer
        // over the key subset both are assigned; if every pairwise
        // digest matches (and the backend fallback agrees for keys
        // with no Up peer), the shard streams nothing.
        bool divergent = false;
        std::vector<uint32_t> peers;
        for (const auto &peer : nodes_) {
            if (peer->id() == target_id || !peer->up() ||
                !peer->serving())
                continue;
            peers.push_back(peer->id());
            const auto shared = [&](uint64_t key) {
                return assignedTo(key, target_id) &&
                       assignedTo(key, peer->id());
            };
            ++result.digests;
            if (target.shardDigest(shard, shared) !=
                peer->shardDigest(shard, shared))
                divergent = true;
        }

        // Authority for this shard's keys: Up peers where available,
        // the backend (acked-write log) where not.
        std::map<uint64_t, uint64_t> authority;
        for (const auto &[key, value] : model_) {
            if (target.shardOf(key) != shard || !owned_by_target(key))
                continue;
            bool peer_covered = false;
            for (uint32_t peer : peers)
                if (assignedTo(key, peer)) {
                    peer_covered = true;
                    break;
                }
            // Up peers carry exactly the acked history for their keys
            // (live replicas never diverge), so the authoritative
            // value is the model's either way; peer coverage only
            // decides who the bytes stream from.
            (void)peer_covered;
            authority.emplace(key, value);
        }

        if (!divergent) {
            // Peers matched; still verify the backend-covered keys.
            const auto current =
                target.collectShard(shard, owned_by_target);
            std::map<uint64_t, uint64_t> current_map(current.begin(),
                                                     current.end());
            if (current_map == authority)
                continue;
        }

        // Stream only this shard's missed updates.
        uint64_t shard_streamed = 0;
        const auto current = target.collectShard(shard, owned_by_target);
        std::map<uint64_t, uint64_t> current_map(current.begin(),
                                                 current.end());
        for (const auto &[key, value] : authority) {
            const auto it = current_map.find(key);
            if (it == current_map.end() || it->second != value) {
                target.put(key, value);
                shard_streamed += kPairBytes;
            }
        }
        for (const auto &[key, value] : current_map) {
            (void)value;
            if (!authority.count(key)) {
                target.erase(key);
                shard_streamed += kPairBytes;
            }
        }
        if (shard_streamed > 0) {
            result.streamed += shard_streamed;
            ++result.shards;
        }
    }
    return result;
}

// Rebalance ----------------------------------------------------------

RebalanceReport
Fleet::decommission(uint32_t id)
{
    RebalanceReport report;
    WSP_CHECK(id < nodes_.size());
    WSP_CHECKF(ring_.contains(id), "node %u already decommissioned", id);

    // Capture the old placement of every acked key before the ring
    // changes under us.
    std::vector<std::pair<uint64_t, std::vector<uint32_t>>> old_sets;
    for (const auto &[key, value] : model_) {
        (void)value;
        old_sets.emplace_back(key, ring_.replicaSet(key, effectiveR_));
    }

    ring_.removeNode(id);
    ++epoch_[id]; // cancel any in-flight recovery of the lost node
    nodes_[id]->decommission();

    // Rendezvous rebalance: only keys that listed the lost node gain
    // a (single) new replica; every other set is untouched.
    for (const auto &[key, old_set] : old_sets) {
        if (!containsNode(old_set, id))
            continue;
        for (uint32_t gained : ring_.replicaSet(key, effectiveR_)) {
            if (containsNode(old_set, gained))
                continue;
            FleetNode &node = *nodes_[gained];
            if (node.live() && node.serving())
                node.put(key, model_.at(key));
            ++report.keysMoved;
        }
    }
    report.bytesMoved = report.keysMoved * kPairBytes;
    report.duration = fromSeconds(static_cast<double>(report.bytesMoved) /
                                  config_.antiEntropyBandwidth);
    recordCapacity();
    return report;
}

// Checks -------------------------------------------------------------

std::vector<std::string>
Fleet::checkReplicaConvergence() const
{
    std::vector<std::string> violations;
    for (uint64_t key : touched_) {
        const auto expected = model_.find(key);
        const bool should_exist = expected != model_.end();
        for (uint32_t id : ring_.replicaSet(key, effectiveR_)) {
            const FleetNode &node = *nodes_[id];
            if (!node.up() || !node.serving())
                continue;
            uint64_t value = 0;
            const bool found = node.get(key, &value);
            if (found != should_exist) {
                violations.push_back(
                    "key " + std::to_string(key) + " node " +
                    std::to_string(id) +
                    (should_exist ? ": acked write lost"
                                  : ": acked erase resurfaced"));
            } else if (found && value != expected->second) {
                violations.push_back(
                    "key " + std::to_string(key) + " node " +
                    std::to_string(id) + ": stale value " +
                    std::to_string(value) + " != acked " +
                    std::to_string(expected->second));
            }
        }
    }
    return violations;
}

Histogram
Fleet::fleetLatency() const
{
    Histogram merged(0.0, config_.latencyHiMs, config_.latencyBuckets);
    for (const Histogram &h : latency_)
        merged.merge(h);
    return merged;
}

} // namespace wsp::fleet
