/**
 * @file
 * The replicated serving fleet: N WSP nodes behind rendezvous-hashed
 * placement with replication factor R, a quorum client driver, a
 * correlated-failure fault plane, and anti-entropy repair.
 *
 * This is ROADMAP item 1 made executable: the paper's Facebook-2010
 * motivation (hundreds of main-memory servers refilling terabytes
 * from a shared backend for hours, vs WSP nodes recovering locally in
 * parallel) as a simulated fleet instead of the closed-form
 * apps::correlatedOutage estimate. The fleet keeps both honest — its
 * modelled recovery timeline uses the exact same formulas, so the
 * differential test can hold simulator and closed form against each
 * other — while replica *contents* are fully real: every node is a
 * WspSystem whose store lives behind a write-back cache, kills are
 * genuine mid-save power losses, and recovery replays the whole
 * image-capture / chassis-swap / salvage machinery.
 *
 * Consistency contract (what NoReplicaDivergence asserts):
 *
 *  - A client write is acknowledged only when at least writeQuorum()
 *    replicas are Up; it is then applied atomically to every *live*
 *    replica (Up, CatchingUp, DegradedReadOnly) and logged to the
 *    modelled backend. Otherwise it is rejected with no mutation.
 *  - Acked writes therefore survive any kill: live replicas carry
 *    them (and flush-on-fail persists them), and the backend log
 *    covers cold boots.
 *  - A node that was Dark missed updates; anti-entropy repair
 *    (per-shard digest exchange against Up peers, streaming only the
 *    divergent shards, backend as the authority of last resort when
 *    no Up peer shares a key) certifies convergence before the node
 *    re-enters Up.
 */

#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "apps/backend_store.h"
#include "apps/cluster.h"
#include "fleet/node.h"
#include "fleet/rendezvous.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/units.h"

namespace wsp {
class ThreadPool; // util/thread_pool.h
} // namespace wsp

namespace wsp::fleet {

/** Everything needed to assemble and drive a fleet. */
struct FleetConfig
{
    unsigned nodes = 5;
    unsigned replication = 3;

    /** Up replicas required to ack a write (0 = majority of R). */
    unsigned writeQuorum = 0;

    uint64_t seed = 0x464c454554ull; // "FLEET"

    /** Per-node store geometry. */
    unsigned shardsPerNode = 8;
    uint64_t perShardCapacity = 256;

    /** Client keys are drawn from [1, keyUniverse]. */
    uint64_t keyUniverse = 512;

    RecoveryPolicy policy = RecoveryPolicy::WspLocal;

    /** Register shards as tiered salvage regions on every node. */
    bool salvage = true;

    /** Default residual window of a kill (overridable per storm). */
    Tick killWindow = fromMillis(33.0);

    // Capacity/time plane (mirrors apps::ClusterConfig) --------------

    /** Bytes of state each node stands for on the modelled timeline.
     *  Tests keep this small; the bench uses the paper's 256 GiB. */
    uint64_t memoryPerServer = 4ull * kGiB;
    apps::BackendConfig backend;
    Tick wspBootOverhead = fromSeconds(10.0);
    double staleFraction = 0.001;

    /** Replica-to-replica anti-entropy stream bandwidth (10 GbE). */
    double antiEntropyBandwidth = 1.25e9;

    // Client-traffic model -------------------------------------------

    /** Request rate the fleet stands for (millions of users). */
    double modeledClientRate = 1.2e6;

    /** Spacing of the *sampled* requests actually executed. */
    Tick trafficSpacing = fromMillis(20.0);

    /** Mean of the exponential per-contact service time. */
    Tick serviceMean = fromMicros(200.0);

    /** Client-side timeout per dead-replica contact. */
    Tick requestTimeout = fromMillis(2.0);

    /** Capped exponential backoff between retry rounds. */
    Tick backoffBase = fromMillis(1.0);
    Tick backoffCap = fromMillis(50.0);
    unsigned maxAttempts = 6;

    /** Latency histogram shape (milliseconds). */
    double latencyHiMs = 50.0;
    size_t latencyBuckets = 250;
};

/** Client-visible outcome counters. */
struct RequestStats
{
    uint64_t requests = 0;
    uint64_t succeeded = 0;
    uint64_t failed = 0;
    uint64_t retries = 0;
    uint64_t timeouts = 0;       ///< dead-replica contacts paid for
    uint64_t degradedReads = 0;  ///< served by the read-only tier
    uint64_t rejectedWrites = 0; ///< quorum unreachable, not acked
    uint64_t ackedWrites = 0;
};

/**
 * Threaded-load knobs for runStormThreaded: how many real generator
 * threads feed the storm, their op mix, and the ring depth between
 * them and the timeline thread.
 */
struct StormLoad
{
    unsigned generators = 2;
    uint32_t getPermille = 400;   ///< matches put_fraction=0.5 traffic
    uint32_t erasePermille = 100; ///< (puts get the remaining 500)
    size_t ringFrames = 1024;     ///< per-generator SPSC depth (pow2)
};

/** What one correlated outage (storm) did to the fleet. */
struct StormOutcome
{
    Tick start = 0;         ///< kill instant
    Tick powerRestored = 0; ///< victims' AC back
    Tick fullCapacityAt = 0;

    /** Last victim certified Up, measured from power restore. */
    Tick timeToFullCapacity = 0;

    unsigned victims = 0;
    unsigned wspRecoveries = 0;
    unsigned salvageBoots = 0;
    unsigned backendRefills = 0;

    /** Anti-entropy accounting. */
    uint64_t digestsExchanged = 0;
    uint64_t repairStreamedBytes = 0;
    unsigned shardsRepaired = 0;

    /** Threaded-load accounting (zero for the modeled arm). */
    uint64_t generatorOps = 0;    ///< ops produced by real threads
    uint64_t generatorStalls = 0; ///< ring-full back-pressure events
};

/** Rendezvous-driven rebalance after a permanent node loss. */
struct RebalanceReport
{
    uint64_t keysMoved = 0;
    uint64_t bytesMoved = 0;
    Tick duration = 0; ///< modelled copy time at antiEntropyBandwidth
};

/** A replicated WSP serving fleet on one logical timeline. */
class Fleet
{
  public:
    explicit Fleet(FleetConfig config);
    ~Fleet();

    const FleetConfig &config() const { return config_; }
    Tick now() const { return now_; }

    unsigned replication() const { return effectiveR_; }
    unsigned writeQuorum() const { return writeQuorum_; }

    FleetNode &node(uint32_t id) { return *nodes_.at(id); }
    const FleetNode &node(uint32_t id) const { return *nodes_.at(id); }
    unsigned nodeCount() const
    {
        return static_cast<unsigned>(nodes_.size());
    }
    unsigned upNodes() const;

    /** HRW replica set of @p key, best-first. */
    std::vector<uint32_t> replicaSet(uint64_t key) const
    {
        return ring_.replicaSet(key, effectiveR_);
    }

    // Client plane ---------------------------------------------------

    /** Quorum write; retries with capped backoff. False = rejected. */
    bool clientPut(uint64_t key, uint64_t value);
    bool clientErase(uint64_t key);

    /** Read from the replica set (first Up — or degraded — answer). */
    bool clientGet(uint64_t key, uint64_t *value_out = nullptr);

    /** Issue @p requests sampled client requests at trafficSpacing. */
    void runTraffic(unsigned requests, double put_fraction = 0.5);

    // Timeline -------------------------------------------------------

    /** Advance fleet time, processing due recovery events. */
    void advanceTo(Tick t);
    void advanceBy(Tick d) { advanceTo(now_ + d); }

    /** True while recovery events are pending. */
    bool recoveryPending() const { return !agenda_.empty(); }

    /** Advance past every pending recovery event (no traffic). */
    void settle();

    // Fault plane ----------------------------------------------------

    /**
     * Kill the node subset selected by @p mask (bit i = node i;
     * 0 = every node) mid-save with residual window @p window, and
     * schedule their recoveries for @p outage later under the
     * configured policy. Returns the number of victims.
     */
    unsigned killSubset(uint64_t mask, Tick outage, Tick window);

    /**
     * One full storm: kill, then run sampled client traffic
     * interleaved with the recovery timeline until every victim is
     * certified Up again.
     */
    StormOutcome runStorm(uint64_t mask, Tick outage, Tick window,
                          double put_fraction = 0.5);

    /**
     * The same storm driven by real threads: @p load.generators pool
     * workers each run a deterministic load::OpStream into a private
     * SPSC ring, and the timeline worker (pool worker 0) drains the
     * rings round-robin — one op per trafficSpacing tick — applying
     * each as a quorum client request. Because every stream is
     * deterministic and the drain order is fixed, the applied request
     * sequence does not depend on OS scheduling; the threads are real
     * but the outcome is reproducible, and the differential test
     * holds it against the modeled runStorm within 5%.
     *
     * @p pool must have exactly load.generators + 1 threads (worker 0
     * drives the timeline). Generators that outrun the timeline block
     * on their ring (counted in StormOutcome::generatorStalls).
     */
    StormOutcome runStormThreaded(ThreadPool &pool, uint64_t mask,
                                  Tick outage, Tick window,
                                  const StormLoad &load = {});

    /** Permanent loss: drop the node and rebalance its keys. */
    RebalanceReport decommission(uint32_t id);

    // Checks and reporting -------------------------------------------

    /**
     * The NoReplicaDivergence core: every acked write must be present
     * (with its acked value) on every Up replica of its key, and
     * acked erases must be absent — i.e. Up replica sets agree with
     * the acknowledged history and hence with each other. Returns
     * human-readable violations; empty = converged.
     */
    std::vector<std::string> checkReplicaConvergence() const;

    const RequestStats &stats() const { return stats_; }
    uint64_t ackedWrites() const { return stats_.ackedWrites; }

    /** Per-node client latency (ms) and the fleet-wide merge. */
    const Histogram &nodeLatency(uint32_t id) const
    {
        return latency_.at(id);
    }
    Histogram fleetLatency() const;

    /** (seconds, fraction of commissioned nodes Up) over the run. */
    const Series &capacityTimeline() const { return capacity_; }

    // Modelled-time plane (shared with apps::correlatedOutage) -------

    /** The analytic cluster this fleet corresponds to. */
    apps::ClusterConfig analytic() const;

    /** Modelled WSP-local recovery (boot + restore + stale fetch). */
    Tick modeledWspRecovery(unsigned concurrent) const;

    /** Modelled full backend refill under @p concurrent streams. */
    Tick modeledRefill(unsigned concurrent) const;

  private:
    enum class EventKind : uint8_t
    {
        PowerRestored,
        RestoreDone,
        RepairDone,
    };
    struct Event
    {
        EventKind kind;
        uint32_t node;
        uint64_t epoch; ///< stale after the node is re-killed
    };
    struct RepairResult
    {
        uint64_t streamed = 0;
        unsigned shards = 0;
        uint64_t digests = 0;
    };

    bool assignedTo(uint64_t key, uint32_t node_id) const;
    Tick serviceDraw();
    Tick backoff(unsigned attempt);
    void recordLatency(uint64_t key, Tick latency);
    void recordCapacity();
    void processEvent(Tick when, const Event &event);
    void trafficUntil(Tick t, double put_fraction);
    void oneRequest(double put_fraction);
    bool applyWrite(uint64_t key, uint64_t value, bool is_erase);
    RepairResult repairNode(FleetNode &node);
    Tick modeledBootAndRestore() const;
    Tick modeledStaleFetch(unsigned concurrent) const;

    FleetConfig config_;
    unsigned effectiveR_ = 1;
    unsigned writeQuorum_ = 1;
    Rng rng_;

    std::vector<std::unique_ptr<FleetNode>> nodes_;
    RendezvousHash ring_;

    /** Acked state — what the modelled backend log vouches for. */
    std::map<uint64_t, uint64_t> model_;

    /** Every key an acked write or erase ever touched. */
    std::set<uint64_t> touched_;

    Tick now_ = 0;
    std::multimap<Tick, Event> agenda_;
    std::vector<uint64_t> epoch_;

    /** Active-storm bookkeeping (concurrency, completion). */
    struct StormState
    {
        bool active = false;
        Tick start = 0;
        Tick powerRestored = 0;
        unsigned victims = 0;
        unsigned remaining = 0;
        Tick lastReady = 0;
        unsigned wspRecoveries = 0;
        unsigned salvageBoots = 0;
        unsigned backendRefills = 0;
        uint64_t digests = 0;
        uint64_t streamed = 0;
        unsigned shardsRepaired = 0;
    } storm_;

    RequestStats stats_;
    std::vector<Histogram> latency_;
    Series capacity_;
    uint64_t opCounter_ = 0;
};

} // namespace wsp::fleet
