/**
 * @file
 * One node of the replicated fleet: a real WspSystem + sharded KV
 * store, a lifecycle FSM, and mid-save kill / chassis-swap reboot
 * machinery.
 *
 * The fleet runs two planes over each node:
 *
 *  - The *correctness plane* is fully simulated: a crashsim-sized
 *    WspSystem (2 x 4 MiB NVDIMMs, exact residual windows) holds a
 *    real ShardedKvStore behind the write-back cache. A kill is a
 *    genuine AC failure mid-save; the flash image is captured, the
 *    DIMMs are socketed into a fresh chassis, and the boot path
 *    decides whole resume / salvage / cold boot exactly as the
 *    single-machine crash harness does. Replica agreement is checked
 *    against these real surviving bytes.
 *
 *  - The *capacity plane* is modelled: each node stands for a server
 *    with FleetConfig::memoryPerServer bytes, and recovery durations
 *    on the fleet timeline come from the same formulas as the
 *    analytic apps::correlatedOutage model, so the differential test
 *    can hold the two against each other.
 *
 * Lifecycle FSM (driven by the Fleet):
 *
 *   Up -> Saving -> Dark -> Restoring -> CatchingUp -> Up
 *                                     \-> DegradedReadOnly -> Up
 *
 * A node is *live* (receives replication writes) in Up, CatchingUp,
 * and DegradedReadOnly; it serves client reads in Up and — under the
 * degraded-tier policy — DegradedReadOnly; only Up replicas count
 * toward write quorums and act as anti-entropy sources.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "apps/kv_store.h"
#include "core/system.h"
#include "nvram/nvram_image.h"

namespace wsp::fleet {

/** Lifecycle states of a fleet node. */
enum class NodeState : uint8_t
{
    Up = 0,           ///< serving reads and writes, quorum member
    Saving,           ///< flush-on-fail running on residual energy
    Dark,             ///< power out; DIMMs hold the image
    Restoring,        ///< booting (WSP restore or backend refill)
    CatchingUp,       ///< live but syncing; no client traffic yet
    DegradedReadOnly, ///< stale tier: serves reads, awaits repair
    Decommissioned,   ///< permanent loss; keys rebalanced away
};

/** Human-readable state name. */
const char *nodeStateName(NodeState state);

/** How a killed node comes back (paper section 6 replica tradeoff). */
enum class RecoveryPolicy : uint8_t
{
    WspLocal = 0,     ///< restore from local NVDIMMs, then catch up
    BackendRefill = 1, ///< discard NVRAM, re-instantiate from backend
    DegradedTier = 2, ///< WSP restore, serve stale reads until repair
};

/** Human-readable policy name. */
const char *recoveryPolicyName(RecoveryPolicy policy);

/** Construction parameters of one node. */
struct FleetNodeConfig
{
    uint32_t id = 0;
    uint64_t seed = 0;
    unsigned shards = 8;             ///< power of two
    uint64_t perShardCapacity = 256; ///< slots per shard
    Tick killWindow = fromMillis(33.0);
    bool salvage = true; ///< register shards as tiered salvage regions
};

/** One replicated-fleet node. */
class FleetNode
{
  public:
    explicit FleetNode(FleetNodeConfig config);
    ~FleetNode();

    uint32_t id() const { return config_.id; }
    NodeState state() const { return state_; }
    void setState(NodeState state) { state_ = state; }

    /** Live nodes receive replication writes. */
    bool live() const
    {
        return state_ == NodeState::Up || state_ == NodeState::CatchingUp ||
               state_ == NodeState::DegradedReadOnly;
    }

    /** Only Up nodes count toward quorums / source anti-entropy. */
    bool up() const { return state_ == NodeState::Up; }

    unsigned shards() const { return config_.shards; }

    /** The shard index of @p key (pure function; aligned fleet-wide). */
    unsigned shardOf(uint64_t key) const;

    /**
     * Cold-start the node: fresh chassis, fresh (empty) store,
     * salvage regions registered. State becomes Up.
     */
    void bootFresh();

    /**
     * Kill the node mid-save: recalibrate the PSU to an exact
     * @p window residual window, fail the AC input, let any module
     * still saving conclude on its ultracapacitor, and pull the
     * DIMMs. The captured image is kept for the next reboot; the
     * chassis is gone. State becomes Dark.
     */
    void crash(Tick window);

    /**
     * Per-shard refill source, supplied by the fleet: the acked
     * (key, value) pairs this node must hold for shard @p shard —
     * what a real node would fetch from the backend's checkpoint+log.
     */
    using ShardSource =
        std::function<std::vector<std::pair<uint64_t, uint64_t>>(
            unsigned shard)>;
    void setRefillSource(ShardSource source)
    {
        refill_ = std::move(source);
    }

    /**
     * Socket the captured DIMMs into a fresh chassis and run the full
     * boot path. Backend recovery (image unusable) and per-region
     * salvage recovery both rebuild from the refill source. Returns
     * the restore report; the caller moves the FSM onward.
     */
    RestoreReport reboot();

    /**
     * Boot a fresh chassis with *blank* DIMMs and rebuild everything
     * from the refill source — the re-instantiation arm of the
     * paper's replica tradeoff (BackendRefill policy discards the
     * NVRAM image on purpose).
     */
    void rebootColdRefill();

    /** Tear the node down for good (permanent loss). */
    void decommission();

    /** True while a chassis is powered and the store is attached. */
    bool serving() const { return system_ != nullptr && store_.has_value(); }

    // Store operations (valid only while serving()) ------------------

    bool put(uint64_t key, uint64_t value);
    bool erase(uint64_t key);
    bool get(uint64_t key, uint64_t *value_out = nullptr) const;

    /**
     * Order-independent digest of shard @p shard restricted to keys
     * @p owned accepts — the anti-entropy exchange unit. Two nodes
     * digesting the same logical key subset agree iff their surviving
     * contents agree.
     */
    uint64_t shardDigest(unsigned shard,
                         const std::function<bool(uint64_t)> &owned) const;

    /** Collect shard @p shard's pairs whose key @p owned accepts. */
    std::vector<std::pair<uint64_t, uint64_t>>
    collectShard(unsigned shard,
                 const std::function<bool(uint64_t)> &owned) const;

    /** The last boot's restore report (meaningful after reboot()). */
    const RestoreReport &lastRestore() const { return lastRestore_; }

    /** Lifetime counters for the fleet's recovery bookkeeping. */
    unsigned wspRecoveries() const { return wspRecoveries_; }
    unsigned salvageBoots() const { return salvageBoots_; }
    unsigned backendRefills() const { return backendRefills_; }

  private:
    SystemConfig systemConfig() const;
    void registerRegions();
    void createStore();
    void attachOrRefill(bool force_refill);
    void rebuildShard(unsigned shard);

    FleetNodeConfig config_;
    NodeState state_ = NodeState::Dark;
    std::unique_ptr<WspSystem> system_;
    std::optional<apps::ShardedKvStore> store_;
    NvramImage image_;
    bool imageValid_ = false;
    ShardSource refill_;
    RestoreReport lastRestore_;
    unsigned wspRecoveries_ = 0;
    unsigned salvageBoots_ = 0;
    unsigned backendRefills_ = 0;
};

} // namespace wsp::fleet
