/**
 * @file
 * Processor register context.
 *
 * The WSP save routine captures every processor's architectural
 * context to memory before flushing caches (paper Fig. 4, step 2-3).
 * CpuContext models the x86-64 state that must survive: general
 * purpose registers, instruction/stack pointers, flags, control
 * registers, and the segment bases the OS relies on. It serializes to
 * a fixed-size byte image so the resume block can hold one image per
 * processor at a well-known NVRAM location.
 */

#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "util/rng.h"

namespace wsp {

/** Architectural register state of one logical processor. */
struct CpuContext
{
    static constexpr size_t kGprCount = 16;

    std::array<uint64_t, kGprCount> gpr{}; ///< rax..r15
    uint64_t rip = 0;
    uint64_t rflags = 0x2; ///< reserved bit 1 always set
    uint64_t cr0 = 0;
    uint64_t cr3 = 0;
    uint64_t cr4 = 0;
    uint64_t fsBase = 0;
    uint64_t gsBase = 0;
    uint64_t apicId = 0;

    /** Bytes in the serialized image. */
    static constexpr size_t
    serializedSize()
    {
        return (kGprCount + 8) * sizeof(uint64_t);
    }

    /** Serialize to a little-endian byte image of serializedSize(). */
    void serialize(std::span<uint8_t> out) const;

    /** Rebuild from a byte image produced by serialize(). */
    static CpuContext deserialize(std::span<const uint8_t> in);

    /** Fill with pseudo-random values (test/bench state generator). */
    void randomize(Rng &rng);

    bool operator==(const CpuContext &other) const = default;
};

} // namespace wsp
