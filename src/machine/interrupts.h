/**
 * @file
 * Interrupt delivery between processors.
 *
 * The save routine's control processor sends an inter-processor
 * interrupt (IPI) to every other processor so they save their own
 * context and flush their caches in parallel (paper section 4). Only
 * the delivery latency matters to the save budget; handlers run as
 * event-queue callbacks.
 */

#pragma once

#include <functional>

#include "sim/sim_object.h"
#include "trace/stat_registry.h"
#include "trace/trace.h"
#include "util/units.h"

namespace wsp {

/** APIC-style interrupt fabric with a fixed delivery latency. */
class InterruptController : public SimObject
{
  public:
    using Handler = std::function<void(unsigned cpu)>;

    InterruptController(EventQueue &queue, Tick ipi_latency)
        : SimObject(queue, "interrupt-controller"),
          ipiLatency_(ipi_latency)
    {}

    Tick ipiLatency() const { return ipiLatency_; }

    /** Deliver an IPI to @p cpu after the fabric latency. */
    void
    sendIpi(unsigned cpu, Handler handler)
    {
        ++ipisSent_;
        trace::StatRegistry::instance()
            .counter("machine.ipis_sent").add();
        TRACE_INSTANT(Machine, "IPI");
        queue_.scheduleAfter(ipiLatency_,
                             [cpu, handler = std::move(handler)] {
            handler(cpu);
        });
    }

    /**
     * Deliver an external (device/serial line) interrupt to @p cpu
     * immediately; the source models its own wire latency.
     */
    void
    raiseExternal(unsigned cpu, Handler handler)
    {
        ++externalRaised_;
        queue_.scheduleAfter(0, [cpu, handler = std::move(handler)] {
            handler(cpu);
        });
    }

    uint64_t ipisSent() const { return ipisSent_; }
    uint64_t externalRaised() const { return externalRaised_; }

  private:
    Tick ipiLatency_;
    uint64_t ipisSent_ = 0;
    uint64_t externalRaised_ = 0;
};

} // namespace wsp
