#include "machine/cpu_context.h"

#include "util/logging.h"

namespace wsp {

namespace {

void
putU64(std::span<uint8_t> out, size_t &pos, uint64_t value)
{
    for (int i = 0; i < 8; ++i) {
        out[pos++] = static_cast<uint8_t>(value & 0xff);
        value >>= 8;
    }
}

uint64_t
getU64(std::span<const uint8_t> in, size_t &pos)
{
    uint64_t value = 0;
    for (int i = 7; i >= 0; --i)
        value = (value << 8) | in[pos + static_cast<size_t>(i)];
    pos += 8;
    return value;
}

} // namespace

void
CpuContext::serialize(std::span<uint8_t> out) const
{
    WSP_CHECK(out.size() >= serializedSize());
    size_t pos = 0;
    for (uint64_t reg : gpr)
        putU64(out, pos, reg);
    putU64(out, pos, rip);
    putU64(out, pos, rflags);
    putU64(out, pos, cr0);
    putU64(out, pos, cr3);
    putU64(out, pos, cr4);
    putU64(out, pos, fsBase);
    putU64(out, pos, gsBase);
    putU64(out, pos, apicId);
}

CpuContext
CpuContext::deserialize(std::span<const uint8_t> in)
{
    WSP_CHECK(in.size() >= serializedSize());
    CpuContext ctx;
    size_t pos = 0;
    for (auto &reg : ctx.gpr)
        reg = getU64(in, pos);
    ctx.rip = getU64(in, pos);
    ctx.rflags = getU64(in, pos);
    ctx.cr0 = getU64(in, pos);
    ctx.cr3 = getU64(in, pos);
    ctx.cr4 = getU64(in, pos);
    ctx.fsBase = getU64(in, pos);
    ctx.gsBase = getU64(in, pos);
    ctx.apicId = getU64(in, pos);
    return ctx;
}

void
CpuContext::randomize(Rng &rng)
{
    for (auto &reg : gpr)
        reg = rng();
    rip = rng();
    rflags = (rng() & 0xcd5) | 0x2; // plausible flag bits only
    cr0 = rng();
    cr3 = rng() & ~0xfffull; // page-aligned
    cr4 = rng();
    fsBase = rng();
    gsBase = rng();
    // apicId is identity, not random: leave it to the owner.
}

} // namespace wsp
