#include "machine/cache.h"

#include <algorithm>
#include <cstring>

#include "trace/stat_registry.h"
#include "trace/trace.h"
#include "util/logging.h"

namespace wsp {

CacheModel::CacheModel(std::string name, uint64_t capacity_bytes,
                       CacheTiming timing, NvramSpace &memory,
                       LineStore store)
    : name_(std::move(name)), capacity_(capacity_bytes), timing_(timing),
      memory_(memory), store_(store)
{
    WSP_CHECK(capacity_ >= kLineSize);
    WSP_CHECK(capacity_ % kLineSize == 0);
    WSP_CHECK(timing_.memoryBwBytesPerSec > 0.0);
    if (store_ == LineStore::Flat) {
        flatTable_.assign(256, FlatProbe{});
        flatDirHeads_.assign(flatDirWays_, kNoSlot);
        flatDirCounts_.assign(flatDirWays_, 0);
    } else {
        directory_.resize(directoryWays_);
    }
}

// Flat store -----------------------------------------------------------

void
CacheModel::flatTableInsert(uint64_t base, uint32_t slot)
{
    const size_t mask = flatTable_.size() - 1;
    size_t index = flatHash(base, mask);
    while (flatTable_[index].slot != kNoSlot)
        index = (index + 1) & mask;
    flatTable_[index] = FlatProbe{base, slot};
    if (base - regionBase_ < regionSpan_)
        regionSlots_[(base - regionBase_) >> 6] = slot;
}

void
CacheModel::flatTableErase(uint64_t base)
{
    if (base - regionBase_ < regionSpan_)
        regionSlots_[(base - regionBase_) >> 6] = kNoSlot;
    const size_t mask = flatTable_.size() - 1;
    size_t index = flatHash(base, mask);
    while (flatTable_[index].base != base ||
           flatTable_[index].slot == kNoSlot) {
        WSP_CHECK(flatTable_[index].slot != kNoSlot);
        index = (index + 1) & mask;
    }
    // Backshift deletion keeps every probe chain gapless, so lookups
    // never need tombstone checks: pull forward any entry whose home
    // position reaches the hole.
    size_t hole = index;
    size_t probe = hole;
    for (;;) {
        probe = (probe + 1) & mask;
        const FlatProbe &candidate = flatTable_[probe];
        if (candidate.slot == kNoSlot)
            break;
        const size_t home = flatHash(candidate.base, mask);
        if (((probe - home) & mask) >= ((probe - hole) & mask)) {
            flatTable_[hole] = candidate;
            hole = probe;
        }
    }
    flatTable_[hole] = FlatProbe{};
}

void
CacheModel::flatTableGrow()
{
    std::vector<FlatProbe> old = std::move(flatTable_);
    flatTable_.assign(old.size() * 2, FlatProbe{});
    for (const FlatProbe &probe : old) {
        if (probe.slot != kNoSlot)
            flatTableInsert(probe.base, probe.slot);
    }
}

uint32_t
CacheModel::flatAcquire(uint64_t base)
{
    if (dirtyBytes() >= capacity_) {
        // Evict the least recently written line first.
        WSP_CHECK(lruTail_ != kNoSlot);
        flatWriteBack(lruTail_);
    }
    // Keep the table under 0.7 load so probe chains stay short.
    if ((flatLive_ + 1) * 10 > flatTable_.size() * 7)
        flatTableGrow();

    uint32_t slot;
    if (flatFree_ != kNoSlot) {
        slot = flatFree_;
        flatFree_ = flatLines_[slot].lruNext;
    } else {
        slot = static_cast<uint32_t>(flatLines_.size());
        flatLines_.emplace_back();
    }
    FlatLine &line = flatLines_[slot];
    line.base = base;
    // A new dirty line starts from the memory image (partial-line
    // writes must preserve the other bytes).
    memory_.read(base, std::span<uint8_t>(line.data, kLineSize));
    // Link at the LRU head: most recently written.
    line.lruPrev = kNoSlot;
    line.lruNext = lruHead_;
    if (lruHead_ != kNoSlot)
        flatLines_[lruHead_].lruPrev = slot;
    lruHead_ = slot;
    if (lruTail_ == kNoSlot)
        lruTail_ = slot;
    flatDirInsert(slot);
    flatTableInsert(base, slot);
    ++flatLive_;
    return slot;
}

void
CacheModel::flatWriteBack(uint32_t slot)
{
    FlatLine &line = flatLines_[slot];
    const uint64_t base = line.base;
    memory_.write(base, std::span<const uint8_t>(line.data, kLineSize));
    // Unlink from the LRU order.
    if (line.lruPrev != kNoSlot)
        flatLines_[line.lruPrev].lruNext = line.lruNext;
    else
        lruHead_ = line.lruNext;
    if (line.lruNext != kNoSlot)
        flatLines_[line.lruNext].lruPrev = line.lruPrev;
    else
        lruTail_ = line.lruPrev;
    flatDirErase(slot);
    flatTableErase(base);
    // Recycle through the free chain (threaded via lruNext).
    line.lruNext = flatFree_;
    flatFree_ = slot;
    --flatLive_;
    if (writebackObserver_)
        writebackObserver_(base, /*lost=*/false);
}

void
CacheModel::registerRegionView(uint64_t base, uint64_t bytes)
{
    if (store_ != LineStore::Flat)
        return; // reference store keeps its map; view stays disabled
    regionBase_ = base & ~(kLineSize - 1);
    regionSpan_ = (base - regionBase_ + bytes + kLineSize - 1) &
                  ~(kLineSize - 1);
    regionSlots_.assign(regionSpan_ / kLineSize, kNoSlot);
    // Adopt lines already dirty inside the region (the LRU chain
    // enumerates every live slot).
    for (uint32_t slot = lruHead_; slot != kNoSlot;
         slot = flatLines_[slot].lruNext) {
        const uint64_t line = flatLines_[slot].base;
        if (line - regionBase_ < regionSpan_)
            regionSlots_[(line - regionBase_) >> 6] = slot;
    }
}

void
CacheModel::ensureFlatDirectory(unsigned workers) const
{
    WSP_CHECK(workers >= 1);
    if (workers == flatDirWays_)
        return;
    // One O(dirty) re-bucketing per way-count change, as in the
    // reference store; the LRU chain enumerates every live slot.
    flatDirWays_ = workers;
    flatDirHeads_.assign(workers, kNoSlot);
    flatDirCounts_.assign(workers, 0);
    for (uint32_t slot = lruHead_; slot != kNoSlot;
         slot = flatLines_[slot].lruNext)
        flatDirInsert(slot);
}

void
CacheModel::flatDirInsert(uint32_t slot) const
{
    FlatLine &line = flatLines_[slot];
    const unsigned w = workerOf(line.base, flatDirWays_);
    line.dirPrev = kNoSlot;
    line.dirNext = flatDirHeads_[w];
    if (line.dirNext != kNoSlot)
        flatLines_[line.dirNext].dirPrev = slot;
    flatDirHeads_[w] = slot;
    ++flatDirCounts_[w];
}

void
CacheModel::flatDirErase(uint32_t slot) const
{
    FlatLine &line = flatLines_[slot];
    const unsigned w = workerOf(line.base, flatDirWays_);
    if (line.dirPrev != kNoSlot)
        flatLines_[line.dirPrev].dirNext = line.dirNext;
    else
        flatDirHeads_[w] = line.dirNext;
    if (line.dirNext != kNoSlot)
        flatLines_[line.dirNext].dirPrev = line.dirPrev;
    --flatDirCounts_[w];
}

// Reference store ------------------------------------------------------

void
CacheModel::ensureDirectory(unsigned workers) const
{
    WSP_CHECK(workers >= 1);
    if (workers == directoryWays_)
        return;
    // One O(dirty) re-bucketing per way-count change; the flush paths
    // then query and drain their own bucket without scanning.
    directoryWays_ = workers;
    directory_.assign(workers, {});
    for (const auto &[base, line] : dirty_) {
        (void)line;
        directory_[workerOf(base, workers)].insert(base);
    }
}

void
CacheModel::directoryInsert(uint64_t base)
{
    directory_[workerOf(base, directoryWays_)].insert(base);
}

void
CacheModel::directoryErase(uint64_t base)
{
    directory_[workerOf(base, directoryWays_)].erase(base);
}

CacheModel::Line &
CacheModel::lineForWrite(uint64_t addr)
{
    const uint64_t base = lineBase(addr);
    auto it = dirty_.find(base);
    if (it != dirty_.end()) {
        // Refresh recency.
        lruOrder_.erase(it->second.lru);
        lruOrder_.push_front(base);
        it->second.lru = lruOrder_.begin();
        return it->second;
    }

    if (dirtyBytes() >= capacity_) {
        // Evict the least recently written line first.
        WSP_CHECK(!lruOrder_.empty());
        writeBack(lruOrder_.back());
    }

    Line line;
    line.data.resize(kLineSize);
    // A new dirty line starts from the memory image (partial-line
    // writes must preserve the other bytes).
    memory_.read(base, line.data);
    lruOrder_.push_front(base);
    line.lru = lruOrder_.begin();
    directoryInsert(base);
    return dirty_.emplace(base, std::move(line)).first->second;
}

void
CacheModel::writeBack(uint64_t line_addr)
{
    auto it = dirty_.find(line_addr);
    WSP_CHECK(it != dirty_.end());
    memory_.write(line_addr, it->second.data);
    lruOrder_.erase(it->second.lru);
    dirty_.erase(it);
    directoryErase(line_addr);
    if (writebackObserver_)
        writebackObserver_(line_addr, /*lost=*/false);
}

// Shared dispatch ------------------------------------------------------

void
CacheModel::read(uint64_t addr, std::span<uint8_t> out) const
{
    size_t done = 0;
    while (done < out.size()) {
        const uint64_t cur = addr + done;
        const uint64_t base = lineBase(cur);
        const uint64_t offset = cur - base;
        const size_t chunk = static_cast<size_t>(
            std::min<uint64_t>(kLineSize - offset, out.size() - done));
        if (store_ == LineStore::Flat) {
            const uint32_t slot = flatFind(base);
            if (slot != kNoSlot) {
                std::memcpy(out.data() + done,
                            flatLines_[slot].data + offset, chunk);
            } else {
                memory_.read(cur, out.subspan(done, chunk));
            }
        } else {
            auto it = dirty_.find(base);
            if (it != dirty_.end()) {
                std::memcpy(out.data() + done,
                            it->second.data.data() + offset, chunk);
            } else {
                memory_.read(cur, out.subspan(done, chunk));
            }
        }
        done += chunk;
    }
}

void
CacheModel::write(uint64_t addr, std::span<const uint8_t> data)
{
    size_t done = 0;
    while (done < data.size()) {
        const uint64_t cur = addr + done;
        const uint64_t base = lineBase(cur);
        const uint64_t offset = cur - base;
        const size_t chunk = static_cast<size_t>(
            std::min<uint64_t>(kLineSize - offset, data.size() - done));
        if (store_ == LineStore::Flat) {
            uint32_t slot = flatFind(base);
            if (slot != kNoSlot)
                touchLru(slot);
            else
                slot = flatAcquire(base);
            std::memcpy(flatLines_[slot].data + offset, data.data() + done,
                        chunk);
        } else {
            Line &line = lineForWrite(cur);
            std::memcpy(line.data.data() + offset, data.data() + done,
                        chunk);
        }
        done += chunk;
    }
}

uint64_t
CacheModel::readU64Slow(uint64_t addr) const
{
    uint8_t bytes[8];
    read(addr, bytes);
    uint64_t value = 0;
    for (int i = 7; i >= 0; --i)
        value = (value << 8) | bytes[i];
    return value;
}

void
CacheModel::writeU64Slow(uint64_t addr, uint64_t value)
{
    uint8_t bytes[8];
    for (auto &byte : bytes) {
        byte = static_cast<uint8_t>(value & 0xff);
        value >>= 8;
    }
    write(addr, bytes);
}

Tick
CacheModel::flushLine(uint64_t addr)
{
    const uint64_t base = lineBase(addr);
    if (store_ == LineStore::Flat) {
        const uint32_t slot = flatFind(base);
        if (slot != kNoSlot)
            flatWriteBack(slot);
    } else if (dirty_.count(base)) {
        writeBack(base);
    }
    return timing_.clflushPerLine;
}

Tick
CacheModel::clflushLoopCost(uint64_t lines) const
{
    return timing_.clflushPerLine * lines;
}

Tick
CacheModel::wbinvdCost() const
{
    // The microcode walk dominates; only a small fraction of the dirty
    // write-back traffic is exposed beyond it (hence Fig. 8's flat
    // curves).
    const double exposed = timing_.wbinvdDirtyExposure *
                           static_cast<double>(dirtyBytes()) /
                           timing_.memoryBwBytesPerSec;
    return timing_.wbinvdFixed + fromSeconds(exposed);
}

Tick
CacheModel::wbinvd()
{
    const Tick cost = wbinvdCost();
    auto &registry = trace::StatRegistry::instance();
    registry.counter("machine.wbinvd_count").add();
    registry.counter("machine.wbinvd_dirty_bytes").add(dirtyBytes());
    TRACE_INSTANT(Machine, "wbinvd");
    // Write back everything, least recently written first; order is
    // irrelevant to the memory image but both stores keep it identical
    // so the write-back observer sees the same sequence.
    if (store_ == LineStore::Flat) {
        while (lruTail_ != kNoSlot)
            flatWriteBack(lruTail_);
    } else {
        while (!lruOrder_.empty())
            writeBack(lruOrder_.back());
    }
    return cost;
}

size_t
CacheModel::partitionDirtyLines(unsigned worker, unsigned workers) const
{
    WSP_CHECK(workers >= 1 && worker < workers);
    if (store_ == LineStore::Flat) {
        ensureFlatDirectory(workers);
        return flatDirCounts_[worker];
    }
    ensureDirectory(workers);
    return directory_[worker].size();
}

Tick
CacheModel::partitionFlushCost(unsigned worker, unsigned workers) const
{
    const auto lines =
        static_cast<uint64_t>(partitionDirtyLines(worker, workers));
    // The clflush issue walk and the write-back traffic overlap
    // poorly when every line is dirty, so both terms are charged.
    const double writeback = static_cast<double>(lines * kLineSize) /
                             timing_.memoryBwBytesPerSec;
    return timing_.partitionFlushFixed + timing_.clflushPerLine * lines +
           fromSeconds(writeback);
}

Tick
CacheModel::parallelFlushCost(unsigned workers) const
{
    Tick worst = 0;
    for (unsigned w = 0; w < workers; ++w)
        worst = std::max(worst, partitionFlushCost(w, workers));
    return worst;
}

void
CacheModel::flushPartition(unsigned worker, unsigned workers)
{
    WSP_CHECK(workers >= 1 && worker < workers);
    size_t flushed = 0;
    if (store_ == LineStore::Flat) {
        ensureFlatDirectory(workers);
        flushed = flatDirCounts_[worker];
        // flatWriteBack unlinks the head as it drains the bucket.
        while (flatDirHeads_[worker] != kNoSlot)
            flatWriteBack(flatDirHeads_[worker]);
    } else {
        ensureDirectory(workers);
        // Drain a copy: writeBack() erases from the bucket being walked.
        const std::vector<uint64_t> mine(directory_[worker].begin(),
                                         directory_[worker].end());
        for (uint64_t base : mine)
            writeBack(base);
        flushed = mine.size();
    }
    auto &registry = trace::StatRegistry::instance();
    registry.counter("machine.partition_flushes").add();
    registry.counter("machine.partition_flush_lines").add(flushed);
}

Tick
CacheModel::theoreticalBestCost() const
{
    return fromSeconds(static_cast<double>(capacity_) /
                       timing_.memoryBwBytesPerSec);
}

void
CacheModel::fillDirty(uint64_t base, uint64_t bytes, Rng &rng)
{
    WSP_CHECKF(bytes <= capacity_,
               "fillDirty %llu B exceeds cache capacity %llu B",
               static_cast<unsigned long long>(bytes),
               static_cast<unsigned long long>(capacity_));
    std::vector<uint8_t> pattern(kLineSize);
    for (uint64_t off = 0; off < bytes; off += kLineSize) {
        const size_t chunk = static_cast<size_t>(
            std::min<uint64_t>(kLineSize, bytes - off));
        for (size_t i = 0; i < chunk; ++i)
            pattern[i] = static_cast<uint8_t>(rng());
        write(base + off, std::span<const uint8_t>(pattern.data(), chunk));
    }
}

void
CacheModel::dropDirty()
{
    if (store_ == LineStore::Flat) {
        if (writebackObserver_) {
            for (uint32_t slot = lruHead_; slot != kNoSlot;
                 slot = flatLines_[slot].lruNext)
                writebackObserver_(flatLines_[slot].base, /*lost=*/true);
        }
        flatLines_.clear();
        flatTable_.assign(flatTable_.size(), FlatProbe{});
        flatFree_ = kNoSlot;
        flatLive_ = 0;
        lruHead_ = lruTail_ = kNoSlot;
        flatDirHeads_.assign(flatDirWays_, kNoSlot);
        flatDirCounts_.assign(flatDirWays_, 0);
        regionSlots_.assign(regionSlots_.size(), kNoSlot);
        return;
    }
    if (writebackObserver_) {
        for (const auto &[base, line] : dirty_) {
            (void)line;
            writebackObserver_(base, /*lost=*/true);
        }
    }
    dirty_.clear();
    lruOrder_.clear();
    for (auto &bucket : directory_)
        bucket.clear();
}

} // namespace wsp
