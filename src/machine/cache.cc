#include "machine/cache.h"

#include <algorithm>
#include <cstring>

#include "trace/stat_registry.h"
#include "trace/trace.h"
#include "util/logging.h"

namespace wsp {

CacheModel::CacheModel(std::string name, uint64_t capacity_bytes,
                       CacheTiming timing, NvramSpace &memory)
    : name_(std::move(name)), capacity_(capacity_bytes), timing_(timing),
      memory_(memory)
{
    WSP_CHECK(capacity_ >= kLineSize);
    WSP_CHECK(capacity_ % kLineSize == 0);
    WSP_CHECK(timing_.memoryBwBytesPerSec > 0.0);
    directory_.resize(directoryWays_);
}

void
CacheModel::ensureDirectory(unsigned workers) const
{
    WSP_CHECK(workers >= 1);
    if (workers == directoryWays_)
        return;
    // One O(dirty) re-bucketing per way-count change; the flush paths
    // then query and drain their own bucket without scanning.
    directoryWays_ = workers;
    directory_.assign(workers, {});
    for (const auto &[base, line] : dirty_) {
        (void)line;
        directory_[workerOf(base, workers)].insert(base);
    }
}

void
CacheModel::directoryInsert(uint64_t base)
{
    directory_[workerOf(base, directoryWays_)].insert(base);
}

void
CacheModel::directoryErase(uint64_t base)
{
    directory_[workerOf(base, directoryWays_)].erase(base);
}

void
CacheModel::read(uint64_t addr, std::span<uint8_t> out) const
{
    size_t done = 0;
    while (done < out.size()) {
        const uint64_t cur = addr + done;
        const uint64_t base = lineBase(cur);
        const uint64_t offset = cur - base;
        const size_t chunk = static_cast<size_t>(
            std::min<uint64_t>(kLineSize - offset, out.size() - done));
        auto it = dirty_.find(base);
        if (it != dirty_.end()) {
            std::memcpy(out.data() + done, it->second.data.data() + offset,
                        chunk);
        } else {
            memory_.read(cur, out.subspan(done, chunk));
        }
        done += chunk;
    }
}

CacheModel::Line &
CacheModel::lineForWrite(uint64_t addr)
{
    const uint64_t base = lineBase(addr);
    auto it = dirty_.find(base);
    if (it != dirty_.end()) {
        // Refresh recency.
        lruOrder_.erase(it->second.lru);
        lruOrder_.push_front(base);
        it->second.lru = lruOrder_.begin();
        return it->second;
    }

    if (dirtyBytes() >= capacity_) {
        // Evict the least recently written line first.
        WSP_CHECK(!lruOrder_.empty());
        writeBack(lruOrder_.back());
    }

    Line line;
    line.data.resize(kLineSize);
    // A new dirty line starts from the memory image (partial-line
    // writes must preserve the other bytes).
    memory_.read(base, line.data);
    lruOrder_.push_front(base);
    line.lru = lruOrder_.begin();
    directoryInsert(base);
    return dirty_.emplace(base, std::move(line)).first->second;
}

void
CacheModel::write(uint64_t addr, std::span<const uint8_t> data)
{
    size_t done = 0;
    while (done < data.size()) {
        const uint64_t cur = addr + done;
        const uint64_t base = lineBase(cur);
        const uint64_t offset = cur - base;
        const size_t chunk = static_cast<size_t>(
            std::min<uint64_t>(kLineSize - offset, data.size() - done));
        Line &line = lineForWrite(cur);
        std::memcpy(line.data.data() + offset, data.data() + done, chunk);
        done += chunk;
    }
}

uint64_t
CacheModel::readU64(uint64_t addr) const
{
    uint8_t bytes[8];
    read(addr, bytes);
    uint64_t value = 0;
    for (int i = 7; i >= 0; --i)
        value = (value << 8) | bytes[i];
    return value;
}

void
CacheModel::writeU64(uint64_t addr, uint64_t value)
{
    uint8_t bytes[8];
    for (auto &byte : bytes) {
        byte = static_cast<uint8_t>(value & 0xff);
        value >>= 8;
    }
    write(addr, bytes);
}

void
CacheModel::writeBack(uint64_t line_addr)
{
    auto it = dirty_.find(line_addr);
    WSP_CHECK(it != dirty_.end());
    memory_.write(line_addr, it->second.data);
    lruOrder_.erase(it->second.lru);
    dirty_.erase(it);
    directoryErase(line_addr);
    if (writebackObserver_)
        writebackObserver_(line_addr, /*lost=*/false);
}

Tick
CacheModel::flushLine(uint64_t addr)
{
    const uint64_t base = lineBase(addr);
    if (dirty_.count(base))
        writeBack(base);
    return timing_.clflushPerLine;
}

Tick
CacheModel::clflushLoopCost(uint64_t lines) const
{
    return timing_.clflushPerLine * lines;
}

Tick
CacheModel::wbinvdCost() const
{
    // The microcode walk dominates; only a small fraction of the dirty
    // write-back traffic is exposed beyond it (hence Fig. 8's flat
    // curves).
    const double exposed = timing_.wbinvdDirtyExposure *
                           static_cast<double>(dirtyBytes()) /
                           timing_.memoryBwBytesPerSec;
    return timing_.wbinvdFixed + fromSeconds(exposed);
}

Tick
CacheModel::wbinvd()
{
    const Tick cost = wbinvdCost();
    auto &registry = trace::StatRegistry::instance();
    registry.counter("machine.wbinvd_count").add();
    registry.counter("machine.wbinvd_dirty_bytes").add(dirtyBytes());
    TRACE_INSTANT(Machine, "wbinvd");
    // Write back everything; order is irrelevant to the memory image.
    while (!lruOrder_.empty())
        writeBack(lruOrder_.back());
    return cost;
}

size_t
CacheModel::partitionDirtyLines(unsigned worker, unsigned workers) const
{
    WSP_CHECK(workers >= 1 && worker < workers);
    ensureDirectory(workers);
    return directory_[worker].size();
}

Tick
CacheModel::partitionFlushCost(unsigned worker, unsigned workers) const
{
    const auto lines =
        static_cast<uint64_t>(partitionDirtyLines(worker, workers));
    // The clflush issue walk and the write-back traffic overlap
    // poorly when every line is dirty, so both terms are charged.
    const double writeback = static_cast<double>(lines * kLineSize) /
                             timing_.memoryBwBytesPerSec;
    return timing_.partitionFlushFixed + timing_.clflushPerLine * lines +
           fromSeconds(writeback);
}

Tick
CacheModel::parallelFlushCost(unsigned workers) const
{
    Tick worst = 0;
    for (unsigned w = 0; w < workers; ++w)
        worst = std::max(worst, partitionFlushCost(w, workers));
    return worst;
}

void
CacheModel::flushPartition(unsigned worker, unsigned workers)
{
    WSP_CHECK(workers >= 1 && worker < workers);
    ensureDirectory(workers);
    // Drain a copy: writeBack() erases from the bucket being walked.
    const std::vector<uint64_t> mine(directory_[worker].begin(),
                                     directory_[worker].end());
    for (uint64_t base : mine)
        writeBack(base);
    auto &registry = trace::StatRegistry::instance();
    registry.counter("machine.partition_flushes").add();
    registry.counter("machine.partition_flush_lines").add(mine.size());
}

Tick
CacheModel::theoreticalBestCost() const
{
    return fromSeconds(static_cast<double>(capacity_) /
                       timing_.memoryBwBytesPerSec);
}

void
CacheModel::fillDirty(uint64_t base, uint64_t bytes, Rng &rng)
{
    WSP_CHECKF(bytes <= capacity_,
               "fillDirty %llu B exceeds cache capacity %llu B",
               static_cast<unsigned long long>(bytes),
               static_cast<unsigned long long>(capacity_));
    std::vector<uint8_t> pattern(kLineSize);
    for (uint64_t off = 0; off < bytes; off += kLineSize) {
        const size_t chunk = static_cast<size_t>(
            std::min<uint64_t>(kLineSize, bytes - off));
        for (size_t i = 0; i < chunk; ++i)
            pattern[i] = static_cast<uint8_t>(rng());
        write(base + off, std::span<const uint8_t>(pattern.data(), chunk));
    }
}

void
CacheModel::dropDirty()
{
    if (writebackObserver_) {
        for (const auto &[base, line] : dirty_) {
            (void)line;
            writebackObserver_(base, /*lost=*/true);
        }
    }
    dirty_.clear();
    lruOrder_.clear();
    for (auto &bucket : directory_)
        bucket.clear();
}

} // namespace wsp
