/**
 * @file
 * Machine model: sockets, cores, caches, and platform presets.
 *
 * Assembles the hardware the WSP save/restore routines run on. The
 * four platform presets are the processors the paper measured in
 * Fig. 8 and Table 2; their cache sizes are the paper's, and their
 * flush timings are calibrated so the model reproduces the published
 * wbinvd / clflush / theoretical-best numbers.
 */

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "machine/cache.h"
#include "machine/cpu_context.h"
#include "machine/interrupts.h"
#include "nvram/nvram_space.h"
#include "power/load_model.h"
#include "sim/sim_object.h"

namespace wsp {

/** Static description of a platform (one paper testbed or CPU). */
struct PlatformSpec
{
    std::string name;
    unsigned sockets = 1;
    unsigned coresPerSocket = 4;
    unsigned threadsPerCore = 1;

    /** Largest cache per socket (the flush-dominating structure). */
    uint64_t cachePerSocket = 8 * kMiB;

    CacheTiming cacheTiming;

    /** Per-processor context save cost (registers to memory). */
    Tick contextSaveLatency = fromMicros(2.0);

    /** IPI fabric latency. */
    Tick ipiLatency = fromMicros(1.0);

    /** Wall power of the platform per load class. */
    SystemLoad load;

    unsigned
    logicalCpus() const
    {
        return sockets * coresPerSocket * threadsPerCore;
    }

    unsigned
    logicalCpusPerSocket() const
    {
        return coresPerSocket * threadsPerCore;
    }
};

/** 2-socket Intel C5528 "Nehalem" testbed: 8 MB L3 per socket. */
PlatformSpec platformIntelC5528();

/** Intel X5650 "Westmere" Xeon: 12 MB L3. */
PlatformSpec platformIntelX5650();

/** AMD 4180 "Opteron" testbed: 6 MB L3. */
PlatformSpec platformAmd4180();

/** Intel D510 "Atom": 1 MB L2. */
PlatformSpec platformIntelD510();

/** All four presets, in the paper's Fig. 8 order. */
std::vector<PlatformSpec> allPlatforms();

/** One logical processor. */
struct CoreModel
{
    unsigned id = 0;
    unsigned socket = 0;
    CpuContext context;
    bool halted = false;
};

/**
 * The assembled machine: cores, one modelled cache per socket, an
 * interrupt fabric, all backed by one NvramSpace.
 */
class MachineModel : public SimObject
{
  public:
    MachineModel(EventQueue &queue, PlatformSpec spec, NvramSpace &memory);

    const PlatformSpec &spec() const { return spec_; }
    NvramSpace &memory() { return memory_; }
    InterruptController &interrupts() { return interrupts_; }

    unsigned coreCount() const { return static_cast<unsigned>(cores_.size()); }
    CoreModel &core(unsigned i) { return cores_.at(i); }
    const CoreModel &core(unsigned i) const { return cores_.at(i); }

    unsigned socketCount() const { return spec_.sockets; }
    CacheModel &socketCache(unsigned socket) { return *caches_.at(socket); }

    /** The cache serving core @p i (its socket's cache). */
    CacheModel &cacheOfCore(unsigned i);

    /** Total dirty bytes across all socket caches. */
    uint64_t totalDirtyBytes() const;

    /** Sum of socket cache capacities. */
    uint64_t totalCacheBytes() const;

    /** Give every core a distinct pseudo-random context. */
    void randomizeContexts(Rng &rng);

    /** Dirty @p bytes_per_socket in every socket cache. */
    void fillCachesDirty(uint64_t bytes_per_socket, Rng &rng);

    /** Halt every core (end of the save routine). */
    void haltAll();

    /** True when every core is halted. */
    bool allHalted() const;

    /**
     * Model the instant system power dies: running cores lose their
     * registers, caches lose dirty lines that were never written
     * back. This is exactly the state flush-on-fail races to save.
     */
    void onPowerLost();

    /** Clear halted flags and contexts for a fresh boot. */
    void resetForBoot();

    /** False between onPowerLost() and resetForBoot(). */
    bool powerOn() const { return powerOn_; }

  private:
    bool powerOn_ = true;
    PlatformSpec spec_;
    NvramSpace &memory_;
    InterruptController interrupts_;
    std::vector<CoreModel> cores_;
    std::vector<std::unique_ptr<CacheModel>> caches_;
};

} // namespace wsp
