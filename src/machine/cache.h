/**
 * @file
 * Write-back cache model with flush timing.
 *
 * WSP's flush-on-fail spends most of its budget writing dirty cache
 * lines to NVRAM (paper section 5.3). The model is functional —
 * writes land in the cache and reach NVRAM only on write-back — so
 * the crash-consistency tests can observe exactly which updates
 * survive a failure, and it carries the two flush timing models the
 * paper measured (Table 2, Fig. 8):
 *
 *  - wbinvd: microcode walks the whole cache regardless of how much
 *    is dirty, so the cost is nearly flat in dirty bytes and is
 *    calibrated per platform from Table 2;
 *  - clflush: one instruction per line, cheaper when few lines are
 *    dirty but needs software to know where they are, which is not
 *    practical (the paper's observation) — we model flushing a given
 *    line count for the ablation study;
 *  - theoretical best: cache size over memory bandwidth.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "nvram/nvram_space.h"
#include "util/rng.h"
#include "util/units.h"

namespace wsp {

/** Timing calibration for a platform's cache flush behaviour. */
struct CacheTiming
{
    /** Fixed wbinvd walk cost with nothing dirty. */
    Tick wbinvdFixed = fromMillis(1.0);

    /** Memory bandwidth the write-back path can sustain. */
    double memoryBwBytesPerSec = 10.0 * 1024 * 1024 * 1024;

    /**
     * Fraction of the dirty write-back that is not hidden behind the
     * wbinvd walk (the walk overlaps most of the traffic, which is
     * why the paper sees little dependence on dirty bytes).
     */
    double wbinvdDirtyExposure = 0.08;

    /** Per-line cost of a clflush loop (issue + walk). */
    Tick clflushPerLine = 9;

    /**
     * Per-worker setup cost of the partitioned parallel flush: each
     * flush worker reads its partition descriptor and arms its local
     * line walk before the first clflush retires.
     */
    Tick partitionFlushFixed = fromMicros(3.0);
};

/**
 * One write-back cache (modelled at the largest-cache level) backed
 * by an NvramSpace.
 *
 * Only dirty lines are held; reads hit the dirty line if present and
 * fall through to NVRAM otherwise. When the dirty footprint exceeds
 * the capacity, the least-recently written line is evicted (written
 * back), as a real cache would.
 */
class CacheModel
{
  public:
    static constexpr uint64_t kLineSize = 64;

    CacheModel(std::string name, uint64_t capacity_bytes,
               CacheTiming timing, NvramSpace &memory);

    const std::string &name() const { return name_; }
    uint64_t capacity() const { return capacity_; }
    const CacheTiming &timing() const { return timing_; }

    /** Bytes currently dirty (lines * line size). */
    uint64_t dirtyBytes() const { return dirty_.size() * kLineSize; }

    /** Number of dirty lines. */
    size_t dirtyLines() const { return dirty_.size(); }

    /** Cached read: dirty lines shadow NVRAM content. */
    void read(uint64_t addr, std::span<uint8_t> out) const;

    /** Cached write: dirties lines; NVRAM is not yet updated. */
    void write(uint64_t addr, std::span<const uint8_t> data);

    /** Read one little-endian u64 through the cache. */
    uint64_t readU64(uint64_t addr) const;

    /** Write one little-endian u64 through the cache. */
    void writeU64(uint64_t addr, uint64_t value);

    /**
     * Write back and drop the line containing @p addr (clflush).
     * @return the modelled cost of the instruction.
     */
    Tick flushLine(uint64_t addr);

    /**
     * Write back and invalidate the whole cache (wbinvd).
     * @return the modelled cost, nearly flat in dirty bytes.
     */
    Tick wbinvd();

    /**
     * Modelled cost of a software clflush loop over @p lines lines
     * (whether or not they are dirty), without executing it.
     */
    Tick clflushLoopCost(uint64_t lines) const;

    /** Modelled wbinvd cost without executing it. */
    Tick wbinvdCost() const;

    /** Lower bound: cache size over memory bandwidth (Table 2). */
    Tick theoreticalBestCost() const;

    // Partitioned parallel flush ---------------------------------------
    //
    // The save routine's parallel path splits the dirty lines of one
    // socket cache across that socket's cores: line L belongs to
    // worker (L / kLineSize) mod workers, a stable assignment that
    // needs no coordination. Each core clflushes only its own
    // partition, so the step costs the *slowest worker*, not the sum
    // — the paper's observation that flush-on-fail is embarrassingly
    // parallel. The model keeps that per-core dirty-line directory
    // for real: lines are bucketed by worker as they dirty, so
    // partitionDirtyLines is O(1), flushPartition walks only its own
    // lines, and parallelFlushCost(W) costs O(W) instead of W full
    // scans of the dirty map. (wbinvd needs no directory but cannot
    // be split.) The directory re-buckets itself — one O(dirty) pass
    // — when queried with a different worker count.

    /** Dirty lines assigned to @p worker of @p workers. */
    size_t partitionDirtyLines(unsigned worker, unsigned workers) const;

    /**
     * Modelled cost of @p worker's partition flush: fixed setup plus
     * a clflush walk over its dirty lines plus its share of the
     * write-back traffic.
     */
    Tick partitionFlushCost(unsigned worker, unsigned workers) const;

    /** Cost of the whole parallel flush: the slowest worker. */
    Tick parallelFlushCost(unsigned workers) const;

    /**
     * Write back and drop every dirty line of @p worker's partition
     * (the functional effect of that core's flush completing).
     */
    void flushPartition(unsigned worker, unsigned workers);

    /**
     * Dirty @p bytes of cache by writing a pseudo-random pattern to
     * consecutive lines starting at @p base (bench/test helper).
     */
    void fillDirty(uint64_t base, uint64_t bytes, Rng &rng);

    /**
     * Model the loss of cache contents without write-back (the
     * failure case flush-on-fail exists to prevent): dirty lines are
     * simply dropped.
     */
    void dropDirty();

    /**
     * Observe every line leaving the cache: called with
     * (line base, lost=false) when a line is written back to NVRAM
     * (eviction, clflush, wbinvd, partition flush) and
     * (line base, lost=true) per dirty line dropped without
     * write-back. Feeds FliT-style flush tracking (util/flit.h).
     */
    void setWritebackObserver(
        std::function<void(uint64_t line_base, bool lost)> observer)
    {
        writebackObserver_ = std::move(observer);
    }

  private:
    struct Line
    {
        std::vector<uint8_t> data;
        std::list<uint64_t>::iterator lru;
    };

    uint64_t lineBase(uint64_t addr) const { return addr & ~(kLineSize - 1); }

    /** Get or create the dirty line for @p addr's line. */
    Line &lineForWrite(uint64_t addr);

    /** Write one line back to NVRAM and forget it. */
    void writeBack(uint64_t line_addr);

    /** Worker a line belongs to under the stable assignment. */
    unsigned workerOf(uint64_t base, unsigned workers) const
    {
        return static_cast<unsigned>((base / kLineSize) % workers);
    }

    /** Re-bucket the directory for @p workers ways if needed. */
    void ensureDirectory(unsigned workers) const;

    void directoryInsert(uint64_t base);
    void directoryErase(uint64_t base);

    std::string name_;
    uint64_t capacity_;
    CacheTiming timing_;
    NvramSpace &memory_;
    std::function<void(uint64_t, bool)> writebackObserver_;
    std::unordered_map<uint64_t, Line> dirty_;
    std::list<uint64_t> lruOrder_; ///< front = most recently written

    // Per-worker dirty-line directory, maintained incrementally as
    // lines dirty and write back. Mutable because the cost queries
    // are const but may trigger a re-bucketing for a new way count.
    mutable std::vector<std::unordered_set<uint64_t>> directory_;
    mutable unsigned directoryWays_ = 1;
};

} // namespace wsp
