/**
 * @file
 * Write-back cache model with flush timing.
 *
 * WSP's flush-on-fail spends most of its budget writing dirty cache
 * lines to NVRAM (paper section 5.3). The model is functional —
 * writes land in the cache and reach NVRAM only on write-back — so
 * the crash-consistency tests can observe exactly which updates
 * survive a failure, and it carries the two flush timing models the
 * paper measured (Table 2, Fig. 8):
 *
 *  - wbinvd: microcode walks the whole cache regardless of how much
 *    is dirty, so the cost is nearly flat in dirty bytes and is
 *    calibrated per platform from Table 2;
 *  - clflush: one instruction per line, cheaper when few lines are
 *    dirty but needs software to know where they are, which is not
 *    practical (the paper's observation) — we model flushing a given
 *    line count for the ablation study;
 *  - theoretical best: cache size over memory bandwidth.
 *
 * Line bookkeeping comes in two interchangeable implementations,
 * selected at construction:
 *
 *  - LineStore::Flat (default): the serving hot path. One flat
 *    open-addressing table maps line base -> slot in a growable slot
 *    array whose records carry the 64-byte payload inline plus
 *    intrusive links for the LRU order and the per-worker flush
 *    directory. After warm-up every access is allocation-free: a
 *    dirty-line hit is one multiplicative-hash probe and a memcpy,
 *    an LRU refresh relinks three slots in place, and write-back
 *    recycles the slot through a free list.
 *  - LineStore::Reference: the original std::unordered_map +
 *    std::list + std::unordered_set implementation, kept verbatim as
 *    the differential baseline (the map rehash, list-node churn and
 *    per-line vector made the allocator the serving-tier profile).
 *    bench/kv_throughput measures the pre-PR serving path against it;
 *    tests/machine_test.cc drives both stores through identical
 *    op sequences and requires identical observable behaviour.
 */

#pragma once

#include <cstdint>
#include <cstring>
#include <functional>
#include <list>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "nvram/nvram_space.h"
#include "util/rng.h"
#include "util/units.h"

namespace wsp {

/** Timing calibration for a platform's cache flush behaviour. */
struct CacheTiming
{
    /** Fixed wbinvd walk cost with nothing dirty. */
    Tick wbinvdFixed = fromMillis(1.0);

    /** Memory bandwidth the write-back path can sustain. */
    double memoryBwBytesPerSec = 10.0 * 1024 * 1024 * 1024;

    /**
     * Fraction of the dirty write-back that is not hidden behind the
     * wbinvd walk (the walk overlaps most of the traffic, which is
     * why the paper sees little dependence on dirty bytes).
     */
    double wbinvdDirtyExposure = 0.08;

    /** Per-line cost of a clflush loop (issue + walk). */
    Tick clflushPerLine = 9;

    /**
     * Per-worker setup cost of the partitioned parallel flush: each
     * flush worker reads its partition descriptor and arms its local
     * line walk before the first clflush retires.
     */
    Tick partitionFlushFixed = fromMicros(3.0);
};

/**
 * One write-back cache (modelled at the largest-cache level) backed
 * by an NvramSpace.
 *
 * Only dirty lines are held; reads hit the dirty line if present and
 * fall through to NVRAM otherwise. When the dirty footprint exceeds
 * the capacity, the least-recently written line is evicted (written
 * back), as a real cache would.
 */
class CacheModel
{
  public:
    static constexpr uint64_t kLineSize = 64;

    /** Which line bookkeeping implementation backs this cache. */
    enum class LineStore : uint8_t
    {
        Flat,      ///< open-addressing slots, allocation-free hot path
        Reference, ///< verbatim map/list/set baseline (for A/B + diff)
    };

    CacheModel(std::string name, uint64_t capacity_bytes,
               CacheTiming timing, NvramSpace &memory,
               LineStore store = LineStore::Flat);

    const std::string &name() const { return name_; }
    uint64_t capacity() const { return capacity_; }
    const CacheTiming &timing() const { return timing_; }
    LineStore lineStore() const { return store_; }

    /** Bytes currently dirty (lines * line size). */
    uint64_t dirtyBytes() const { return dirtyLines() * kLineSize; }

    /** Number of dirty lines. */
    size_t dirtyLines() const
    {
        return store_ == LineStore::Flat ? flatLive_ : dirty_.size();
    }

    /** Cached read: dirty lines shadow NVRAM content. */
    void read(uint64_t addr, std::span<uint8_t> out) const;

    /** Cached write: dirties lines; NVRAM is not yet updated. */
    void write(uint64_t addr, std::span<const uint8_t> data);

    /**
     * Read one little-endian u64 through the cache. The flat
     * dirty-hit case — the serving tier's per-op path — stays inline
     * so KvStore probes compile down to a hash probe and a memcpy.
     */
    uint64_t readU64(uint64_t addr) const
    {
        const uint64_t base = addr & ~(kLineSize - 1);
        if (addr - base <= kLineSize - 8) {
            const uint32_t slot = flatFind(base);
            if (slot != kNoSlot) {
                uint64_t value;
                std::memcpy(&value, flatLines_[slot].data + (addr - base),
                            8);
                return value;
            }
        }
        return readU64Slow(addr);
    }

    /** Write one little-endian u64 through the cache (see readU64). */
    void writeU64(uint64_t addr, uint64_t value)
    {
        const uint64_t base = addr & ~(kLineSize - 1);
        if (addr - base <= kLineSize - 8) {
            const uint32_t slot = flatFind(base);
            if (slot != kNoSlot) {
                touchLru(slot);
                std::memcpy(flatLines_[slot].data + (addr - base), &value,
                            8);
                return;
            }
        }
        writeU64Slow(addr, value);
    }

    // Line-granular access -----------------------------------------
    //
    // The serving tier's slot probes touch several words of the same
    // 64-byte line; paying one table probe per *word* doubles the
    // per-op cost. These return a direct pointer to a dirty line's
    // payload so a caller can batch its same-line accesses behind a
    // single probe. nullptr means the line is not dirty (or the
    // reference store is active) and the caller must fall back to
    // read()/writeU64(), which handle the NVRAM fall-through — so
    // code written against this API behaves identically on both
    // stores. Pointers are invalidated by the next line creation or
    // write-back (the slab may grow or recycle); hold one only
    // across accesses with no cache mutation in between.

    /** Dirty line payload for reading, or nullptr. No LRU effect,
     *  matching read()'s recency semantics. */
    const uint8_t *peekLine(uint64_t line_base) const
    {
        const uint32_t slot = flatFind(line_base);
        return slot != kNoSlot ? flatLines_[slot].data : nullptr;
    }

    /** Dirty line payload for writing, or nullptr. Refreshes the
     *  line's recency exactly as a writeU64 to it would. */
    uint8_t *touchLine(uint64_t line_base)
    {
        const uint32_t slot = flatFind(line_base);
        if (slot == kNoSlot)
            return nullptr;
        touchLru(slot);
        return flatLines_[slot].data;
    }

    /**
     * A resolved dirty line: payload pointer plus the slab slot, so
     * a caller that probed a line for reading can later mark it
     * written without paying the table probe again. Same lifetime
     * rule as the raw pointers above.
     */
    struct LineRef
    {
        uint8_t *data = nullptr;
        uint32_t slot = 0;

        explicit operator bool() const { return data != nullptr; }
    };

    /** Resolve a dirty line without touching recency (null if not
     *  dirty, or under the reference store). */
    LineRef findLineMut(uint64_t line_base)
    {
        const uint32_t slot = flatFind(line_base);
        if (slot == kNoSlot)
            return {};
        return {flatLines_[slot].data, slot};
    }

    /** Refresh a resolved line's recency, as a write to it must. */
    void touchLineRef(const LineRef &ref) { touchLru(ref.slot); }

    /**
     * Declare [base, base + bytes) a hot region and switch its line
     * lookups from the hash probe to a direct per-line slot array
     * indexed by (addr - base) / 64. The serving tier registers its
     * shard's slot region this way, making every dirty-line probe one
     * bounds check and one load — no hash, no collision chain. The
     * view is maintained at the same insert/erase funnel as the hash
     * table, so both always agree; lines outside the region (and all
     * lines under the reference store, where this is a no-op) keep
     * the existing paths. Costs 4 bytes of view per region line.
     * Re-registering replaces the previous view.
     */
    void registerRegionView(uint64_t base, uint64_t bytes);

    /**
     * Write back and drop the line containing @p addr (clflush).
     * @return the modelled cost of the instruction.
     */
    Tick flushLine(uint64_t addr);

    /**
     * Write back and invalidate the whole cache (wbinvd).
     * @return the modelled cost, nearly flat in dirty bytes.
     */
    Tick wbinvd();

    /**
     * Modelled cost of a software clflush loop over @p lines lines
     * (whether or not they are dirty), without executing it.
     */
    Tick clflushLoopCost(uint64_t lines) const;

    /** Modelled wbinvd cost without executing it. */
    Tick wbinvdCost() const;

    /** Lower bound: cache size over memory bandwidth (Table 2). */
    Tick theoreticalBestCost() const;

    // Partitioned parallel flush ---------------------------------------
    //
    // The save routine's parallel path splits the dirty lines of one
    // socket cache across that socket's cores: line L belongs to
    // worker (L / kLineSize) mod workers, a stable assignment that
    // needs no coordination. Each core clflushes only its own
    // partition, so the step costs the *slowest worker*, not the sum
    // — the paper's observation that flush-on-fail is embarrassingly
    // parallel. The model keeps that per-core dirty-line directory
    // for real: lines are bucketed by worker as they dirty, so
    // partitionDirtyLines is O(1), flushPartition walks only its own
    // lines, and parallelFlushCost(W) costs O(W) instead of W full
    // scans of the dirty map. (wbinvd needs no directory but cannot
    // be split.) The directory re-buckets itself — one O(dirty) pass
    // — when queried with a different worker count.

    /** Dirty lines assigned to @p worker of @p workers. */
    size_t partitionDirtyLines(unsigned worker, unsigned workers) const;

    /**
     * Modelled cost of @p worker's partition flush: fixed setup plus
     * a clflush walk over its dirty lines plus its share of the
     * write-back traffic.
     */
    Tick partitionFlushCost(unsigned worker, unsigned workers) const;

    /** Cost of the whole parallel flush: the slowest worker. */
    Tick parallelFlushCost(unsigned workers) const;

    /**
     * Write back and drop every dirty line of @p worker's partition
     * (the functional effect of that core's flush completing).
     */
    void flushPartition(unsigned worker, unsigned workers);

    /**
     * Dirty @p bytes of cache by writing a pseudo-random pattern to
     * consecutive lines starting at @p base (bench/test helper).
     */
    void fillDirty(uint64_t base, uint64_t bytes, Rng &rng);

    /**
     * Model the loss of cache contents without write-back (the
     * failure case flush-on-fail exists to prevent): dirty lines are
     * simply dropped.
     */
    void dropDirty();

    /**
     * Observe every line leaving the cache: called with
     * (line base, lost=false) when a line is written back to NVRAM
     * (eviction, clflush, wbinvd, partition flush) and
     * (line base, lost=true) per dirty line dropped without
     * write-back. Feeds FliT-style flush tracking (util/flit.h).
     */
    void setWritebackObserver(
        std::function<void(uint64_t line_base, bool lost)> observer)
    {
        writebackObserver_ = std::move(observer);
    }

  private:
    static constexpr uint32_t kNoSlot = ~0u;

    // Flat store -------------------------------------------------------

    /**
     * One dirty line: inline payload plus intrusive links. lruPrev /
     * lruNext thread the recency order (head = most recently
     * written); dirPrev / dirNext thread the line's per-worker flush
     * directory bucket. Free slots are chained through lruNext.
     */
    struct FlatLine
    {
        uint64_t base = 0;
        uint32_t lruPrev = kNoSlot;
        uint32_t lruNext = kNoSlot;
        uint32_t dirPrev = kNoSlot;
        uint32_t dirNext = kNoSlot;
        uint8_t data[kLineSize];
    };

    /** Open-addressing table entry: line base -> slot index. */
    struct FlatProbe
    {
        uint64_t base = 0;
        uint32_t slot = kNoSlot; ///< kNoSlot = empty
    };

    uint64_t lineBase(uint64_t addr) const { return addr & ~(kLineSize - 1); }

    static size_t flatHash(uint64_t base, size_t mask)
    {
        // Fibonacci hashing on the line number: one multiply, and the
        // high bits drive the index so nearby lines scatter.
        return static_cast<size_t>(
                   ((base >> 6) * 0x9e3779b97f4a7c15ull) >> 32) &
               mask;
    }

    /** Slot of @p base's dirty line, or kNoSlot (also when the cache
     *  runs the reference store — callers then take the slow path). */
    uint32_t flatFind(uint64_t base) const
    {
        // Registered-region fast path: O(1) view lookup. The unsigned
        // subtraction folds the two range checks into one compare,
        // and regionSpan_ == 0 (no region) can never pass it.
        if (base - regionBase_ < regionSpan_)
            return regionSlots_[(base - regionBase_) >> 6];
        if (flatTable_.empty())
            return kNoSlot;
        const size_t mask = flatTable_.size() - 1;
        size_t index = flatHash(base, mask);
        for (;;) {
            const FlatProbe &probe = flatTable_[index];
            if (probe.slot == kNoSlot)
                return kNoSlot;
            if (probe.base == base)
                return probe.slot;
            index = (index + 1) & mask;
        }
    }

    /** Move @p slot to the LRU head (most recently written). */
    void touchLru(uint32_t slot)
    {
        if (lruHead_ == slot)
            return;
        FlatLine &line = flatLines_[slot];
        // Unlink (slot is live, so prev/next are consistent).
        if (line.lruPrev != kNoSlot)
            flatLines_[line.lruPrev].lruNext = line.lruNext;
        if (line.lruNext != kNoSlot)
            flatLines_[line.lruNext].lruPrev = line.lruPrev;
        if (lruTail_ == slot)
            lruTail_ = line.lruPrev;
        // Relink at head.
        line.lruPrev = kNoSlot;
        line.lruNext = lruHead_;
        if (lruHead_ != kNoSlot)
            flatLines_[lruHead_].lruPrev = slot;
        lruHead_ = slot;
        if (lruTail_ == kNoSlot)
            lruTail_ = slot;
    }

    void flatTableInsert(uint64_t base, uint32_t slot);
    void flatTableErase(uint64_t base);
    void flatTableGrow();

    /** Acquire a slot for a new dirty line (may evict the LRU tail). */
    uint32_t flatAcquire(uint64_t base);

    /** Write @p slot back to NVRAM and recycle it. */
    void flatWriteBack(uint32_t slot);

    /** Re-bucket the flat directory for @p workers ways if needed. */
    void ensureFlatDirectory(unsigned workers) const;

    // const: they touch only the mutable directory state.
    void flatDirInsert(uint32_t slot) const;
    void flatDirErase(uint32_t slot) const;

    // Shared slow paths (reference store, flat misses, spans) ----------

    uint64_t readU64Slow(uint64_t addr) const;
    void writeU64Slow(uint64_t addr, uint64_t value);

    // Reference store --------------------------------------------------

    struct Line
    {
        std::vector<uint8_t> data;
        std::list<uint64_t>::iterator lru;
    };

    /** Get or create the dirty line for @p addr's line (reference). */
    Line &lineForWrite(uint64_t addr);

    /** Write one line back to NVRAM and forget it (reference). */
    void writeBack(uint64_t line_addr);

    /** Worker a line belongs to under the stable assignment. */
    unsigned workerOf(uint64_t base, unsigned workers) const
    {
        return static_cast<unsigned>((base / kLineSize) % workers);
    }

    /** Re-bucket the directory for @p workers ways if needed. */
    void ensureDirectory(unsigned workers) const;

    void directoryInsert(uint64_t base);
    void directoryErase(uint64_t base);

    std::string name_;
    uint64_t capacity_;
    CacheTiming timing_;
    NvramSpace &memory_;
    LineStore store_;
    std::function<void(uint64_t, bool)> writebackObserver_;

    // Flat-store state. flatTable_ stays empty while the reference
    // store runs, which is what routes the inline fast paths to the
    // slow functions without a mode branch. The slab is mutable so
    // the const cost queries can re-bucket the intrusive directory
    // links for a new way count.
    mutable std::vector<FlatLine> flatLines_;
    std::vector<FlatProbe> flatTable_;
    uint32_t flatFree_ = kNoSlot; ///< free-slot chain through lruNext
    size_t flatLive_ = 0;
    uint32_t lruHead_ = kNoSlot; ///< most recently written
    uint32_t lruTail_ = kNoSlot; ///< eviction victim

    // Per-worker flush directory for the flat store: bucket heads and
    // counts, re-bucketed (one pass over the LRU chain) when queried
    // with a new way count. Mutable for the const cost queries.
    mutable std::vector<uint32_t> flatDirHeads_;
    mutable std::vector<size_t> flatDirCounts_;
    mutable unsigned flatDirWays_ = 1;

    // Registered-region view: slot index per line of the region, or
    // kNoSlot. Empty span disables the fast path.
    uint64_t regionBase_ = 0;
    uint64_t regionSpan_ = 0;
    std::vector<uint32_t> regionSlots_;

    // Reference-store state (verbatim pre-flat implementation).
    std::unordered_map<uint64_t, Line> dirty_;
    std::list<uint64_t> lruOrder_; ///< front = most recently written

    // Per-worker dirty-line directory, maintained incrementally as
    // lines dirty and write back. Mutable because the cost queries
    // are const but may trigger a re-bucketing for a new way count.
    mutable std::vector<std::unordered_set<uint64_t>> directory_;
    mutable unsigned directoryWays_ = 1;
};

} // namespace wsp
