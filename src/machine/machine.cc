#include "machine/machine.h"

#include "util/logging.h"

namespace wsp {

PlatformSpec
platformIntelC5528()
{
    PlatformSpec spec;
    spec.name = "Intel C5528";
    spec.sockets = 2;
    spec.coresPerSocket = 4;
    spec.threadsPerCore = 2;
    spec.cachePerSocket = 8 * kMiB;
    // Calibrated to Table 2: wbinvd 2.8 ms, clflush 2.3 ms (16 MiB /
    // 262144 lines -> ~8.8 ns/line), theoretical best 0.79 ms
    // (8 MiB per socket at ~10.6 GiB/s, sockets in parallel).
    spec.cacheTiming.wbinvdFixed = fromMillis(2.73);
    spec.cacheTiming.memoryBwBytesPerSec = 10.6e9;
    spec.cacheTiming.clflushPerLine = 9;
    spec.load = loadIntelTestbed();
    return spec;
}

PlatformSpec
platformIntelX5650()
{
    PlatformSpec spec;
    spec.name = "Intel X5650";
    spec.sockets = 1;
    spec.coresPerSocket = 6;
    spec.threadsPerCore = 2;
    spec.cachePerSocket = 12 * kMiB;
    spec.cacheTiming.wbinvdFixed = fromMillis(3.60);
    spec.cacheTiming.memoryBwBytesPerSec = 12.0e9;
    spec.cacheTiming.clflushPerLine = 9;
    spec.load = SystemLoad{"Intel X5650", 280.0, 160.0};
    return spec;
}

PlatformSpec
platformAmd4180()
{
    PlatformSpec spec;
    spec.name = "AMD 4180";
    spec.sockets = 1;
    spec.coresPerSocket = 6;
    spec.threadsPerCore = 1;
    spec.cachePerSocket = 6 * kMiB;
    // Calibrated to Table 2: wbinvd 1.3 ms, clflush 1.6 ms (6 MiB /
    // 98304 lines -> ~16.3 ns/line), theoretical best 0.65 ms
    // (6 MiB at ~9.7 GiB/s).
    spec.cacheTiming.wbinvdFixed = fromMillis(1.26);
    spec.cacheTiming.memoryBwBytesPerSec = 9.7e9;
    spec.cacheTiming.clflushPerLine = 16;
    spec.load = loadAmdTestbed();
    return spec;
}

PlatformSpec
platformIntelD510()
{
    PlatformSpec spec;
    spec.name = "Intel D510";
    spec.sockets = 1;
    spec.coresPerSocket = 2;
    spec.threadsPerCore = 2;
    spec.cachePerSocket = 1 * kMiB;
    spec.cacheTiming.wbinvdFixed = fromMillis(0.42);
    spec.cacheTiming.memoryBwBytesPerSec = 2.5e9;
    spec.cacheTiming.clflushPerLine = 20;
    spec.load = SystemLoad{"Intel D510", 35.0, 22.0};
    return spec;
}

std::vector<PlatformSpec>
allPlatforms()
{
    return {platformIntelC5528(), platformIntelX5650(), platformAmd4180(),
            platformIntelD510()};
}

MachineModel::MachineModel(EventQueue &queue, PlatformSpec spec,
                           NvramSpace &memory)
    : SimObject(queue, spec.name), spec_(std::move(spec)), memory_(memory),
      interrupts_(queue, spec_.ipiLatency)
{
    WSP_CHECK(spec_.sockets >= 1);
    WSP_CHECK(spec_.coresPerSocket >= 1);
    WSP_CHECK(spec_.threadsPerCore >= 1);

    const unsigned per_socket = spec_.coresPerSocket * spec_.threadsPerCore;
    for (unsigned socket = 0; socket < spec_.sockets; ++socket) {
        caches_.push_back(std::make_unique<CacheModel>(
            spec_.name + "/L" + std::to_string(socket),
            spec_.cachePerSocket, spec_.cacheTiming, memory_));
        for (unsigned i = 0; i < per_socket; ++i) {
            CoreModel core;
            core.id = socket * per_socket + i;
            core.socket = socket;
            core.context.apicId = core.id;
            cores_.push_back(core);
        }
    }
}

CacheModel &
MachineModel::cacheOfCore(unsigned i)
{
    return *caches_.at(cores_.at(i).socket);
}

uint64_t
MachineModel::totalDirtyBytes() const
{
    uint64_t total = 0;
    for (const auto &cache : caches_)
        total += cache->dirtyBytes();
    return total;
}

uint64_t
MachineModel::totalCacheBytes() const
{
    uint64_t total = 0;
    for (const auto &cache : caches_)
        total += cache->capacity();
    return total;
}

void
MachineModel::randomizeContexts(Rng &rng)
{
    for (auto &core : cores_) {
        core.context.randomize(rng);
        core.context.apicId = core.id;
    }
}

void
MachineModel::fillCachesDirty(uint64_t bytes_per_socket, Rng &rng)
{
    // Give each socket a disjoint address region so lines never alias.
    const uint64_t region = memory_.capacity() / caches_.size();
    for (size_t socket = 0; socket < caches_.size(); ++socket) {
        caches_[socket]->fillDirty(static_cast<uint64_t>(socket) * region,
                                   bytes_per_socket, rng);
    }
}

void
MachineModel::haltAll()
{
    for (auto &core : cores_)
        core.halted = true;
}

bool
MachineModel::allHalted() const
{
    for (const auto &core : cores_) {
        if (!core.halted)
            return false;
    }
    return true;
}

void
MachineModel::onPowerLost()
{
    powerOn_ = false;
    for (auto &core : cores_) {
        if (!core.halted) {
            // Registers of a still-running core are simply gone.
            core.context = CpuContext{};
            core.context.apicId = core.id;
        }
        core.halted = true;
    }
    for (auto &cache : caches_)
        cache->dropDirty();
}

void
MachineModel::resetForBoot()
{
    powerOn_ = true;
    for (auto &core : cores_) {
        core.halted = false;
        core.context = CpuContext{};
        core.context.apicId = core.id;
    }
}

} // namespace wsp
