#include "pheap/stm.h"

#include <algorithm>

#include "trace/stat_registry.h"
#include "trace/trace.h"

namespace wsp::pmem {

namespace {

// Registry handles are resolved once and cached: the commit path is
// hot in the Fig. 5 benches, so it must not take the registry lock.
trace::Counter &
stmAbortCounter()
{
    static trace::Counter &counter =
        trace::StatRegistry::instance().counter("pheap.stm_aborts");
    return counter;
}

trace::Counter &
stmCommitCounter()
{
    static trace::Counter &counter =
        trace::StatRegistry::instance().counter("pheap.stm_commits");
    return counter;
}

} // namespace

void
noteStmAbort()
{
    stmAbortCounter().add();
}

bool
StmTx::tryCommit()
{
    if (!valid_)
        return false;

    // Read-only fast path: a consistent read set at a fixed version
    // needs no locks and no clock bump. Deliberately uninstrumented —
    // read-mostly Fig. 5 workloads live here.
    if (writeSet_.empty()) {
        for (const auto *lock : readSet_) {
            const uint64_t v = lock->load(std::memory_order_acquire);
            if ((v & 1) != 0 || v > readVersion_)
                return false;
        }
        return true;
    }

    TRACE_SPAN(Pheap, "stm commit");

    // Acquire write locks in address order to avoid deadlock.
    std::vector<StmRuntime::LockWord *> acquired;
    std::vector<Entry> sorted = writeSet_;
    std::sort(sorted.begin(), sorted.end(),
              [](const Entry &a, const Entry &b) { return a.key < b.key; });

    auto release_all = [&] {
        for (auto *lock : acquired) {
            const uint64_t v = lock->load(std::memory_order_relaxed);
            lock->store(v & ~1ull, std::memory_order_release);
        }
    };

    for (const Entry &entry : sorted) {
        auto &lock = runtime_.lockFor(
            reinterpret_cast<const void *>(entry.key));
        // Two write-set words may hash to one lock (and not be
        // adjacent after sorting by address); never re-acquire a lock
        // we already hold or the CAS livelocks against ourselves.
        if (std::find(acquired.begin(), acquired.end(), &lock) !=
            acquired.end()) {
            continue;
        }
        uint64_t expected = lock.load(std::memory_order_acquire);
        if ((expected & 1) != 0 || expected > readVersion_) {
            release_all();
            return false;
        }
        if (!lock.compare_exchange_strong(expected, expected | 1,
                                          std::memory_order_acq_rel)) {
            release_all();
            return false;
        }
        acquired.push_back(&lock);
    }

    // Validate the read set against the locked state.
    for (const auto *lock : readSet_) {
        const uint64_t v = lock->load(std::memory_order_acquire);
        const bool locked_by_us =
            (v & 1) != 0 &&
            std::find(acquired.begin(), acquired.end(), lock) !=
                acquired.end();
        if (!locked_by_us && ((v & 1) != 0 || v > readVersion_)) {
            release_all();
            return false;
        }
    }

    const uint64_t write_version = runtime_.advanceClock();

    // Durable path: log the write set before any in-place store; the
    // redo log applies the in-place writes itself.
    if (redo_ != nullptr) {
        std::vector<RedoWrite> writes;
        writes.reserve(writeSet_.size());
        for (const Entry &entry : writeSet_) {
            RedoWrite w;
            w.target = region_->offsetOf(
                reinterpret_cast<const void *>(entry.key));
            w.len = 8;
            w.bytes.resize(8);
            std::memcpy(w.bytes.data(), &entry.value, 8);
            writes.push_back(std::move(w));
        }
        redo_->commit(writes);
    } else {
        for (const Entry &entry : writeSet_) {
            std::memcpy(reinterpret_cast<void *>(entry.key),
                        &entry.value, 8);
        }
    }

    // Publish the new version and release the locks.
    for (auto *lock : acquired)
        lock->store(write_version, std::memory_order_release);
    stmCommitCounter().add();
    return true;
}

} // namespace wsp::pmem
