/**
 * @file
 * Torn-bit raw log ring.
 *
 * Mnemosyne's raw log (which the paper's minimal NV-heap reuses for
 * its undo log: "undo log records are written efficiently to a
 * torn-bit raw log using non-temporal stores") steals one bit per
 * 64-bit word as a *phase* bit. The writer appends words in strictly
 * increasing ring order; the phase flips each time the ring wraps.
 * A torn append is detected without any commit record: the first
 * word whose phase does not match the current pass is the true tail,
 * because that slot was last written during the previous pass.
 *
 * Invariants that make the scan sound:
 *  - words are appended contiguously; nothing is skipped (a PAD
 *    record fills the ring tail before wrapping),
 *  - the phase flips only at wrap,
 *  - a checkpoint (position + pass) is persisted at every wrap, so
 *    recovery scans at most one full ring.
 *
 * Writers choose cached or non-temporal stores: flush-on-commit
 * configurations use non-temporal stores + fences (durable append),
 * flush-on-fail configurations use plain cached stores (the whole
 * point of the paper: the cache is flushed only on failure).
 */

#pragma once

#include <cstdint>
#include <functional>

#include "pheap/region.h"

namespace wsp::pmem {

/** Record types multiplexed onto the word stream. */
enum class LogRecordType : uint8_t {
    None = 0,
    TxnBegin = 1,
    Data = 2,     ///< old (undo) or new (redo) bytes for one range
    TxnCommit = 3,
    TxnAbort = 4,
    Pad = 5,      ///< fills the ring tail before a wrap
};

/** One decoded record (scan output). */
struct LogRecord
{
    LogRecordType type = LogRecordType::None;
    uint64_t txnId = 0;     ///< TxnBegin/TxnCommit/TxnAbort
    Offset target = 0;      ///< Data: destination offset in the region
    uint32_t byteLen = 0;   ///< Data: number of payload bytes
    std::vector<uint8_t> payload; ///< Data: the bytes
};

/** The raw word ring with phase-bit framing. */
class TornBitLog
{
  public:
    /**
     * @param region     backing region
     * @param start      byte offset of the ring
     * @param bytes      ring size in bytes (multiple of 8)
     * @param ckpt_pos   persistent checkpoint word (position)
     * @param ckpt_pass  persistent checkpoint word (pass)
     * @param durable_appends  non-temporal stores when true, cached
     *                   stores when false (flush-on-fail mode)
     */
    TornBitLog(PersistentRegion &region, Offset start, uint64_t bytes,
               uint64_t *ckpt_pos, uint64_t *ckpt_pass,
               bool durable_appends);

    uint64_t capacityWords() const { return words_; }
    uint64_t position() const { return pos_; }
    uint64_t pass() const { return pass_; }
    uint64_t wraps() const { return wraps_; }

    /**
     * Ensure @p needed words fit without an intervening wrap; pads
     * and wraps if they do not. Call once per record.
     */
    void reserve(uint64_t needed);

    /** Append one word (payload must leave bit 63 clear). */
    void appendWord(uint64_t payload);

    /** Fence appends when in durable mode (no-op otherwise). */
    void fence();

    // Record-level helpers ---------------------------------------------

    /** Append a TxnBegin/TxnCommit/TxnAbort record. */
    void appendMarker(LogRecordType type, uint64_t txn_id);

    /** Append a Data record: target offset + byte payload. */
    void appendData(Offset target, const void *bytes, uint32_t len);

    /** Words needed by a Data record of @p len bytes. */
    static uint64_t dataRecordWords(uint32_t len);

    /**
     * Scan the ring from the persisted checkpoint to the torn tail,
     * decoding records in append order.
     */
    std::vector<LogRecord> scan() const;

    /**
     * Reset the ring after recovery or at startup: zero it, restart
     * the pass counter, persist the checkpoint.
     */
    void reset();

    /** Persist the current (position, pass) as the scan checkpoint. */
    void persistCheckpoint();

  private:
    static constexpr uint64_t kPhaseBit = 1ull << 63;

    uint64_t phaseOf(uint64_t pass) const { return (pass & 1) << 63; }
    uint64_t *wordPtr(uint64_t index);
    const uint64_t *wordPtr(uint64_t index) const;

    PersistentRegion &region_;
    Offset start_;
    uint64_t words_;
    uint64_t *ckptPos_;
    uint64_t *ckptPass_;
    bool durable_;

    uint64_t pos_ = 0;  ///< next word index to write
    uint64_t pass_ = 1; ///< current pass (phase = pass & 1)
    uint64_t wraps_ = 0;
};

} // namespace wsp::pmem
