/**
 * @file
 * Persistent memory region.
 *
 * A persistent heap lives inside one contiguous region mapped into
 * the application's address space (paper section 3.2: "persistent
 * objects are stored in NVRAM and mapped directly into the
 * application's address space"). The region can be backed by a file
 * (so tests can close and re-open it, simulating a crash/recovery
 * cycle) or anonymous memory (for pure benchmarking).
 *
 * Layout:
 *
 *   [ RegionHeader | undo-log ring | redo-log ring | heap ... ]
 *
 * All persistent pointers are stored as offsets from the region base
 * so a re-opened mapping works at any address.
 */

#pragma once

#include <cstdint>
#include <string>

namespace wsp::pmem {

/** Offset into a region; 0 is the null offset (header lives there). */
using Offset = uint64_t;

constexpr Offset kNullOffset = 0;

/** On-media region header. */
struct RegionHeader
{
    static constexpr uint64_t kMagic = 0x5753505245473031ull; // WSPREG01
    static constexpr uint32_t kVersion = 1;

    uint64_t magic = 0;
    uint32_t version = 0;
    uint32_t flags = 0;
    uint64_t size = 0;
    Offset undoLogStart = 0;
    uint64_t undoLogBytes = 0;
    Offset redoLogStart = 0;
    uint64_t redoLogBytes = 0;
    Offset heapStart = 0;
    Offset rootObject = 0;      ///< application root (kNullOffset = none)
    uint64_t cleanShutdown = 0; ///< set on close, cleared on open

    // Log checkpoints (see TornBitLog).
    uint64_t undoCheckpointPos = 0;
    uint64_t undoCheckpointPass = 0;
    uint64_t redoCheckpointPos = 0;
    uint64_t redoCheckpointPass = 0;

    // Allocator state (see PHeapAllocator).
    Offset bumpCursor = 0;
    Offset freeListHeads[16] = {};
};

/** A mapped persistent region. */
class PersistentRegion
{
  public:
    /** Create or open a file-backed region of @p size bytes. */
    PersistentRegion(const std::string &path, uint64_t size);

    /** Create an anonymous region (no recovery across processes). */
    explicit PersistentRegion(uint64_t size);

    ~PersistentRegion();

    PersistentRegion(const PersistentRegion &) = delete;
    PersistentRegion &operator=(const PersistentRegion &) = delete;

    uint64_t size() const { return size_; }
    uint8_t *base() { return base_; }
    const uint8_t *base() const { return base_; }

    RegionHeader &header() { return *reinterpret_cast<RegionHeader *>(base_); }
    const RegionHeader &header() const
    {
        return *reinterpret_cast<const RegionHeader *>(base_);
    }

    /** True when the region pre-existed and was opened, not created. */
    bool recovered() const { return recovered_; }

    /** True when the previous close was clean (no recovery needed). */
    bool wasCleanShutdown() const { return wasClean_; }

    /** Translate an offset to a pointer (0 -> nullptr). */
    template <typename T = uint8_t>
    T *
    at(Offset offset)
    {
        if (offset == kNullOffset)
            return nullptr;
        return reinterpret_cast<T *>(base_ + offset);
    }

    template <typename T = uint8_t>
    const T *
    at(Offset offset) const
    {
        if (offset == kNullOffset)
            return nullptr;
        return reinterpret_cast<const T *>(base_ + offset);
    }

    /** Translate a pointer inside the region back to an offset. */
    Offset offsetOf(const void *ptr) const;

    /** Mark a clean shutdown (flushes the header). */
    void markCleanShutdown();

  private:
    void initializeHeader(uint64_t size);
    void openExisting();

    uint8_t *base_ = nullptr;
    uint64_t size_ = 0;
    int fd_ = -1;
    bool recovered_ = false;
    bool wasClean_ = false;
};

} // namespace wsp::pmem
