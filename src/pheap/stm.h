/**
 * @file
 * Word-based software transactional memory (TL2-style).
 *
 * Mnemosyne uses a compiler-instrumented STM (the Intel STM) for
 * isolation; its costs — tracking read sets, looking up the write
 * set on every read, validating and locking at commit — are a large
 * part of the overhead the paper measures even for read-only
 * workloads (section 3.2: "reads must be instrumented to check the
 * write set"). This is a library-level equivalent: a global version
 * clock, a hashed array of versioned write-locks, per-transaction
 * read and write sets, and commit-time validation.
 *
 * Durability composes via the redo log: a durable commit streams the
 * write set into the log (NT stores + fence) before the in-place
 * write-back — the FoC + STM configuration. Without the log it is
 * the FoF + STM configuration: the same instrumentation, no flushes.
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <vector>

#include "pheap/redo_log.h"
#include "pheap/region.h"
#include "util/logging.h"

namespace wsp::pmem {

/** Bump the global pheap.stm_aborts statistic (one relaxed add). */
void noteStmAbort();

/** Shared STM state: the clock and the lock table. */
class StmRuntime
{
  public:
    static constexpr size_t kLockCount = 1 << 16;

    /** LSB = write-locked; remaining bits = version. */
    using LockWord = std::atomic<uint64_t>;

    StmRuntime() : locks_(kLockCount) {}

    LockWord &
    lockFor(const void *addr)
    {
        // Word-granularity hash: drop the low 3 bits, mix, mask.
        auto a = reinterpret_cast<uintptr_t>(addr) >> 3;
        a ^= a >> 17;
        a *= 0x9e3779b97f4a7c15ull;
        return locks_[(a >> 32) & (kLockCount - 1)];
    }

    uint64_t readClock() const
    {
        return clock_.load(std::memory_order_acquire);
    }

    uint64_t
    advanceClock()
    {
        return clock_.fetch_add(2, std::memory_order_acq_rel) + 2;
    }

    uint64_t aborts() const { return aborts_.load(); }

    void
    countAbort()
    {
        aborts_.fetch_add(1, std::memory_order_relaxed);
        noteStmAbort();
    }

  private:
    std::atomic<uint64_t> clock_{0};
    std::atomic<uint64_t> aborts_{0};
    std::vector<LockWord> locks_;
};

/**
 * One transaction attempt. Word (8-byte) granularity.
 *
 * Usage: construct, use read()/write(), then tryCommit(); on failure
 * the caller re-runs the body (see runStmTransaction below).
 */
class StmTx
{
  public:
    /**
     * @param redo non-null for durable (flush-on-commit) transactions;
     *        the write set is then logged before write-back.
     */
    StmTx(StmRuntime &runtime, RedoLog *redo, PersistentRegion *region)
        : runtime_(runtime), redo_(redo), region_(region),
          readVersion_(runtime.readClock())
    {
        if (redo_ != nullptr)
            WSP_CHECK(region_ != nullptr);
    }

    StmTx(const StmTx &) = delete;
    StmTx &operator=(const StmTx &) = delete;

    /** Transactional load of an 8-byte-or-smaller value. */
    template <typename T>
    T
    read(const T *addr)
    {
        static_assert(sizeof(T) <= 8);
        // Write set lookup first: reads must observe own writes.
        const uint64_t key = wordKey(addr);
        for (size_t i = writeSet_.size(); i-- > 0;) {
            if (writeSet_[i].key == key) {
                T value;
                std::memcpy(&value, &writeSet_[i].value, sizeof(T));
                return value;
            }
        }

        auto &lock = runtime_.lockFor(addr);
        const uint64_t pre = lock.load(std::memory_order_acquire);
        T value;
        std::memcpy(&value, addr, sizeof(T));
        const uint64_t post = lock.load(std::memory_order_acquire);
        if ((pre & 1) != 0 || pre != post || pre > readVersion_) {
            valid_ = false; // inconsistent read: force retry
        }
        readSet_.push_back(&lock);
        return value;
    }

    /** Transactional store of an 8-byte-or-smaller value. */
    template <typename T>
    void
    write(T *addr, T value)
    {
        static_assert(sizeof(T) <= 8);
        const uint64_t key = wordKey(addr);
        uint64_t raw = 0;
        // Read-modify-write the containing word so small types keep
        // their neighbours.
        std::memcpy(&raw, reinterpret_cast<void *>(key), 8);
        for (auto &entry : writeSet_) {
            if (entry.key == key) {
                raw = entry.value;
                std::memcpy(reinterpret_cast<uint8_t *>(&raw) +
                                byteOffset(addr),
                            &value, sizeof(T));
                entry.value = raw;
                return;
            }
        }
        std::memcpy(reinterpret_cast<uint8_t *>(&raw) + byteOffset(addr),
                    &value, sizeof(T));
        writeSet_.push_back(Entry{key, raw});
    }

    /** True while no inconsistent read has been observed. */
    bool valid() const { return valid_; }

    /**
     * Attempt to commit. On success the writes are visible (and, with
     * a redo log, durable). On failure the transaction had a conflict
     * and must be re-run.
     */
    bool tryCommit();

  private:
    struct Entry
    {
        uint64_t key;   ///< aligned word address
        uint64_t value; ///< full word image
    };

    template <typename T>
    static uint64_t
    wordKey(const T *addr)
    {
        return reinterpret_cast<uintptr_t>(addr) & ~7ull;
    }

    template <typename T>
    static size_t
    byteOffset(const T *addr)
    {
        return reinterpret_cast<uintptr_t>(addr) & 7ull;
    }

    StmRuntime &runtime_;
    RedoLog *redo_;
    PersistentRegion *region_;
    uint64_t readVersion_;
    bool valid_ = true;
    std::vector<StmRuntime::LockWord *> readSet_;
    std::vector<Entry> writeSet_;
};

/** Run @p body transactionally, retrying on conflicts. */
template <typename Body>
void
runStmTransaction(StmRuntime &runtime, RedoLog *redo,
                  PersistentRegion *region, Body &&body)
{
    for (;;) {
        StmTx tx(runtime, redo, region);
        body(tx);
        if (tx.valid() && tx.tryCommit())
            return;
        runtime.countAbort();
    }
}

} // namespace wsp::pmem
