#include "pheap/undo_log.h"

#include <cstring>

#include "pheap/flush.h"
#include "trace/stat_registry.h"
#include "trace/trace.h"
#include "util/logging.h"

namespace wsp::pmem {

namespace {

trace::Counter &
undoCommitCounter()
{
    static trace::Counter &counter =
        trace::StatRegistry::instance().counter("pheap.undo_commits");
    return counter;
}

} // namespace

UndoLog::UndoLog(PersistentRegion &region, bool flush_on_commit)
    : region_(region),
      log_(region, region.header().undoLogStart,
           region.header().undoLogBytes,
           &region.header().undoCheckpointPos,
           &region.header().undoCheckpointPass, flush_on_commit),
      flushOnCommit_(flush_on_commit)
{
}

void
UndoLog::txBegin()
{
    WSP_CHECKF(!inTxn_, "nested undo transactions are not supported");
    inTxn_ = true;
    touched_.clear();
    log_.appendMarker(LogRecordType::TxnBegin, nextTxnId_);
    log_.fence();
}

void
UndoLog::logOldValue(const void *addr, uint32_t len)
{
    WSP_CHECK(inTxn_);
    const Offset target = region_.offsetOf(addr);
    log_.appendData(target, addr, len);
    // Write-ahead rule: the undo record must be durable before the
    // caller's in-place update can reach memory.
    log_.fence();

    Touched t;
    t.target = target;
    t.len = len;
    t.oldBytes.assign(static_cast<const uint8_t *>(addr),
                      static_cast<const uint8_t *>(addr) + len);
    touched_.push_back(std::move(t));

    ++stats_.recordsLogged;
    stats_.bytesLogged += len;
}

void
UndoLog::txCommit()
{
    WSP_CHECK(inTxn_);
    TRACE_SPAN(Pheap, "undo commit");
    if (flushOnCommit_) {
        // Make the in-place updates durable, then retire the undo
        // records with a commit marker. Several fields of one object
        // share a cache line, so flush each line once.
        lineSet_.clear();
        for (const Touched &t : touched_) {
            const uint64_t first = t.target & ~63ull;
            const uint64_t last = (t.target + t.len - 1) & ~63ull;
            for (uint64_t line = first; line <= last; line += 64) {
                if (lineSet_.insert(line).second)
                    flushLine(region_.at(line));
            }
        }
        storeFence();
    }
    log_.appendMarker(LogRecordType::TxnCommit, nextTxnId_);
    log_.fence();
    if (flushOnCommit_) {
        // Persist point: the updates and the Commit marker are in the
        // NV domain; this transaction survives any later crash.
        ++stats_.persistPoints;
        if (persistObserver_)
            persistObserver_(nextTxnId_, /*committed=*/true);
    }
    ++nextTxnId_;
    ++stats_.txnsCommitted;
    undoCommitCounter().add();
    inTxn_ = false;
    touched_.clear();
}

void
UndoLog::txAbort()
{
    WSP_CHECK(inTxn_);
    // Roll back in reverse order so overlapping updates unwind.
    for (auto it = touched_.rbegin(); it != touched_.rend(); ++it) {
        std::memcpy(region_.at(it->target), it->oldBytes.data(), it->len);
        if (flushOnCommit_)
            flushRange(region_.at(it->target), it->len);
    }
    if (flushOnCommit_)
        storeFence();
    log_.appendMarker(LogRecordType::TxnAbort, nextTxnId_);
    log_.fence();
    if (flushOnCommit_) {
        ++stats_.persistPoints;
        if (persistObserver_)
            persistObserver_(nextTxnId_, /*committed=*/false);
    }
    ++nextTxnId_;
    ++stats_.txnsAborted;
    inTxn_ = false;
    touched_.clear();
}

size_t
UndoLog::recover()
{
    const std::vector<LogRecord> records = log_.scan();

    // Find the last Begin and whether it resolved.
    ptrdiff_t open_begin = -1;
    for (size_t i = 0; i < records.size(); ++i) {
        switch (records[i].type) {
          case LogRecordType::TxnBegin:
            open_begin = static_cast<ptrdiff_t>(i);
            break;
          case LogRecordType::TxnCommit:
          case LogRecordType::TxnAbort:
            open_begin = -1;
            break;
          default:
            break;
        }
    }

    size_t undone = 0;
    if (open_begin >= 0) {
        // Apply the in-flight transaction's old values, newest first.
        for (size_t i = records.size(); i-- > static_cast<size_t>(open_begin);) {
            const LogRecord &record = records[i];
            if (record.type != LogRecordType::Data)
                continue;
            std::memcpy(region_.at(record.target), record.payload.data(),
                        record.byteLen);
            flushRange(region_.at(record.target), record.byteLen);
            ++undone;
        }
        storeFence();
    }

    log_.reset();
    inTxn_ = false;
    touched_.clear();
    return undone;
}

} // namespace wsp::pmem
