#include "pheap/tornbit_log.h"

#include <cstring>

#include "pheap/flush.h"
#include "util/logging.h"

namespace wsp::pmem {

namespace {

// Header-word encoding: type in bits [62:60], low bits per type.
constexpr int kTypeShift = 60;
constexpr uint64_t kTypeMask = 0x7ull << kTypeShift;
constexpr uint64_t kLowMask = (1ull << kTypeShift) - 1;

uint64_t
encodeMarker(LogRecordType type, uint64_t txn_id)
{
    return (static_cast<uint64_t>(type) << kTypeShift) |
           (txn_id & kLowMask);
}

LogRecordType
decodeType(uint64_t word)
{
    return static_cast<LogRecordType>((word & kTypeMask) >> kTypeShift);
}

} // namespace

TornBitLog::TornBitLog(PersistentRegion &region, Offset start,
                       uint64_t bytes, uint64_t *ckpt_pos,
                       uint64_t *ckpt_pass, bool durable_appends)
    : region_(region), start_(start), words_(bytes / 8),
      ckptPos_(ckpt_pos), ckptPass_(ckpt_pass), durable_(durable_appends)
{
    WSP_CHECK(bytes % 8 == 0);
    WSP_CHECK(words_ >= 64);
    pos_ = *ckptPos_;
    pass_ = *ckptPass_;
}

uint64_t *
TornBitLog::wordPtr(uint64_t index)
{
    return reinterpret_cast<uint64_t *>(region_.base() + start_) + index;
}

const uint64_t *
TornBitLog::wordPtr(uint64_t index) const
{
    return reinterpret_cast<const uint64_t *>(region_.base() + start_) +
           index;
}

void
TornBitLog::appendWord(uint64_t payload)
{
    WSP_CHECK((payload & kPhaseBit) == 0);
    const uint64_t word = payload | phaseOf(pass_);
    if (durable_) {
        ntStore64(wordPtr(pos_), word);
    } else {
        *wordPtr(pos_) = word;
    }
    if (++pos_ == words_) {
        pos_ = 0;
        ++pass_;
        ++wraps_;
        persistCheckpoint();
    }
}

void
TornBitLog::fence()
{
    if (durable_)
        storeFence();
}

void
TornBitLog::reserve(uint64_t needed)
{
    WSP_CHECKF(needed < words_, "record larger than the log ring");
    if (pos_ + needed <= words_)
        return;
    // Fill the tail with PAD words so the scan can walk over them,
    // then wrap (appendWord flips the pass at the boundary).
    while (pos_ != 0)
        appendWord(encodeMarker(LogRecordType::Pad, 0));
}

void
TornBitLog::appendMarker(LogRecordType type, uint64_t txn_id)
{
    reserve(1);
    appendWord(encodeMarker(type, txn_id));
}

uint64_t
TornBitLog::dataRecordWords(uint32_t len)
{
    // Header word + target word + 4 payload bytes per word.
    return 2 + (static_cast<uint64_t>(len) + 3) / 4;
}

void
TornBitLog::appendData(Offset target, const void *bytes, uint32_t len)
{
    reserve(dataRecordWords(len));
    appendWord((static_cast<uint64_t>(LogRecordType::Data) << kTypeShift) |
               len);
    appendWord(target);
    const auto *src = static_cast<const uint8_t *>(bytes);
    for (uint32_t off = 0; off < len; off += 4) {
        uint32_t chunk = 0;
        std::memcpy(&chunk, src + off,
                    len - off >= 4 ? 4 : len - off);
        appendWord(chunk);
    }
}

std::vector<LogRecord>
TornBitLog::scan() const
{
    std::vector<LogRecord> records;
    uint64_t pos = *ckptPos_;
    uint64_t pass = *ckptPass_;
    uint64_t consumed = 0;

    // Pull the next valid word; false at the torn tail or after one
    // full ring.
    auto next_word = [&](uint64_t *out) {
        if (consumed >= words_)
            return false;
        const uint64_t word = *wordPtr(pos);
        if ((word & kPhaseBit) != phaseOf(pass))
            return false;
        if (++pos == words_) {
            pos = 0;
            ++pass;
        }
        ++consumed;
        *out = word & ~kPhaseBit;
        return true;
    };

    uint64_t word = 0;
    while (next_word(&word)) {
        const LogRecordType type = decodeType(word);
        switch (type) {
          case LogRecordType::Pad:
            continue;
          case LogRecordType::TxnBegin:
          case LogRecordType::TxnCommit:
          case LogRecordType::TxnAbort: {
            LogRecord record;
            record.type = type;
            record.txnId = word & kLowMask;
            records.push_back(std::move(record));
            continue;
          }
          case LogRecordType::Data: {
            LogRecord record;
            record.type = type;
            record.byteLen = static_cast<uint32_t>(word & 0xffffffffull);
            uint64_t target = 0;
            if (!next_word(&target))
                return records; // torn mid-record: drop it
            record.target = target;
            record.payload.resize(record.byteLen);
            bool torn = false;
            for (uint32_t off = 0; off < record.byteLen; off += 4) {
                uint64_t chunk = 0;
                if (!next_word(&chunk)) {
                    torn = true;
                    break;
                }
                const uint32_t chunk32 =
                    static_cast<uint32_t>(chunk & 0xffffffffull);
                const uint32_t take =
                    record.byteLen - off >= 4 ? 4 : record.byteLen - off;
                std::memcpy(record.payload.data() + off, &chunk32, take);
            }
            if (torn)
                return records;
            records.push_back(std::move(record));
            continue;
          }
          case LogRecordType::None:
          default:
            // Unknown frame: treat as the tail.
            return records;
        }
    }
    return records;
}

void
TornBitLog::reset()
{
    std::memset(region_.base() + start_, 0, words_ * 8);
    flushRange(region_.base() + start_, words_ * 8);
    pos_ = 0;
    pass_ = 1;
    persistCheckpoint();
}

void
TornBitLog::persistCheckpoint()
{
    *ckptPos_ = pos_;
    *ckptPass_ = pass_;
    flushRange(ckptPos_, sizeof(*ckptPos_));
    flushRange(ckptPass_, sizeof(*ckptPass_));
    storeFence();
}

} // namespace wsp::pmem
