/**
 * @file
 * Write-ahead undo log over the torn-bit ring.
 *
 * The paper's "minimal NV-heap" (section 3.2) provides persistence —
 * crash consistency — without isolation: before each in-place update
 * the old value is appended to a torn-bit raw log with non-temporal
 * stores; on commit the updated cache lines are flushed and a commit
 * marker is appended. Recovery rolls back the records of the one
 * transaction that has a Begin but no Commit/Abort.
 *
 * In flush-on-fail mode the same structure runs entirely in-cache
 * (plain stores, no fences, no commit-time flushes): its content is
 * made durable by WSP's failure-time flush instead, which is exactly
 * the FoF + UL configuration of Fig. 5.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "pheap/tornbit_log.h"

namespace wsp::pmem {

/** Undo-log statistics (tests and benches). */
struct UndoLogStats
{
    uint64_t txnsCommitted = 0;
    uint64_t txnsAborted = 0;
    uint64_t recordsLogged = 0;
    uint64_t bytesLogged = 0;
    /// Transactions whose persist point was reached (durable mode
    /// only: in-place lines flushed + commit/abort marker fenced).
    uint64_t persistPoints = 0;
};

/** Per-heap undo log. Not thread-safe (one per thread or lock). */
class UndoLog
{
  public:
    /**
     * @param flush_on_commit durable appends (NT stores + fences) and
     *        commit-time flushing of updated lines when true; pure
     *        in-cache operation when false (flush-on-fail mode).
     */
    UndoLog(PersistentRegion &region, bool flush_on_commit);

    bool flushOnCommit() const { return flushOnCommit_; }
    bool inTxn() const { return inTxn_; }
    const UndoLogStats &stats() const { return stats_; }

    /** Begin a transaction (appends a Begin marker). */
    void txBegin();

    /**
     * Record the current (old) bytes at @p addr before the caller
     * overwrites them. In durable mode the record is fenced before
     * returning, making it a correct write-ahead log.
     */
    void logOldValue(const void *addr, uint32_t len);

    /** Commit: flush updated lines (durable mode), append Commit. */
    void txCommit();

    /** Abort: roll back this transaction's updates immediately. */
    void txAbort();

    /**
     * Crash recovery: scan the ring; if a transaction began but never
     * committed or aborted, restore its old values (newest first).
     * Resets the ring afterwards.
     * @return number of data records rolled back.
     */
    size_t recover();

    /**
     * Observe each transaction's persist point — the instant its
     * outcome is durable: commit (in-place lines flushed, Commit
     * marker fenced) or abort (old values restored, Abort marker
     * fenced). Fires in durable mode only; in flush-on-fail mode the
     * persist point is the failure-time flush, not a per-transaction
     * event. Feeds the correctness-conditions history records
     * (src/crashsim/conditions/).
     */
    void setPersistObserver(
        std::function<void(uint64_t txn_id, bool committed)> observer)
    {
        persistObserver_ = std::move(observer);
    }

  private:
    PersistentRegion &region_;
    TornBitLog log_;
    bool flushOnCommit_;
    bool inTxn_ = false;
    uint64_t nextTxnId_ = 1;
    UndoLogStats stats_;
    std::function<void(uint64_t, bool)> persistObserver_;

    /** Ranges updated in the current transaction (for commit flush
     *  and for immediate rollback on abort). */
    struct Touched
    {
        Offset target;
        uint32_t len;
        std::vector<uint8_t> oldBytes;
    };
    std::vector<Touched> touched_;

    /** Scratch set for commit-time line deduplication. */
    std::unordered_set<uint64_t> lineSet_;
};

} // namespace wsp::pmem
