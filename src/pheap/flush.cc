#include "pheap/flush.h"

#include <atomic>
#include <cstring>

#if defined(__x86_64__)
#include <immintrin.h>
#include <cpuid.h>
#endif

namespace wsp::pmem {

namespace {

std::atomic<uint64_t> flushes{0};
std::atomic<uint64_t> ntStores{0};
std::atomic<uint64_t> fences{0};

// The fence counter uses a racy load+store bump instead of a locked
// read-modify-write: the sfence right after orders it anyway, and a
// locked op here is measurable in the Fig. 5 hot loops. Exact
// single-threaded, approximate (never torn) under concurrency. The
// flush/NT-store counters keep fetch_add: their locked op doubles as
// the completion barrier the timing model relies on.
inline void
bump(std::atomic<uint64_t> &counter)
{
    counter.store(counter.load(std::memory_order_relaxed) + 1,
                  std::memory_order_relaxed);
}

#if defined(__x86_64__)
// The translation unit is built without -mclflushopt so the library
// runs on any x86-64; this one function carries the target attribute
// and is only called after the CPUID check.
__attribute__((target("clflushopt"))) void
clflushOpt(void *addr)
{
    _mm_clflushopt(addr);
}

bool
detectClflushOpt()
{
    unsigned eax = 0;
    unsigned ebx = 0;
    unsigned ecx = 0;
    unsigned edx = 0;
    if (!__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx))
        return false;
    return (ebx & (1u << 23)) != 0; // CLFLUSHOPT feature bit
}
#endif

} // namespace

bool
haveClflushOpt()
{
#if defined(__x86_64__)
    static const bool have = detectClflushOpt();
    return have;
#else
    return false;
#endif
}

void
flushLine(const void *addr)
{
    flushes.fetch_add(1, std::memory_order_relaxed);
#if defined(__x86_64__)
    if (haveClflushOpt()) {
        clflushOpt(const_cast<void *>(addr));
    } else {
        _mm_clflush(addr);
    }
#else
    // Portable fallback: a compiler barrier models the ordering; the
    // flush latency cannot be reproduced without the instruction.
    std::atomic_signal_fence(std::memory_order_seq_cst);
    (void)addr;
#endif
}

void
flushRange(const void *addr, size_t len)
{
    if (len == 0)
        return;
    auto first = reinterpret_cast<uintptr_t>(addr) & ~(kLineSize - 1);
    const auto last =
        (reinterpret_cast<uintptr_t>(addr) + len - 1) & ~(kLineSize - 1);
    for (uintptr_t line = first; line <= last; line += kLineSize)
        flushLine(reinterpret_cast<const void *>(line));
}

void
storeFence()
{
    bump(fences);
#if defined(__x86_64__)
    _mm_sfence();
#else
    std::atomic_thread_fence(std::memory_order_release);
#endif
}

void
ntStore64(uint64_t *dst, uint64_t value)
{
    ntStores.fetch_add(1, std::memory_order_relaxed);
#if defined(__x86_64__)
    _mm_stream_si64(reinterpret_cast<long long *>(dst),
                    static_cast<long long>(value));
#else
    *dst = value;
    std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

void
ntCopy(void *dst, const void *src, size_t len)
{
    auto *d = static_cast<uint8_t *>(dst);
    const auto *s = static_cast<const uint8_t *>(src);

    // Unaligned head: cached stores, then flush the touched line.
    while (len > 0 && (reinterpret_cast<uintptr_t>(d) & 7) != 0) {
        *d = *s;
        flushLine(d);
        ++d;
        ++s;
        --len;
    }
    // Aligned body: 64-bit non-temporal stores.
    while (len >= 8) {
        uint64_t word;
        std::memcpy(&word, s, 8);
        ntStore64(reinterpret_cast<uint64_t *>(d), word);
        d += 8;
        s += 8;
        len -= 8;
    }
    // Tail.
    while (len > 0) {
        *d = *s;
        flushLine(d);
        ++d;
        ++s;
        --len;
    }
}

uint64_t
flushCount()
{
    return flushes.load(std::memory_order_relaxed);
}

uint64_t
ntStoreCount()
{
    return ntStores.load(std::memory_order_relaxed);
}

uint64_t
fenceCount()
{
    return fences.load(std::memory_order_relaxed);
}

void
resetCounters()
{
    flushes.store(0, std::memory_order_relaxed);
    ntStores.store(0, std::memory_order_relaxed);
    fences.store(0, std::memory_order_relaxed);
}

} // namespace wsp::pmem
