/**
 * @file
 * Cache-line flush and non-temporal store primitives.
 *
 * The persistent-heap baselines (paper section 3.2) pay real hardware
 * costs: flushing updated cache lines to memory on commit, writing
 * log records with non-temporal (write-combining) stores that bypass
 * the cache, and fencing for ordering. These wrappers expose the x86
 * instructions (clflush/clflushopt, movnti, sfence) with portable
 * fallbacks, so the Fig. 5 / Table 1 benches measure the same
 * overheads the paper did.
 */

#pragma once

#include <cstddef>
#include <cstdint>

namespace wsp::pmem {

/** Cache line size assumed by the flush primitives. */
constexpr size_t kLineSize = 64;

/** True when the running CPU supports clflushopt (detected once). */
bool haveClflushOpt();

/** Flush (write back + invalidate) the line containing @p addr. */
void flushLine(const void *addr);

/** Flush every line overlapping [addr, addr + len). */
void flushRange(const void *addr, size_t len);

/** Store fence: order preceding flushes/NT stores before later ops. */
void storeFence();

/** Non-temporal 64-bit store (bypasses the cache). */
void ntStore64(uint64_t *dst, uint64_t value);

/**
 * Non-temporal copy of @p len bytes (len and both pointers need not
 * be aligned; unaligned edges fall back to cached stores + flush).
 */
void ntCopy(void *dst, const void *src, size_t len);

/** Number of flushLine calls issued (test/bench instrumentation). */
uint64_t flushCount();

/** Number of ntStore64 words issued (incl. ntCopy bulk). */
uint64_t ntStoreCount();

/** Number of storeFence calls issued. */
uint64_t fenceCount();

/** Reset the instrumentation counters. */
void resetCounters();

} // namespace wsp::pmem
