#include "pheap/redo_log.h"

#include <cstring>

#include "pheap/flush.h"
#include "trace/stat_registry.h"
#include "trace/trace.h"
#include "util/logging.h"

namespace wsp::pmem {

namespace {

trace::Counter &
redoCommitCounter()
{
    static trace::Counter &counter =
        trace::StatRegistry::instance().counter("pheap.redo_commits");
    return counter;
}

trace::Counter &
redoTruncationCounter()
{
    static trace::Counter &counter =
        trace::StatRegistry::instance().counter("pheap.redo_truncations");
    return counter;
}

} // namespace

RedoLog::RedoLog(PersistentRegion &region, bool flush_on_commit,
                 unsigned truncate_every)
    : region_(region),
      log_(region, region.header().redoLogStart,
           region.header().redoLogBytes,
           &region.header().redoCheckpointPos,
           &region.header().redoCheckpointPass, flush_on_commit),
      flushOnCommit_(flush_on_commit), truncateEvery_(truncate_every)
{
    WSP_CHECK(truncateEvery_ >= 1);
}

void
RedoLog::commit(const std::vector<RedoWrite> &writes)
{
    TRACE_SPAN(Pheap, "redo commit");
    log_.appendMarker(LogRecordType::TxnBegin, nextTxnId_);
    for (const RedoWrite &write : writes) {
        log_.appendData(write.target, write.bytes.data(), write.len);
        ++stats_.recordsLogged;
    }
    // The fence orders the data records before the commit marker; a
    // second fence makes the commit durable before we return.
    log_.fence();
    log_.appendMarker(LogRecordType::TxnCommit, nextTxnId_);
    log_.fence();
    if (flushOnCommit_) {
        // Persist point: the Commit marker is durable, so recovery
        // will replay this transaction whatever happens next.
        ++stats_.persistPoints;
        if (persistObserver_)
            persistObserver_(nextTxnId_, /*committed=*/true);
    }
    ++nextTxnId_;
    ++stats_.txnsCommitted;
    redoCommitCounter().add();

    // Apply in place through the cache; durability already holds via
    // the log, so these stores need no immediate flush.
    for (const RedoWrite &write : writes) {
        std::memcpy(region_.at(write.target), write.bytes.data(),
                    write.len);
        if (flushOnCommit_)
            pendingFlush_.emplace_back(write.target, write.len);
    }

    if (flushOnCommit_ && ++commitsSinceTruncate_ >= truncateEvery_)
        truncate();
}

void
RedoLog::truncate()
{
    // Before the ring can be reused, every in-place update covered by
    // it must be durable (paper: "requires a cache line flush at log
    // truncation time").
    lineSet_.clear();
    for (const auto &[target, len] : pendingFlush_) {
        const uint64_t first = target & ~63ull;
        const uint64_t last = (target + len - 1) & ~63ull;
        for (uint64_t line = first; line <= last; line += 64) {
            if (lineSet_.insert(line).second)
                flushLine(region_.at(line));
        }
    }
    storeFence();
    pendingFlush_.clear();
    commitsSinceTruncate_ = 0;
    // Retire the ring content by advancing the persistent scan
    // checkpoint; the dead words are simply never scanned again.
    log_.persistCheckpoint();
    ++stats_.truncations;
    redoTruncationCounter().add();
}

size_t
RedoLog::recover()
{
    const std::vector<LogRecord> records = log_.scan();

    size_t replayed = 0;
    // Replay committed transactions in order; buffer each txn's data
    // records until its Commit marker is seen.
    std::vector<const LogRecord *> current;
    for (const LogRecord &record : records) {
        switch (record.type) {
          case LogRecordType::TxnBegin:
            current.clear();
            break;
          case LogRecordType::Data:
            current.push_back(&record);
            break;
          case LogRecordType::TxnCommit:
            for (const LogRecord *data : current) {
                std::memcpy(region_.at(data->target),
                            data->payload.data(), data->byteLen);
                flushRange(region_.at(data->target), data->byteLen);
                ++replayed;
            }
            current.clear();
            break;
          case LogRecordType::TxnAbort:
            current.clear();
            break;
          default:
            break;
        }
    }
    storeFence();
    log_.reset();
    pendingFlush_.clear();
    commitsSinceTruncate_ = 0;
    return replayed;
}

} // namespace wsp::pmem
