#include "pheap/heap.h"

#include "pheap/flush.h"
#include "trace/stat_registry.h"
#include "util/logging.h"

namespace wsp::pmem {

PHeap::PHeap(PHeapConfig config) : config_(std::move(config))
{
    // The flush primitives keep their own atomic counters; export
    // them as probes so snapshots read them with no hot-path cost.
    auto &registry = trace::StatRegistry::instance();
    registry.registerProbe("pheap.clflush_count", [] {
        return static_cast<double>(flushCount());
    });
    registry.registerProbe("pheap.fence_count", [] {
        return static_cast<double>(fenceCount());
    });
    registry.registerProbe("pheap.ntstore_count", [] {
        return static_cast<double>(ntStoreCount());
    });

    if (config_.path.empty()) {
        region_ = std::make_unique<PersistentRegion>(config_.regionSize);
    } else {
        region_ = std::make_unique<PersistentRegion>(config_.path,
                                                     config_.regionSize);
    }
    undo_ = std::make_unique<UndoLog>(*region_, config_.durableLogs);
    redo_ = std::make_unique<RedoLog>(*region_, config_.durableLogs,
                                      config_.redoTruncateEvery);

    openReport_.recovered = region_->recovered();
    openReport_.cleanShutdown = region_->wasCleanShutdown();
    if (region_->recovered() && !region_->wasCleanShutdown()) {
        // Crash recovery: replay committed redo, roll back in-flight
        // undo. The two logs serve disjoint policies, so order does
        // not matter; run both.
        openReport_.redoRecordsApplied = redo_->recover();
        openReport_.undoRecordsApplied = undo_->recover();
        inform("pheap: recovered (%zu redo, %zu undo records)",
               openReport_.redoRecordsApplied,
               openReport_.undoRecordsApplied);
    }
}

uint64_t
PHeap::classSize(unsigned size_class)
{
    WSP_CHECK(size_class < kSizeClasses);
    return 16ull << size_class;
}

unsigned
PHeap::sizeClassFor(uint64_t bytes)
{
    WSP_CHECKF(bytes <= classSize(kSizeClasses - 1),
               "allocation of %llu bytes exceeds the largest size class",
               static_cast<unsigned long long>(bytes));
    unsigned size_class = 0;
    while (classSize(size_class) < bytes)
        ++size_class;
    return size_class;
}

} // namespace wsp::pmem
