/**
 * @file
 * Redo log over the torn-bit ring (Mnemosyne-style).
 *
 * Mnemosyne (the NV-heap the paper benchmarks against) records each
 * transactional write in the transaction's write set; at commit time
 * it streams the new values into a persistent redo log with
 * non-temporal stores and a fence, after which the transaction is
 * durable and the values are written back in place through the cache.
 * The in-place lines are flushed lazily at *log truncation* so their
 * cost is amortized across transactions (paper section 3.2).
 *
 * Recovery replays the new values of every committed transaction that
 * might not have reached memory in place.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "pheap/tornbit_log.h"

namespace wsp::pmem {

/** One write-set entry: new bytes for a target range. */
struct RedoWrite
{
    Offset target = 0;
    uint32_t len = 0;
    std::vector<uint8_t> bytes;
};

/** Redo-log statistics. */
struct RedoLogStats
{
    uint64_t txnsCommitted = 0;
    uint64_t truncations = 0;
    uint64_t recordsLogged = 0;
    /// Transactions whose persist point was reached (durable mode:
    /// Commit marker fenced into the log).
    uint64_t persistPoints = 0;
};

/** Per-heap redo log. Not thread-safe. */
class RedoLog
{
  public:
    /**
     * @param truncate_every flush in-place lines and checkpoint the
     *        ring after this many commits (amortization factor).
     */
    RedoLog(PersistentRegion &region, bool flush_on_commit,
            unsigned truncate_every = 64);

    const RedoLogStats &stats() const { return stats_; }

    /** The backing ring; crash sweeps read positions to tear at. */
    const TornBitLog &log() const { return log_; }

    /**
     * Commit a write set: append Begin + Data records + Commit with
     * NT stores, fence so the Commit is ordered after the data, then
     * apply the values in place through the cache. Lines are flushed
     * lazily at truncation.
     */
    void commit(const std::vector<RedoWrite> &writes);

    /**
     * Crash recovery: re-apply the new values of every committed
     * transaction in the ring, skip the uncommitted tail. Resets the
     * ring afterwards.
     * @return number of data records replayed.
     */
    size_t recover();

    /**
     * Observe each transaction's persist point: for a redo log that
     * is the commit-marker fence — the new values are durable in the
     * log even before they land in place. Durable mode only (see
     * UndoLog::setPersistObserver).
     */
    void setPersistObserver(
        std::function<void(uint64_t txn_id, bool committed)> observer)
    {
        persistObserver_ = std::move(observer);
    }

  private:
    void truncate();

    PersistentRegion &region_;
    TornBitLog log_;
    bool flushOnCommit_;
    unsigned truncateEvery_;
    unsigned commitsSinceTruncate_ = 0;
    uint64_t nextTxnId_ = 1;
    RedoLogStats stats_;
    std::function<void(uint64_t, bool)> persistObserver_;

    /** In-place ranges written since the last truncation. */
    std::vector<std::pair<Offset, uint32_t>> pendingFlush_;

    /** Scratch set for truncation-time line deduplication. */
    std::unordered_set<uint64_t> lineSet_;
};

} // namespace wsp::pmem
