/**
 * @file
 * Persistent heap: region + allocator + logs + STM runtime.
 *
 * One PHeap is the NV-heap a server application links against (paper
 * section 3.2). Its durability mode is fixed at construction:
 *
 *  - durable_logs = true  -> flush-on-commit: log appends use NT
 *    stores + fences, commits flush updated lines (the persistent-
 *    heap baselines the paper measures),
 *  - durable_logs = false -> flush-on-fail: the same code paths run
 *    entirely in-cache; durability comes from WSP's failure-time
 *    flush instead.
 *
 * Concurrency/consistency instrumentation (none, undo log, STM) is
 * chosen per transaction through the policy types in policies.h,
 * giving the five configurations of Fig. 5.
 */

#pragma once

#include <memory>
#include <string>

#include "pheap/redo_log.h"
#include "pheap/region.h"
#include "pheap/stm.h"
#include "pheap/undo_log.h"

namespace wsp::pmem {

/** Persistent heap configuration. */
struct PHeapConfig
{
    uint64_t regionSize = 64ull * 1024 * 1024;
    std::string path;        ///< empty = anonymous (bench) region
    bool durableLogs = true; ///< flush-on-commit when true
    unsigned redoTruncateEvery = 64;
};

/** Outcome of opening a heap (recovery report). */
struct HeapOpenReport
{
    bool recovered = false;      ///< region pre-existed
    bool cleanShutdown = false;  ///< no recovery was necessary
    size_t undoRecordsApplied = 0;
    size_t redoRecordsApplied = 0;
};

/** A persistent heap with a size-class allocator. */
class PHeap
{
  public:
    explicit PHeap(PHeapConfig config);

    const PHeapConfig &config() const { return config_; }
    bool durableLogs() const { return config_.durableLogs; }
    PersistentRegion &region() { return *region_; }
    UndoLog &undoLog() { return *undo_; }
    RedoLog &redoLog() { return *redo_; }
    StmRuntime &stm() { return stm_; }
    const HeapOpenReport &openReport() const { return openReport_; }

    /** Application root object offset (kNullOffset when unset). */
    Offset rootObject() const { return region_->header().rootObject; }

    /** Set the root through a transaction policy Tx. */
    template <typename Tx>
    void
    setRootObject(Tx &tx, Offset root)
    {
        tx.write(&region_->header().rootObject, root);
    }

    /** Number of size classes (16 B ... 512 KiB). */
    static constexpr unsigned kSizeClasses = 16;

    /** Rounded allocation size of a class. */
    static uint64_t classSize(unsigned size_class);

    /** Size class serving @p bytes. */
    static unsigned sizeClassFor(uint64_t bytes);

    /**
     * Allocate @p bytes (rounded to a size class) through @p tx, so
     * allocator metadata updates inherit the transaction's crash
     * consistency. Returns the block's offset.
     */
    template <typename Tx>
    Offset
    alloc(Tx &tx, uint64_t bytes)
    {
        const unsigned size_class = sizeClassFor(bytes);
        RegionHeader &h = region_->header();
        const Offset head = tx.read(&h.freeListHeads[size_class]);
        if (head != kNullOffset) {
            const Offset next = tx.read(region_->at<Offset>(head));
            tx.write(&h.freeListHeads[size_class], next);
            return head;
        }
        const Offset cursor = tx.read(&h.bumpCursor);
        const uint64_t block = classSize(size_class);
        WSP_CHECKF(cursor + block <= region_->size(),
                   "persistent heap exhausted (%llu of %llu bytes)",
                   static_cast<unsigned long long>(cursor),
                   static_cast<unsigned long long>(region_->size()));
        tx.write(&h.bumpCursor, cursor + block);
        return cursor;
    }

    /** Return a block to its size class's free list through @p tx. */
    template <typename Tx>
    void
    free(Tx &tx, Offset block, uint64_t bytes)
    {
        WSP_CHECK(block != kNullOffset);
        const unsigned size_class = sizeClassFor(bytes);
        RegionHeader &h = region_->header();
        const Offset head = tx.read(&h.freeListHeads[size_class]);
        tx.write(region_->at<Offset>(block), head);
        tx.write(&h.freeListHeads[size_class], block);
    }

    /** Bytes consumed from the heap area so far. */
    uint64_t
    heapBytesUsed() const
    {
        return region_->header().bumpCursor - region_->header().heapStart;
    }

    /** Mark a clean shutdown (skips recovery on next open). */
    void close() { region_->markCleanShutdown(); }

  private:
    PHeapConfig config_;
    std::unique_ptr<PersistentRegion> region_;
    std::unique_ptr<UndoLog> undo_;
    std::unique_ptr<RedoLog> redo_;
    StmRuntime stm_;
    HeapOpenReport openReport_;
};

} // namespace wsp::pmem
