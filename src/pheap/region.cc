#include "pheap/region.h"

#include <cstring>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "pheap/flush.h"
#include "util/logging.h"

namespace wsp::pmem {

namespace {

/** Default log ring sizes within a region. */
constexpr uint64_t kDefaultLogBytes = 4ull * 1024 * 1024;
constexpr uint64_t kHeaderReserve = 4096;

} // namespace

PersistentRegion::PersistentRegion(const std::string &path, uint64_t size)
    : size_(size)
{
    WSP_CHECK(size_ >= kHeaderReserve + 2 * kDefaultLogBytes + 4096);

    struct stat st = {};
    const bool existed = ::stat(path.c_str(), &st) == 0 &&
                         static_cast<uint64_t>(st.st_size) == size;

    fd_ = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
    if (fd_ < 0)
        fatal("cannot open persistent region '%s'", path.c_str());
    if (::ftruncate(fd_, static_cast<off_t>(size)) != 0)
        fatal("cannot size persistent region '%s'", path.c_str());

    void *mapped = ::mmap(nullptr, size, PROT_READ | PROT_WRITE,
                          MAP_SHARED, fd_, 0);
    if (mapped == MAP_FAILED)
        fatal("cannot map persistent region '%s'", path.c_str());
    base_ = static_cast<uint8_t *>(mapped);

    if (existed && header().magic == RegionHeader::kMagic) {
        openExisting();
    } else {
        initializeHeader(size);
    }
}

PersistentRegion::PersistentRegion(uint64_t size) : size_(size)
{
    WSP_CHECK(size_ >= kHeaderReserve + 2 * kDefaultLogBytes + 4096);
    void *mapped = ::mmap(nullptr, size, PROT_READ | PROT_WRITE,
                          MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (mapped == MAP_FAILED)
        fatal("cannot map anonymous persistent region");
    base_ = static_cast<uint8_t *>(mapped);
    initializeHeader(size);
}

PersistentRegion::~PersistentRegion()
{
    if (base_ != nullptr)
        ::munmap(base_, size_);
    if (fd_ >= 0)
        ::close(fd_);
}

void
PersistentRegion::initializeHeader(uint64_t size)
{
    std::memset(base_, 0, kHeaderReserve);
    RegionHeader &h = header();
    h.magic = RegionHeader::kMagic;
    h.version = RegionHeader::kVersion;
    h.size = size;
    h.undoLogStart = kHeaderReserve;
    h.undoLogBytes = kDefaultLogBytes;
    h.redoLogStart = h.undoLogStart + h.undoLogBytes;
    h.redoLogBytes = kDefaultLogBytes;
    h.heapStart = h.redoLogStart + h.redoLogBytes;
    h.rootObject = kNullOffset;
    h.cleanShutdown = 0;
    h.bumpCursor = h.heapStart;
    // Log rings start zeroed; pass 1 writes phase bit 1 so untouched
    // words scan as "not written".
    std::memset(base_ + h.undoLogStart, 0,
                h.undoLogBytes + h.redoLogBytes);
    h.undoCheckpointPos = 0;
    h.undoCheckpointPass = 1;
    h.redoCheckpointPos = 0;
    h.redoCheckpointPass = 1;
    flushRange(&h, sizeof(h));
    storeFence();
    recovered_ = false;
    wasClean_ = false;
}

void
PersistentRegion::openExisting()
{
    RegionHeader &h = header();
    WSP_CHECK(h.version == RegionHeader::kVersion);
    WSP_CHECK(h.size == size_);
    recovered_ = true;
    wasClean_ = h.cleanShutdown != 0;
    // Any crash between now and markCleanShutdown() must look dirty.
    h.cleanShutdown = 0;
    flushRange(&h.cleanShutdown, sizeof(h.cleanShutdown));
    storeFence();
}

Offset
PersistentRegion::offsetOf(const void *ptr) const
{
    const auto *p = static_cast<const uint8_t *>(ptr);
    WSP_CHECK(p >= base_ && p < base_ + size_);
    return static_cast<Offset>(p - base_);
}

void
PersistentRegion::markCleanShutdown()
{
    RegionHeader &h = header();
    h.cleanShutdown = 1;
    flushRange(&h.cleanShutdown, sizeof(h.cleanShutdown));
    storeFence();
}

} // namespace wsp::pmem
