/**
 * @file
 * Transaction policies: the five configurations of paper Fig. 5.
 *
 * Applications are templated over a Policy so each configuration
 * compiles to exactly the code it would have in a real system:
 *
 *  - RawPolicy           plain loads/stores (FoF when the heap is
 *                        in-cache; meaningless with durable logs)
 *  - UndoPolicy          undo logging around in-place updates
 *                        (FoC + UL with a durable heap,
 *                         FoF + UL with an in-cache heap)
 *  - StmPolicy           read/write-set instrumentation + commit
 *                        validation (FoC + STM with a durable heap —
 *                         the Mnemosyne configuration — and
 *                         FoF + STM with an in-cache heap)
 *
 * A Policy provides:
 *   Policy::run(heap, body)  — run `body(Tx&)` transactionally
 *   Tx::read(ptr) / Tx::write(ptr, value)
 *   Tx::alloc(bytes) / Tx::free(offset, bytes)
 * with word-sized (<= 8 byte) values.
 */

#pragma once

#include <type_traits>
#include <utility>

#include "pheap/heap.h"

namespace wsp::pmem {

/** No instrumentation at all: the flush-on-fail fast path. */
struct RawPolicy
{
    static constexpr const char *kName = "raw";

    class Tx
    {
      public:
        explicit Tx(PHeap &heap) : heap_(heap) {}

        template <typename T>
        T
        read(const T *ptr) const
        {
            return *ptr;
        }

        template <typename T>
        void
        write(T *ptr, T value)
        {
            *ptr = value;
        }

        Offset alloc(uint64_t bytes) { return heap_.alloc(*this, bytes); }
        void free(Offset block, uint64_t bytes)
        {
            heap_.free(*this, block, bytes);
        }

        PHeap &heap() { return heap_; }

      private:
        PHeap &heap_;
    };

    template <typename Body>
    static void
    run(PHeap &heap, Body &&body)
    {
        Tx tx(heap);
        std::forward<Body>(body)(tx);
    }
};

/** Undo logging: crash consistency without isolation. */
struct UndoPolicy
{
    static constexpr const char *kName = "undo";

    class Tx
    {
      public:
        explicit Tx(PHeap &heap) : heap_(heap), log_(heap.undoLog()) {}

        template <typename T>
        T
        read(const T *ptr) const
        {
            return *ptr; // reads are not instrumented
        }

        template <typename T>
        void
        write(T *ptr, T value)
        {
            // Write-ahead: log the old value, then update in place.
            log_.logOldValue(ptr, sizeof(T));
            *ptr = value;
        }

        Offset alloc(uint64_t bytes) { return heap_.alloc(*this, bytes); }
        void free(Offset block, uint64_t bytes)
        {
            heap_.free(*this, block, bytes);
        }

        PHeap &heap() { return heap_; }

      private:
        PHeap &heap_;
        UndoLog &log_;
    };

    template <typename Body>
    static void
    run(PHeap &heap, Body &&body)
    {
        heap.undoLog().txBegin();
        Tx tx(heap);
        std::forward<Body>(body)(tx);
        heap.undoLog().txCommit();
    }
};

/** STM instrumentation: isolation, with durability via the redo log. */
struct StmPolicy
{
    static constexpr const char *kName = "stm";

    class Tx
    {
      public:
        Tx(PHeap &heap, StmTx &stx) : heap_(heap), stx_(stx) {}

        template <typename T>
        T
        read(const T *ptr) const
        {
            return stx_.read(ptr);
        }

        template <typename T>
        void
        write(T *ptr, T value)
        {
            stx_.write(ptr, value);
        }

        Offset alloc(uint64_t bytes) { return heap_.alloc(*this, bytes); }
        void free(Offset block, uint64_t bytes)
        {
            heap_.free(*this, block, bytes);
        }

        PHeap &heap() { return heap_; }

      private:
        PHeap &heap_;
        StmTx &stx_;
    };

    template <typename Body>
    static void
    run(PHeap &heap, Body &&body)
    {
        RedoLog *redo = heap.durableLogs() ? &heap.redoLog() : nullptr;
        runStmTransaction(heap.stm(), redo, &heap.region(),
                          [&](StmTx &stx) {
            Tx tx(heap, stx);
            body(tx);
        });
    }
};

/** Human-readable name of a (policy, heap-durability) combination. */
template <typename Policy>
const char *
configName(const PHeap &heap)
{
    const bool foc = heap.durableLogs();
    if constexpr (std::is_same_v<Policy, RawPolicy>)
        return foc ? "FoC (raw?)" : "FoF";
    else if constexpr (std::is_same_v<Policy, UndoPolicy>)
        return foc ? "FoC + UL" : "FoF + UL";
    else
        return foc ? "FoC + STM" : "FoF + STM";
}

} // namespace wsp::pmem
