/**
 * @file
 * Minimal JSON parser for validating exporter output.
 *
 * The trace/metrics exporters emit JSON; the tests and the ctest
 * smoke checker parse it back to prove the output is well-formed
 * without adding a third-party dependency. Supports the full JSON
 * grammar the exporters produce: objects, arrays, strings with
 * escapes, numbers, booleans, null, \uXXXX escapes (including
 * surrogate pairs, decoded to UTF-8). Header-only, test/tool support —
 * not a general-purpose parser (doubles only).
 */

#pragma once

#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace wsp::trace::json {

/** One parsed JSON value (tree). */
struct Value
{
    enum class Type { Null, Bool, Number, String, Array, Object };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<Value> array;
    std::map<std::string, Value> object;

    bool isObject() const { return type == Type::Object; }
    bool isArray() const { return type == Type::Array; }

    /** Object member lookup; nullptr when absent or not an object. */
    const Value *
    find(const std::string &key) const
    {
        if (type != Type::Object)
            return nullptr;
        auto it = object.find(key);
        return it == object.end() ? nullptr : &it->second;
    }
};

/** Recursive-descent parser over a string. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    /** Parse one document; @return false on any syntax error. */
    bool
    parse(Value *out)
    {
        pos_ = 0;
        if (!parseValue(out))
            return false;
        skipSpace();
        return pos_ == text_.size();
    }

  private:
    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
    }

    bool
    literal(const char *word)
    {
        const size_t len = std::string(word).size();
        if (text_.compare(pos_, len, word) != 0)
            return false;
        pos_ += len;
        return true;
    }

    bool
    parseValue(Value *out)
    {
        skipSpace();
        if (pos_ >= text_.size())
            return false;
        const char c = text_[pos_];
        switch (c) {
          case '{':
            return parseObject(out);
          case '[':
            return parseArray(out);
          case '"':
            out->type = Value::Type::String;
            return parseString(&out->string);
          case 't':
            out->type = Value::Type::Bool;
            out->boolean = true;
            return literal("true");
          case 'f':
            out->type = Value::Type::Bool;
            out->boolean = false;
            return literal("false");
          case 'n':
            out->type = Value::Type::Null;
            return literal("null");
          default:
            return parseNumber(out);
        }
    }

    bool
    parseString(std::string *out)
    {
        if (text_[pos_] != '"')
            return false;
        ++pos_;
        out->clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out->push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                return false;
            const char esc = text_[pos_++];
            switch (esc) {
              case '"': out->push_back('"'); break;
              case '\\': out->push_back('\\'); break;
              case '/': out->push_back('/'); break;
              case 'b': out->push_back('\b'); break;
              case 'f': out->push_back('\f'); break;
              case 'n': out->push_back('\n'); break;
              case 'r': out->push_back('\r'); break;
              case 't': out->push_back('\t'); break;
              case 'u': {
                uint32_t code = 0;
                if (!readHex4(&code))
                    return false;
                if (code >= 0xd800 && code <= 0xdbff) {
                    // High surrogate: must pair with an escaped low
                    // surrogate; combine into one code point.
                    if (pos_ + 6 > text_.size() ||
                        text_[pos_] != '\\' || text_[pos_ + 1] != 'u')
                        return false;
                    pos_ += 2;
                    uint32_t low = 0;
                    if (!readHex4(&low) || low < 0xdc00 ||
                        low > 0xdfff)
                        return false;
                    code = 0x10000 + ((code - 0xd800) << 10) +
                           (low - 0xdc00);
                } else if (code >= 0xdc00 && code <= 0xdfff) {
                    return false; // lone low surrogate
                }
                appendUtf8(out, code);
                break;
              }
              default:
                return false;
            }
        }
        return false;
    }

    /** Four hex digits of a \uXXXX escape. */
    bool
    readHex4(uint32_t *code)
    {
        if (pos_ + 4 > text_.size())
            return false;
        uint32_t value = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = text_[pos_ + static_cast<size_t>(i)];
            value <<= 4;
            if (c >= '0' && c <= '9')
                value |= static_cast<uint32_t>(c - '0');
            else if (c >= 'a' && c <= 'f')
                value |= static_cast<uint32_t>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                value |= static_cast<uint32_t>(c - 'A' + 10);
            else
                return false;
        }
        pos_ += 4;
        *code = value;
        return true;
    }

    /** Append one Unicode code point as UTF-8. */
    static void
    appendUtf8(std::string *out, uint32_t code)
    {
        if (code < 0x80) {
            out->push_back(static_cast<char>(code));
        } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xc0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
        } else if (code < 0x10000) {
            out->push_back(static_cast<char>(0xe0 | (code >> 12)));
            out->push_back(
                static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
        } else {
            out->push_back(static_cast<char>(0xf0 | (code >> 18)));
            out->push_back(
                static_cast<char>(0x80 | ((code >> 12) & 0x3f)));
            out->push_back(
                static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
        }
    }

    bool
    parseNumber(Value *out)
    {
        const size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            ++pos_;
        }
        if (pos_ == start)
            return false;
        const std::string token = text_.substr(start, pos_ - start);
        char *end = nullptr;
        out->type = Value::Type::Number;
        out->number = std::strtod(token.c_str(), &end);
        return end == token.c_str() + token.size();
    }

    bool
    parseObject(Value *out)
    {
        out->type = Value::Type::Object;
        ++pos_; // '{'
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipSpace();
            std::string key;
            if (pos_ >= text_.size() || !parseString(&key))
                return false;
            skipSpace();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return false;
            ++pos_;
            Value value;
            if (!parseValue(&value))
                return false;
            out->object.emplace(std::move(key), std::move(value));
            skipSpace();
            if (pos_ >= text_.size())
                return false;
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    parseArray(Value *out)
    {
        out->type = Value::Type::Array;
        ++pos_; // '['
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            Value value;
            if (!parseValue(&value))
                return false;
            out->array.push_back(std::move(value));
            skipSpace();
            if (pos_ >= text_.size())
                return false;
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    const std::string &text_;
    size_t pos_ = 0;
};

/** Convenience one-shot parse. */
inline bool
parse(const std::string &text, Value *out)
{
    return Parser(text).parse(out);
}

} // namespace wsp::trace::json
