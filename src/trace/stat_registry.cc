#include "trace/stat_registry.h"

namespace wsp::trace {

StatRegistry &
StatRegistry::instance()
{
    static StatRegistry registry;
    return registry;
}

Counter &
StatRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
StatRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

void
StatRegistry::registerProbe(const std::string &name,
                            std::function<double()> probe)
{
    std::lock_guard<std::mutex> lock(mutex_);
    probes_[name] = std::move(probe);
}

std::vector<StatRegistry::Sample>
StatRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    // The three maps are name-sorted and the namespaces rarely
    // collide; merge into one sorted list.
    std::map<std::string, double> merged;
    for (const auto &[name, counter] : counters_)
        merged[name] = static_cast<double>(counter->value());
    for (const auto &[name, gauge] : gauges_)
        merged[name] = gauge->value();
    for (const auto &[name, probe] : probes_)
        merged[name] = probe();

    std::vector<Sample> out;
    out.reserve(merged.size());
    for (const auto &[name, value] : merged)
        out.push_back(Sample{name, value});
    return out;
}

size_t
StatRegistry::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::map<std::string, double> merged;
    for (const auto &[name, counter] : counters_)
        merged[name] = static_cast<double>(counter->value());
    for (const auto &[name, gauge] : gauges_)
        merged[name] = gauge->value();
    for (const auto &[name, probe] : probes_)
        merged[name] = 0.0;
    return merged.size();
}

void
StatRegistry::resetForTest()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &[name, counter] : counters_)
        counter->reset();
    for (auto &[name, gauge] : gauges_)
        gauge->set(0.0);
}

void
StatRegistry::resetPrefixes(const std::vector<std::string> &prefixes)
{
    const auto matches = [&prefixes](const std::string &name) {
        for (const std::string &prefix : prefixes) {
            if (name.rfind(prefix, 0) == 0)
                return true;
        }
        return false;
    };
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &[name, counter] : counters_) {
        if (matches(name))
            counter->reset();
    }
    for (auto &[name, gauge] : gauges_) {
        if (matches(name))
            gauge->set(0.0);
    }
}

} // namespace wsp::trace
