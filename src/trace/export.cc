#include "trace/export.h"

#include <cmath>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <set>
#include <unistd.h>

#include "trace/stat_registry.h"
#include "trace/trace.h"
#include "util/logging.h"

namespace wsp::trace {

namespace {

// Chrome trace-event pids: one fake "process" per timebase so
// Perfetto never mixes simulated and host timestamps on one track.
constexpr int kSimPid = 1;
constexpr int kHostPid = 2;

const char *
phaseLetter(Phase phase)
{
    switch (phase) {
      case Phase::Begin:
        return "B";
      case Phase::End:
        return "E";
      case Phase::Instant:
        return "i";
      case Phase::Counter:
        return "C";
    }
    return "i";
}

/** Format a double as minimal JSON (no NaN/Inf, no trailing zeros). */
std::string
jsonNumber(double value)
{
    if (!std::isfinite(value))
        return "0";
    if (value == static_cast<double>(static_cast<int64_t>(value))) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(value));
        return buf;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return buf;
}

std::string
hostName()
{
    char buf[256] = {};
    if (gethostname(buf, sizeof(buf) - 1) != 0)
        return "unknown";
    return buf;
}

bool
writeFile(const std::string &path, const std::string &content,
          const char *what)
{
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
        warn("cannot open %s output file '%s'", what, path.c_str());
        return false;
    }
    out << content;
    out.close();
    return static_cast<bool>(out);
}

} // namespace

std::string
jsonQuote(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 2);
    out.push_back('"');
    for (const char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c) & 0xff);
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
    return out;
}

std::string
chromeTraceJson()
{
    auto &manager = TraceManager::instance();
    const std::vector<Record> records = manager.snapshot();

    // Host timestamps are steady-clock ns since boot; rebase to the
    // earliest record so the Perfetto timeline starts near zero.
    uint64_t host_base = 0;
    bool have_host_base = false;
    for (const Record &record : records) {
        if (!record.hasSimTick &&
            (!have_host_base || record.wallNs < host_base)) {
            host_base = record.wallNs;
            have_host_base = true;
        }
    }

    std::string out;
    out.reserve(records.size() * 96 + 1024);
    out += "{\"traceEvents\":[\n";

    // Metadata: name the two timebase "processes" and each category
    // "thread" actually used, so the Perfetto tracks are labelled.
    out += "{\"ph\":\"M\",\"pid\":1,\"tid\":0,"
           "\"name\":\"process_name\",\"args\":{\"name\":"
           "\"simulated time (1us = 1000 ticks)\"}}";
    out += ",\n{\"ph\":\"M\",\"pid\":2,\"tid\":0,"
           "\"name\":\"process_name\",\"args\":{\"name\":"
           "\"host wall clock\"}}";
    std::set<std::pair<int, int>> seen_tracks;
    for (const Record &record : records) {
        const int pid = record.hasSimTick ? kSimPid : kHostPid;
        const int tid = static_cast<int>(record.category);
        if (!seen_tracks.insert({pid, tid}).second)
            continue;
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      ",\n{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,"
                      "\"name\":\"thread_name\",\"args\":{\"name\":"
                      "\"%s\"}}",
                      pid, tid, categoryName(record.category));
        out += buf;
    }

    for (const Record &record : records) {
        const int pid = record.hasSimTick ? kSimPid : kHostPid;
        const int tid = static_cast<int>(record.category);
        // ts is in microseconds; ticks are simulated ns.
        const uint64_t ns = record.hasSimTick
                                ? record.simTick
                                : record.wallNs - host_base;
        char ts[48];
        std::snprintf(ts, sizeof(ts), "%llu.%03u",
                      static_cast<unsigned long long>(ns / 1000),
                      static_cast<unsigned>(ns % 1000));

        out += ",\n{\"name\":";
        out += jsonQuote(record.name);
        out += ",\"cat\":\"";
        out += categoryName(record.category);
        out += "\",\"ph\":\"";
        out += phaseLetter(record.phase);
        out += "\",\"ts\":";
        out += ts;
        char ids[48];
        std::snprintf(ids, sizeof(ids), ",\"pid\":%d,\"tid\":%d", pid,
                      tid);
        out += ids;
        if (record.phase == Phase::Counter) {
            out += ",\"args\":{\"value\":";
            out += jsonNumber(record.value);
            out += "}";
        } else if (record.phase == Phase::Instant) {
            out += ",\"s\":\"g\"";
        }
        out += "}";
    }

    out += "\n],\"displayTimeUnit\":\"ns\",\"otherData\":{";
    out += "\"recordsEmitted\":" +
           jsonNumber(static_cast<double>(manager.totalEmitted()));
    out += ",\"recordsDropped\":" +
           jsonNumber(static_cast<double>(manager.dropped()));
    out += ",\"ringCapacity\":" +
           jsonNumber(static_cast<double>(manager.capacity()));
    out += "}}\n";
    return out;
}

std::string
metricsJson()
{
    const auto samples = StatRegistry::instance().snapshot();
    std::string out = "{\n";
    bool first = true;
    for (const auto &sample : samples) {
        if (!first)
            out += ",\n";
        first = false;
        out += "  " + jsonQuote(sample.name) + ": " +
               jsonNumber(sample.value);
    }
    out += "\n}\n";
    return out;
}

std::string
metricsCsv()
{
    const auto samples = StatRegistry::instance().snapshot();
    std::string out = "name,value\n";
    for (const auto &sample : samples) {
        // Stat names are dotted identifiers: no quoting needed.
        out += sample.name + "," + jsonNumber(sample.value) + "\n";
    }
    return out;
}

bool
writeChromeTrace(const std::string &path)
{
    return writeFile(path, chromeTraceJson(), "trace");
}

bool
writeMetrics(const std::string &path)
{
    const bool csv = path.size() >= 4 &&
                     path.compare(path.size() - 4, 4, ".csv") == 0;
    return writeFile(path, csv ? metricsCsv() : metricsJson(),
                     "metrics");
}

bool
appendBenchRecord(const std::string &path, const std::string &bench,
                  double wall_seconds, uint64_t seed)
{
    return appendBenchRecord(path, bench, wall_seconds, seed,
                             BenchRecordFields{});
}

bool
appendBenchRecord(const std::string &path, const std::string &bench,
                  double wall_seconds, uint64_t seed,
                  const BenchRecordFields &fields)
{
    std::ofstream out(path, std::ios::app);
    if (!out) {
        warn("cannot open bench-record file '%s'", path.c_str());
        return false;
    }

    char stamp[32] = "unknown";
    const std::time_t now = std::time(nullptr);
    std::tm tm_utc{};
    if (gmtime_r(&now, &tm_utc) != nullptr)
        std::strftime(stamp, sizeof(stamp), "%Y-%m-%dT%H:%M:%SZ",
                      &tm_utc);

    std::string line = "{\"bench\":" + jsonQuote(bench);
    line += ",\"host\":" + jsonQuote(hostName());
    line += ",\"utc\":" + jsonQuote(stamp);
    line += ",\"wall_seconds\":" + jsonNumber(wall_seconds);
    // to_string, not jsonNumber: seeds are full 64-bit values and
    // must not round-trip through a double.
    line += ",\"seed\":" + std::to_string(seed);
    // Extra top-level fields (fleet_storm: nodes/replication). Emitted
    // as integers for the same reason as the seed.
    for (const auto &[name, value] : fields)
        line += "," + jsonQuote(name) + ":" + std::to_string(value);
    line += ",\"counters\":{";
    bool first = true;
    for (const auto &sample : StatRegistry::instance().snapshot()) {
        if (!first)
            line += ",";
        first = false;
        line += jsonQuote(sample.name) + ":" + jsonNumber(sample.value);
    }
    line += "}}\n";
    out << line;
    out.close();
    return static_cast<bool>(out);
}

} // namespace wsp::trace
