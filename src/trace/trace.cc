#include "trace/trace.h"

#include <chrono>
#include <cstdlib>
#include <cstring>

#include "trace/stat_registry.h"
#include "util/logging.h"

namespace wsp::trace {

namespace detail {
std::atomic<uint32_t> g_enabledMask{0};
} // namespace detail

namespace {

constexpr size_t kDefaultCapacity = 65536;

uint64_t
wallNowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

const char *
categoryName(Category category)
{
    switch (category) {
      case Category::Core:
        return "core";
      case Category::Nvram:
        return "nvram";
      case Category::Power:
        return "power";
      case Category::Pheap:
        return "pheap";
      case Category::Machine:
        return "machine";
      case Category::Devices:
        return "devices";
      case Category::Apps:
        return "apps";
      case Category::Crashsim:
        return "crashsim";
    }
    return "unknown";
}

bool
parseCategoryList(const char *list, uint32_t *mask_out)
{
    *mask_out = 0;
    if (list == nullptr || *list == '\0')
        return true;
    const std::string text(list);
    size_t pos = 0;
    while (pos < text.size()) {
        size_t comma = text.find(',', pos);
        if (comma == std::string::npos)
            comma = text.size();
        const std::string token = text.substr(pos, comma - pos);
        pos = comma + 1;
        if (token.empty())
            continue;
        if (token == "all") {
            *mask_out = kAllCategories;
            continue;
        }
        bool found = false;
        for (unsigned i = 0; i < kCategoryCount; ++i) {
            if (token == categoryName(static_cast<Category>(i))) {
                *mask_out |= 1u << i;
                found = true;
                break;
            }
        }
        if (!found)
            return false;
    }
    return true;
}

TraceManager &
TraceManager::instance()
{
    static TraceManager manager;
    return manager;
}

TraceManager::TraceManager()
    : ring_(kDefaultCapacity, util::ArenaAllocator<Record>(&ringArena_))
{
    // Surface ring overwrites without adding hot-path cost: the
    // exporter polls this probe at snapshot time.
    StatRegistry::instance().registerProbe("trace.dropped", [this] {
        return static_cast<double>(dropped());
    });
}

void
TraceManager::enable(uint32_t mask)
{
    detail::g_enabledMask.store(mask & kAllCategories,
                                std::memory_order_relaxed);
    // Tracing doubles as a debug-message sink: with any category
    // active, debugLog() lines become instant events on the trace.
    if ((mask & kAllCategories) != 0) {
        setDebugSink([](const char *message) {
            TraceManager::instance().emit(Category::Apps, Phase::Instant,
                                          message);
        });
    } else {
        setDebugSink(nullptr);
    }
}

bool
TraceManager::configureFromEnv()
{
    const char *capacity_env = std::getenv("WSP_TRACE_CAPACITY");
    if (capacity_env != nullptr) {
        const long parsed = std::atol(capacity_env);
        if (parsed > 0)
            setCapacity(static_cast<size_t>(parsed));
    }

    const char *list = std::getenv("WSP_TRACE");
    if (list == nullptr) {
#if defined(WSP_TRACE_DEFAULT_ON)
        enableAll();
        return true;
#else
        return enabledMask() != 0;
#endif
    }
    uint32_t mask = 0;
    if (!parseCategoryList(list, &mask)) {
        warn("WSP_TRACE=%s contains an unknown category; expected a "
             "comma list of core,nvram,power,pheap,machine,devices,"
             "apps,crashsim or 'all'",
             list);
        return enabledMask() != 0;
    }
    enable(mask);
    return mask != 0;
}

uint32_t
TraceManager::enabledMask() const
{
    return detail::g_enabledMask.load(std::memory_order_relaxed);
}

void
TraceManager::setCapacity(size_t records)
{
    WSP_CHECK(records >= 1);
    // Drop the old ring first, then recycle the arena's chunks: the
    // fresh ring bump-allocates straight back into the same memory
    // (ArenaAllocator::deallocate is a no-op, so reset() is how the
    // arena reclaims).
    ring_.clear();
    ring_.shrink_to_fit();
    ringArena_.reset();
    ring_.resize(records);
    next_.store(0, std::memory_order_relaxed);
}

void
TraceManager::setTickSource(const void *owner,
                            std::function<uint64_t()> now)
{
    tickOwner_ = owner;
    tickSource_ = std::move(now);
}

void
TraceManager::clearTickSource(const void *owner)
{
    if (tickOwner_ != owner)
        return;
    tickOwner_ = nullptr;
    tickSource_ = nullptr;
}

void
TraceManager::emit(Category category, Phase phase, const char *name,
                   double value)
{
    if (!enabled(category))
        return;
    uint64_t sim_tick = 0;
    bool has_sim_tick = false;
    if (tickSource_) {
        sim_tick = tickSource_();
        has_sim_tick = true;
    }
    store(category, phase, name, sim_tick, has_sim_tick, value);
}

void
TraceManager::emitAt(Category category, Phase phase, const char *name,
                     uint64_t sim_tick, double value)
{
    if (!enabled(category))
        return;
    store(category, phase, name, sim_tick, true, value);
}

void
TraceManager::store(Category category, Phase phase, const char *name,
                    uint64_t sim_tick, bool has_sim_tick, double value)
{
    const uint64_t seq = next_.fetch_add(1, std::memory_order_relaxed);
    if (seq == static_cast<uint64_t>(ring_.size()) &&
        !overflowWarned_.exchange(true, std::memory_order_relaxed)) {
        warn("trace ring full after %zu records: oldest records are "
             "being overwritten (raise WSP_TRACE_CAPACITY; drops are "
             "counted in the trace.dropped stat)",
             ring_.size());
    }
    Record &slot = ring_[seq % ring_.size()];
    slot.simTick = sim_tick;
    slot.wallNs = wallNowNs();
    slot.value = value;
    slot.category = category;
    slot.phase = phase;
    slot.hasSimTick = has_sim_tick;
    std::strncpy(slot.name, name, Record::kNameBytes - 1);
    slot.name[Record::kNameBytes - 1] = '\0';
}

std::vector<Record>
TraceManager::snapshot() const
{
    const uint64_t total = next_.load(std::memory_order_relaxed);
    const uint64_t count =
        std::min<uint64_t>(total, static_cast<uint64_t>(ring_.size()));
    std::vector<Record> out;
    out.reserve(count);
    for (uint64_t i = total - count; i < total; ++i)
        out.push_back(ring_[i % ring_.size()]);
    return out;
}

uint64_t
TraceManager::totalEmitted() const
{
    return next_.load(std::memory_order_relaxed);
}

uint64_t
TraceManager::dropped() const
{
    const uint64_t total = next_.load(std::memory_order_relaxed);
    const auto cap = static_cast<uint64_t>(ring_.size());
    return total > cap ? total - cap : 0;
}

void
TraceManager::clear()
{
    next_.store(0, std::memory_order_relaxed);
}

} // namespace wsp::trace
