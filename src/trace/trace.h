/**
 * @file
 * Tick-stamped trace events over a fixed-capacity ring buffer.
 *
 * Every subsystem can emit named events into one global TraceManager:
 * begin/end span pairs, instants, and counter samples, each stamped
 * with both the simulated Tick (when a tick source is installed; the
 * WspSystem constructor installs its event queue) and the host
 * steady-clock time (always, so the real-code pheap paths are
 * traceable too). Records land in a preallocated ring; when it wraps,
 * the newest records win and the overwritten ones are counted as
 * dropped.
 *
 * Runtime control: WSP_TRACE=<cat,cat|all> enables categories from
 * the environment (applied by TraceManager::configureFromEnv(), which
 * bench_util's init() calls), or programmatically via enable().
 * Emission is a no-op costing one relaxed load when a category is
 * disabled, so instrumentation can stay in hot paths.
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/arena.h"

namespace wsp::trace {

/** Trace categories, one per subsystem. */
enum class Category : uint8_t {
    Core = 0,
    Nvram,
    Power,
    Pheap,
    Machine,
    Devices,
    Apps,
    Crashsim,
};

/** Number of categories (mask width). */
constexpr unsigned kCategoryCount = 8;

/** Mask covering every category. */
constexpr uint32_t kAllCategories = (1u << kCategoryCount) - 1;

/** Short lowercase name ("core", "nvram", ...). */
const char *categoryName(Category category);

/**
 * Parse a WSP_TRACE-style list ("core,pheap", "all", "") into a mask.
 * @return false when an unknown category name is present.
 */
bool parseCategoryList(const char *list, uint32_t *mask_out);

/** Event kinds, mirroring the Chrome trace-event phases. */
enum class Phase : uint8_t {
    Begin,   ///< span start ("B")
    End,     ///< span end ("E")
    Instant, ///< point event ("i")
    Counter, ///< sampled value ("C")
};

namespace detail {
/** Global enabled-category mask; read inline on every emit. */
extern std::atomic<uint32_t> g_enabledMask;
} // namespace detail

/** True when @p category is currently traced (one relaxed load). */
inline bool
enabled(Category category)
{
    const uint32_t mask =
        detail::g_enabledMask.load(std::memory_order_relaxed);
    return (mask & (1u << static_cast<unsigned>(category))) != 0;
}

/** True when any category is traced. */
inline bool
anyEnabled()
{
    return detail::g_enabledMask.load(std::memory_order_relaxed) != 0;
}

/** One trace record (fixed size; the name is copied and truncated). */
struct Record
{
    static constexpr size_t kNameBytes = 46;

    uint64_t simTick = 0; ///< simulated ns (valid when hasSimTick)
    uint64_t wallNs = 0;  ///< host steady-clock ns
    double value = 0.0;   ///< Counter payload
    Category category = Category::Core;
    Phase phase = Phase::Instant;
    bool hasSimTick = false;
    char name[kNameBytes] = {};
};

/**
 * The global trace sink: configuration, the ring, and snapshots.
 *
 * Emission is wait-free for concurrent emitters (an atomic slot
 * reservation plus a plain slot write); configuration and snapshots
 * are expected from one thread, as in the single-threaded benches.
 */
class TraceManager
{
  public:
    static TraceManager &instance();

    // Configuration ---------------------------------------------------

    /** Enable exactly the categories in @p mask. */
    void enable(uint32_t mask);

    void enableAll() { enable(kAllCategories); }
    void disableAll() { enable(0); }

    /**
     * Apply WSP_TRACE from the environment (and, when the library is
     * built with WSP_TRACE_DEFAULT_ON, enable everything if the
     * variable is unset). @return true when any category ended up
     * enabled.
     */
    bool configureFromEnv();

    uint32_t enabledMask() const;

    /**
     * Resize the ring (default 65536 records; WSP_TRACE_CAPACITY
     * overrides at configureFromEnv() time). Discards the content.
     */
    void setCapacity(size_t records);

    size_t capacity() const { return ring_.size(); }

    /**
     * Install the simulated-time source; records emitted while it is
     * set carry queue.now(). @p owner disambiguates nested systems:
     * clearTickSource() only resets when the owner matches.
     */
    void setTickSource(const void *owner, std::function<uint64_t()> now);
    void clearTickSource(const void *owner);

    // Emission --------------------------------------------------------

    /** Emit a record stamped with the tick source (if installed). */
    void emit(Category category, Phase phase, const char *name,
              double value = 0.0);

    /** Emit a record with an explicit simulated tick (async spans). */
    void emitAt(Category category, Phase phase, const char *name,
                uint64_t sim_tick, double value = 0.0);

    // Draining --------------------------------------------------------

    /** Records still in the ring, oldest first. */
    std::vector<Record> snapshot() const;

    /** Total records ever emitted (including overwritten ones). */
    uint64_t totalEmitted() const;

    /** Records lost to ring wrap-around. */
    uint64_t dropped() const;

    /** Discard all records and reset the drop count. */
    void clear();

  private:
    TraceManager();

    void store(Category category, Phase phase, const char *name,
               uint64_t sim_tick, bool has_sim_tick, double value);

    /// The ring lives in a dedicated arena: records are fixed-size
    /// slabs recycled in place on wrap, and setCapacity() resets the
    /// arena so resizes reuse the same chunks instead of churning the
    /// general-purpose heap alongside the hot emitters.
    util::Arena ringArena_;
    std::vector<Record, util::ArenaAllocator<Record>> ring_;
    std::atomic<uint64_t> next_{0};
    std::atomic<bool> overflowWarned_{false};
    std::function<uint64_t()> tickSource_;
    const void *tickOwner_ = nullptr;
};

/**
 * RAII begin/end span. Emits nothing when the category is disabled
 * at construction time.
 */
class ScopedSpan
{
  public:
    ScopedSpan(Category category, const char *name)
        : category_(category), name_(name), active_(enabled(category))
    {
        if (active_)
            TraceManager::instance().emit(category_, Phase::Begin, name_);
    }

    ~ScopedSpan()
    {
        if (active_)
            TraceManager::instance().emit(category_, Phase::End, name_);
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    Category category_;
    const char *name_;
    bool active_;
};

/** Emit an instant event when the category is enabled. */
inline void
instant(Category category, const char *name)
{
    if (enabled(category))
        TraceManager::instance().emit(category, Phase::Instant, name);
}

/** Emit a counter sample when the category is enabled. */
inline void
counter(Category category, const char *name, double value)
{
    if (enabled(category))
        TraceManager::instance().emit(category, Phase::Counter, name,
                                      value);
}

#define WSP_TRACE_CONCAT2(a, b) a##b
#define WSP_TRACE_CONCAT(a, b) WSP_TRACE_CONCAT2(a, b)

/** Scoped duration event: TRACE_SPAN(Pheap, "undo commit"); */
#define TRACE_SPAN(cat, name)                                         \
    ::wsp::trace::ScopedSpan WSP_TRACE_CONCAT(wsp_trace_span_,        \
                                              __LINE__)(             \
        ::wsp::trace::Category::cat, name)

/** Point event: TRACE_INSTANT(Power, "PWR_OK drop"); */
#define TRACE_INSTANT(cat, name)                                      \
    ::wsp::trace::instant(::wsp::trace::Category::cat, name)

/** Counter sample: TRACE_COUNTER(Power, "rail.v12", volts); */
#define TRACE_COUNTER(cat, name, value)                               \
    ::wsp::trace::counter(::wsp::trace::Category::cat, name, value)

} // namespace wsp::trace
