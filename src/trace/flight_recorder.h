/**
 * @file
 * NVRAM-resident black-box flight recorder.
 *
 * The DRAM trace ring (trace.h) evaporates at exactly the moment it
 * is most needed: mid-save, mid-salvage, mid-recovery-storm. The
 * flight recorder is the crash-surviving complement — a fixed-size,
 * power-of-two ring of compact 64-byte binary records living in a
 * reserved NVRAM region just below the salvage directory, so the
 * NVDIMM save engine's top-down flash programming persists it with
 * the other control structures even when a save dies early.
 *
 * Publication mirrors the valid-marker discipline of the save path:
 * each record is written to its slot and flushed to NVRAM *before*
 * the header line advances the published head (write record -> flush
 * -> publish). Every record carries its sequence number and a CRC64
 * over its payload, so a decoder looking at a surviving image can
 * classify each slot as published-and-intact, the single acceptable
 * in-flight tail, stale residue from an earlier boot, or torn — and
 * a torn slot strictly inside the published window is a soundness
 * violation the crashsim BlackBoxSound checker asserts never happens.
 *
 * Layering: this library (wsp_trace) sits below nvram/machine/core,
 * so the NVRAM backing is injected as closures (writeLine/writable)
 * that the WSP controller wires up from the cache model, and the
 * decoder reads through a byte-reader closure that crashsim and
 * tools/wsp_inspect adapt over a captured NvramImage.
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "trace/trace.h"

namespace wsp::trace {

/** Recorder operating mode. */
enum class FrMode : uint8_t {
    Off = 0,  ///< emit() is a no-op
    Volatile, ///< volatile mirror ring only (lost on power failure)
    Nvram,    ///< mirror plus crash-consistent NVRAM publication
};

/** Human-readable mode name ("off", "volatile", "nvram"). */
const char *frModeName(FrMode mode);

/** Lifecycle events the black box records. */
enum class FrEvent : uint16_t {
    None = 0,
    BootEpoch,         ///< a0=boot sequence, a1=restored from image
    SaveBegin,         ///< a0=generation, a1=degraded
    SaveTierCut,       ///< a0=tier cut, a1=regions dropped
    SaveFlushWave,     ///< a0=(socket<<32)|worker, a1=bytes flushed
    SaveMarkerStamp,   ///< a0=generation, a1=tier cut
    SaveNvdimmInitiate,///< a0=module count, a1=degraded
    SaveCommandRetry,  ///< a0=retry number
    SaveHalt,          ///< a0=cores halted
    DeviceSuspendWave, ///< a0=wave index, a1=devices in the wave
    HealthDegrade,     ///< a0=now degraded, a1=transition count
    MediaFault,        ///< a0=module, a1=faulted address
    RegionSalvaged,    ///< a0=tier, a1=region base
    RegionQuarantined, ///< a0=tier, a1=region base
    RegionRecovered,   ///< a0=tier, a1=region base
    SalvageColdBoot,   ///< a0=regions salvaged, a1=quarantined
    FallbackColdBoot,  ///< back-end recovery; no image usable
    NvdimmSaveStart,   ///< a0=incremental, a1=pending bytes
    NvdimmSaveDone,    ///< a0=programmed bytes, a1=incremental
    NvdimmSaveFailed,  ///< a0=programmed bytes
    RestoreBegin,      ///< a0=restore mode, a1=lazy
    NvdimmRestoreDone, ///< a0=modules restored, a1=lazy
    MarkerChecked,     ///< a0=marker valid, a1=image generation
    LazyPageIn,        ///< a0=module, a1=pages mapped
    ContextsRestored,  ///< a0=cores resumed
    RestoreDone,       ///< a0=used WSP, a1=salvage mode
    KvBatch,           ///< a0=(shard<<32)|worker, a1=ops completed
};

/** Number of known events (names table size). */
constexpr uint16_t kFrEventCount =
    static_cast<uint16_t>(FrEvent::KvBatch) + 1;

/** Short event name ("save begin", "kv batch", ...). */
const char *frEventName(FrEvent event);

/** One decoded (or mirrored) flight-recorder record. */
struct FrRecord
{
    uint64_t seq = 0;        ///< global emission sequence number
    uint64_t generation = 0; ///< boot sequence at emission time
    uint64_t simTick = 0;    ///< simulated ns (0 without a source)
    uint64_t wallNs = 0;     ///< host steady-clock ns
    uint64_t a0 = 0;
    uint64_t a1 = 0;
    FrEvent event = FrEvent::None;
    Category category = Category::Core;
};

/** Byte sizes of the on-NVRAM encoding (one cache line each). */
constexpr size_t kFrRecordBytes = 64;
constexpr size_t kFrHeaderBytes = 64;

/** Default ring size in records (region = 64 KiB + header line). */
constexpr size_t kFrDefaultRecords = 1024;

/** Encode @p record into its 64-byte slot image (CRC stamped). */
void frEncodeRecord(const FrRecord &record, std::span<uint8_t> out);

/**
 * Decode one 64-byte slot. @return false when the CRC does not match
 * the stored payload (torn or never-written slot).
 */
bool frDecodeRecord(std::span<const uint8_t> bytes, FrRecord *out);

namespace detail {
/** Global mode; read inline on every emit. */
extern std::atomic<uint8_t> g_frMode;
} // namespace detail

/**
 * The process-wide black box. Systems attach an NVRAM backing
 * (owner-token discipline, like TraceManager's tick source); emission
 * is mutex-serialized so KvService worker threads can record batches.
 */
class FlightRecorder
{
  public:
    static FlightRecorder &instance();

    /** NVRAM backing, expressed as closures to keep layering clean. */
    struct Backing
    {
        uint64_t base = 0;          ///< record slot 0 (line-aligned)
        size_t capacityRecords = 0; ///< power of two
        /** Write one 64-byte line through the cache and flush it. */
        std::function<void(uint64_t addr, std::span<const uint8_t>)>
            writeLine;
        /** True while NVRAM accepts host writes (module Active). */
        std::function<bool()> writable;

        /** Header line address (directly above the slots). */
        uint64_t headerAddr() const
        {
            return base + capacityRecords * kFrRecordBytes;
        }
    };

    void setMode(FrMode mode);
    FrMode mode() const;

    /**
     * Attach an NVRAM backing. @p generation stamps records until the
     * next setGeneration(); attach does not read back existing NVRAM
     * content — it restarts ring contiguity at the oldest record that
     * can still reach this backing (the staged queue), so a header
     * published here never vouches for slots written into a previous
     * system's NVRAM.
     */
    void attach(const void *owner, Backing backing, uint64_t generation);

    /** Detach when @p owner still holds the backing (dtor path). */
    void detach(const void *owner);

    /** Bump the generation stamp (boot epoch) for @p owner. */
    void setGeneration(const void *owner, uint64_t generation);

    /**
     * Restart ring contiguity at the oldest record that can still
     * reach NVRAM (the staged queue, else the next emission). Call on
     * any boot that did not stream the full image back into DRAM — a
     * cold, fallback, or salvage boot loses every published slot with
     * the DRAM it lived in, and the header must stop vouching for
     * them before the next save programs their zeroed slots.
     */
    void restartContiguity(const void *owner);

    /** Simulated-time source, owner-token discipline. */
    void setTickSource(const void *owner, std::function<uint64_t()> now);
    void clearTickSource(const void *owner);

    /** Record one event (thread-safe; no-op when the mode is Off). */
    void emit(FrEvent event, Category category, uint64_t a0 = 0,
              uint64_t a1 = 0);

    /** Write any staged records out if the backing became writable. */
    void flushStaged();

    /** Total records ever emitted (across modes and attachments). */
    uint64_t totalEmitted() const;

    /** Records emitted to NVRAM that had to be staged and were then
     *  dropped because the backing never became writable in time. */
    uint64_t stagedDropped() const;

    /** The volatile mirror, oldest first (tests and benches). */
    std::vector<FrRecord> mirror() const;

    /** Drop mirror/staging content; keep mode, backing, sequence. */
    void clearForTest();

  private:
    FlightRecorder() = default;

    void publish(const FrRecord &record);
    void writeHeader(uint64_t head_seq);

    mutable std::mutex mutex_;
    Backing backing_;
    const void *backingOwner_ = nullptr;
    uint64_t generation_ = 0;
    std::function<uint64_t()> tickSource_;
    const void *tickOwner_ = nullptr;

    uint64_t nextSeq_ = 0;
    uint64_t publishedHead_ = 0;
    /** Seq from which ring content is contiguous: volatile-phase
     *  emissions and staged-queue drops break contiguity, and the
     *  header publishes this tail so the decoder never expects a
     *  record that was deliberately never written. */
    uint64_t ringTail_ = 0;
    uint64_t stagedDropped_ = 0;
    std::deque<FrRecord> staged_;
    std::vector<FrRecord> mirror_;
    size_t mirrorCapacity_ = kFrDefaultRecords;
};

/** Emit helper; one relaxed load when the recorder is off. */
inline void
frEmit(FrEvent event, Category category, uint64_t a0 = 0,
       uint64_t a1 = 0)
{
    if (detail::g_frMode.load(std::memory_order_relaxed) ==
        static_cast<uint8_t>(FrMode::Off))
        return;
    FlightRecorder::instance().emit(event, category, a0, a1);
}

// Decoding a surviving ring ------------------------------------------

/**
 * Byte reader over whatever holds the ring: a captured NvramImage's
 * flash, a live NvramSpace, or a file. @return false when the range
 * is not available (beyond the programmed flash suffix); the decoder
 * then counts the slot as unsaved rather than torn.
 */
using FrByteReader =
    std::function<bool(uint64_t addr, std::span<uint8_t> out)>;

/** Classification of every slot in a decoded ring. */
struct FrDecodeResult
{
    bool headerFound = false; ///< magic matched at the header line
    bool headerValid = false; ///< header CRC matched too
    uint64_t generation = 0;
    uint64_t headSeq = 0;       ///< first unpublished sequence number
    uint64_t tailSeq = 0;       ///< oldest contiguously published seq
    uint64_t totalEmitted = 0;  ///< lifetime emissions at publish time
    size_t capacity = 0;        ///< ring size in records
    uint64_t base = 0;          ///< slot 0 address the decode used

    /** Published records, oldest first (stale/unsaved slots absent). */
    std::vector<FrRecord> records;

    bool unpublishedTail = false; ///< slot head%cap held seq==headSeq
    size_t tornSlots = 0;    ///< in-window readable slots that failed
    size_t unsavedSlots = 0; ///< in-window slots the reader refused
    size_t staleSlots = 0;   ///< valid records from older sequences
    std::vector<std::string> notes; ///< human-readable anomalies

    /** The BlackBoxSound invariant: nothing torn beyond the single
     *  acceptable in-flight tail slot. A missing or torn header means
     *  nothing was published, so nothing is provable (or violated). */
    bool sound() const
    {
        return (headerFound && headerValid) ? tornSlots == 0 : true;
    }
};

/**
 * Decode the ring whose header line sits at @p header_addr. Slots are
 * the @c capacity lines directly below the header.
 */
FrDecodeResult frDecode(const FrByteReader &read, uint64_t header_addr);

/**
 * Locate a recorder header by scanning line-aligned addresses from
 * @p top downward (at most @p scan_bytes), looking for the header
 * magic with a valid CRC. @return the header address, if found.
 */
std::optional<uint64_t> frFindHeader(const FrByteReader &read,
                                     uint64_t top, uint64_t scan_bytes);

/** One "[   12.345 ms] nvram  save start (full, 4.0 MiB)" line per
 *  published record, oldest first. */
std::vector<std::string> frFormatTimeline(const FrDecodeResult &decode);

/** Human description of one record's event and arguments. */
std::string frDescribe(const FrRecord &record);

} // namespace wsp::trace
