/**
 * @file
 * Exporters for the trace ring and the stat registry.
 *
 * Two formats:
 *
 *  - Chrome trace-event JSON ({"traceEvents":[...]}), loadable in
 *    Perfetto / chrome://tracing. Records carrying a simulated Tick
 *    are emitted under pid 1 ("simulated time", 1 tick = 1ns mapped
 *    to microseconds); records with only a host timestamp (the real
 *    pheap code paths) go under pid 2 ("host wall clock") so the two
 *    timebases never mix on one track.
 *
 *  - Flat metrics as JSON ({"name": value, ...}) or CSV
 *    (name,value per line) from a StatRegistry snapshot.
 *
 * appendBenchRecord() writes one JSON object per line (JSON-lines)
 * so repeated bench runs accumulate into a single machine-readable
 * results file.
 */

#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace wsp::trace {

/** Serialize the current trace ring as Chrome trace-event JSON. */
std::string chromeTraceJson();

/** Current stat snapshot as a flat JSON object. */
std::string metricsJson();

/** Current stat snapshot as "name,value" CSV with a header line. */
std::string metricsCsv();

/**
 * Write chromeTraceJson() to @p path.
 * @return false (with a warning) when the file cannot be written.
 */
bool writeChromeTrace(const std::string &path);

/**
 * Write the metrics snapshot to @p path; the format is CSV when the
 * path ends in ".csv", JSON otherwise.
 */
bool writeMetrics(const std::string &path);

/**
 * Append one bench-result line to @p path (JSON-lines): bench id,
 * host name, wall-clock seconds, the RNG seed the run used (0 when
 * the bench has no randomness), and the full counter snapshot.
 */
bool appendBenchRecord(const std::string &path, const std::string &bench,
                       double wall_seconds, uint64_t seed = 0);

/**
 * Extra top-level integer fields a bench can attach to its record
 * (e.g. fleet_storm's "nodes"/"replication"). Names must be plain
 * identifiers; values are emitted as JSON integers next to "seed".
 */
using BenchRecordFields = std::vector<std::pair<std::string, uint64_t>>;

/** appendBenchRecord() with extra top-level fields. */
bool appendBenchRecord(const std::string &path, const std::string &bench,
                       double wall_seconds, uint64_t seed,
                       const BenchRecordFields &fields);

/** Escape a string for embedding in a JSON document (adds quotes). */
std::string jsonQuote(const std::string &text);

} // namespace wsp::trace
