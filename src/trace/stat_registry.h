/**
 * @file
 * Registry of named monotonic counters, gauges, and probes.
 *
 * Modules register their statistics at construction under dotted
 * names ("pheap.clflush_count", "core.saves_completed", ...); the
 * exporters dump one flat snapshot. Three kinds:
 *
 *  - Counter: monotonic relaxed-atomic count, bumped on the hot path
 *    through a cached handle (create-or-get is idempotent),
 *  - Gauge: last-written double (per-run timings, window sizes),
 *  - Probe: a callback polled only at snapshot time, for subsystems
 *    that already keep their own counters (zero added hot-path cost).
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace wsp::trace {

/** Monotonic counter; add() is safe from any thread. */
class Counter
{
  public:
    void add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
    uint64_t value() const { return value_.load(std::memory_order_relaxed); }
    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<uint64_t> value_{0};
};

/** Last-value gauge. */
class Gauge
{
  public:
    void set(double value) { value_.store(value, std::memory_order_relaxed); }
    double value() const { return value_.load(std::memory_order_relaxed); }

  private:
    std::atomic<double> value_{0.0};
};

/** The global name -> statistic registry. */
class StatRegistry
{
  public:
    static StatRegistry &instance();

    /** Create-or-get a counter; the reference stays valid forever. */
    Counter &counter(const std::string &name);

    /** Create-or-get a gauge. */
    Gauge &gauge(const std::string &name);

    /**
     * Register (or replace) a probe polled at snapshot time. Safe to
     * call repeatedly with the same name, so module constructors can
     * register unconditionally.
     */
    void registerProbe(const std::string &name,
                       std::function<double()> probe);

    /** One snapshot row. */
    struct Sample
    {
        std::string name;
        double value;
    };

    /** All statistics, sorted by name (probes polled now). */
    std::vector<Sample> snapshot() const;

    /** Number of registered statistics. */
    size_t size() const;

    /**
     * Zero every counter and gauge (unit tests only). Registrations
     * are kept: modules cache Counter/Gauge pointers on hot paths, so
     * the slots must never be freed.
     */
    void resetForTest();

    /**
     * Zero counters and gauges whose names start with one of
     * @p prefixes, keeping registrations. WspSystem::bootFromImage
     * uses this to clear chassis-level metrics on a replacement
     * chassis, so post-crash numbers do not inherit pre-crash values;
     * DIMM-resident ("nvram.") and campaign-level ("crashsim.")
     * statistics deliberately survive.
     */
    void resetPrefixes(const std::vector<std::string> &prefixes);

  private:
    StatRegistry() = default;

    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::function<double()>> probes_;
};

} // namespace wsp::trace
