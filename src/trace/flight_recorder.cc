#include "trace/flight_recorder.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "util/checksum.h"
#include "util/logging.h"
#include "util/units.h"

namespace wsp::trace {

namespace detail {
std::atomic<uint8_t> g_frMode{static_cast<uint8_t>(FrMode::Off)};
} // namespace detail

namespace {

/** "WSPFLREC" read little-endian from the header line. */
constexpr uint64_t kFrMagic = 0x4345524c46505357ull;
constexpr uint64_t kFrVersion = 1;

/** Payload bytes covered by the per-line CRC (the final 8 carry it). */
constexpr size_t kCrcSpan = 56;

uint64_t
wallNowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

void
storeU64(std::span<uint8_t> out, size_t offset, uint64_t value)
{
    for (int i = 0; i < 8; ++i)
        out[offset + i] = static_cast<uint8_t>(value >> (8 * i));
}

uint64_t
loadU64(std::span<const uint8_t> in, size_t offset)
{
    uint64_t value = 0;
    for (int i = 7; i >= 0; --i)
        value = (value << 8) | in[offset + i];
    return value;
}

void
storeU16(std::span<uint8_t> out, size_t offset, uint16_t value)
{
    out[offset] = static_cast<uint8_t>(value);
    out[offset + 1] = static_cast<uint8_t>(value >> 8);
}

uint16_t
loadU16(std::span<const uint8_t> in, size_t offset)
{
    return static_cast<uint16_t>(in[offset] |
                                 (in[offset + 1] << 8));
}

struct Header
{
    uint64_t capacity = 0;
    uint64_t generation = 0;
    uint64_t headSeq = 0;
    uint64_t tailSeq = 0;
    uint64_t totalEmitted = 0;
};

void
encodeHeader(const Header &header, std::span<uint8_t> out)
{
    std::memset(out.data(), 0, kFrHeaderBytes);
    storeU64(out, 0, kFrMagic);
    storeU64(out, 8, kFrVersion);
    storeU64(out, 16, header.capacity);
    storeU64(out, 24, header.generation);
    storeU64(out, 32, header.headSeq);
    storeU64(out, 40, header.totalEmitted);
    storeU64(out, 48, header.tailSeq);
    storeU64(out, 56, crc64(out.first(kCrcSpan)));
}

/** @return false when magic or CRC fail ( *magic_ok still reports
 *  whether the magic alone matched). */
bool
decodeHeader(std::span<const uint8_t> bytes, Header *out, bool *magic_ok)
{
    *magic_ok = loadU64(bytes, 0) == kFrMagic;
    if (!*magic_ok || loadU64(bytes, 8) != kFrVersion)
        return false;
    if (crc64(bytes.first(kCrcSpan)) != loadU64(bytes, 56))
        return false;
    out->capacity = loadU64(bytes, 16);
    out->generation = loadU64(bytes, 24);
    out->headSeq = loadU64(bytes, 32);
    out->totalEmitted = loadU64(bytes, 40);
    out->tailSeq = loadU64(bytes, 48);
    return true;
}

} // namespace

const char *
frModeName(FrMode mode)
{
    switch (mode) {
      case FrMode::Off:
        return "off";
      case FrMode::Volatile:
        return "volatile";
      case FrMode::Nvram:
        return "nvram";
    }
    return "unknown";
}

const char *
frEventName(FrEvent event)
{
    switch (event) {
      case FrEvent::None:
        return "none";
      case FrEvent::BootEpoch:
        return "boot epoch";
      case FrEvent::SaveBegin:
        return "save begin";
      case FrEvent::SaveTierCut:
        return "save tier cut";
      case FrEvent::SaveFlushWave:
        return "flush wave";
      case FrEvent::SaveMarkerStamp:
        return "marker stamp";
      case FrEvent::SaveNvdimmInitiate:
        return "nvdimm save initiate";
      case FrEvent::SaveCommandRetry:
        return "save command retry";
      case FrEvent::SaveHalt:
        return "halt";
      case FrEvent::DeviceSuspendWave:
        return "device suspend wave";
      case FrEvent::HealthDegrade:
        return "health degrade";
      case FrEvent::MediaFault:
        return "media fault";
      case FrEvent::RegionSalvaged:
        return "region salvaged";
      case FrEvent::RegionQuarantined:
        return "region quarantined";
      case FrEvent::RegionRecovered:
        return "region recovered";
      case FrEvent::SalvageColdBoot:
        return "salvage cold boot";
      case FrEvent::FallbackColdBoot:
        return "fallback cold boot";
      case FrEvent::NvdimmSaveStart:
        return "nvdimm save start";
      case FrEvent::NvdimmSaveDone:
        return "nvdimm save done";
      case FrEvent::NvdimmSaveFailed:
        return "nvdimm save failed";
      case FrEvent::RestoreBegin:
        return "restore begin";
      case FrEvent::NvdimmRestoreDone:
        return "nvdimm restore done";
      case FrEvent::MarkerChecked:
        return "marker checked";
      case FrEvent::LazyPageIn:
        return "lazy page-in";
      case FrEvent::ContextsRestored:
        return "contexts restored";
      case FrEvent::RestoreDone:
        return "restore done";
      case FrEvent::KvBatch:
        return "kv batch";
    }
    return "unknown";
}

void
frEncodeRecord(const FrRecord &record, std::span<uint8_t> out)
{
    WSP_CHECK(out.size() >= kFrRecordBytes);
    std::memset(out.data(), 0, kFrRecordBytes);
    storeU64(out, 0, record.seq);
    storeU64(out, 8, record.generation);
    storeU64(out, 16, record.simTick);
    storeU64(out, 24, record.wallNs);
    storeU64(out, 32, record.a0);
    storeU64(out, 40, record.a1);
    storeU16(out, 48, static_cast<uint16_t>(record.event));
    out[50] = static_cast<uint8_t>(record.category);
    storeU64(out, 56, crc64(out.first(kCrcSpan)));
}

bool
frDecodeRecord(std::span<const uint8_t> bytes, FrRecord *out)
{
    if (bytes.size() < kFrRecordBytes)
        return false;
    if (crc64(bytes.first(kCrcSpan)) != loadU64(bytes, 56))
        return false;
    out->seq = loadU64(bytes, 0);
    out->generation = loadU64(bytes, 8);
    out->simTick = loadU64(bytes, 16);
    out->wallNs = loadU64(bytes, 24);
    out->a0 = loadU64(bytes, 32);
    out->a1 = loadU64(bytes, 40);
    out->event = static_cast<FrEvent>(loadU16(bytes, 48));
    out->category = static_cast<Category>(bytes[50]);
    return true;
}

FlightRecorder &
FlightRecorder::instance()
{
    static FlightRecorder recorder;
    return recorder;
}

void
FlightRecorder::setMode(FrMode mode)
{
    detail::g_frMode.store(static_cast<uint8_t>(mode),
                           std::memory_order_relaxed);
}

FrMode
FlightRecorder::mode() const
{
    return static_cast<FrMode>(
        detail::g_frMode.load(std::memory_order_relaxed));
}

void
FlightRecorder::attach(const void *owner, Backing backing,
                       uint64_t generation)
{
    WSP_CHECKF(backing.capacityRecords >= 2 &&
                   (backing.capacityRecords &
                    (backing.capacityRecords - 1)) == 0,
               "flight recorder ring must be a power of two (got %zu)",
               backing.capacityRecords);
    std::lock_guard<std::mutex> lock(mutex_);
    backingOwner_ = owner;
    backing_ = std::move(backing);
    generation_ = generation;
    mirrorCapacity_ = backing_.capacityRecords;
    // This backing's slots hold none of the records published into a
    // previous system's NVRAM: restart contiguity at the oldest
    // record that can still reach this ring (the staged queue), so
    // the next header never vouches for slots this NVRAM never saw.
    ringTail_ = staged_.empty() ? nextSeq_ : staged_.front().seq;
}

void
FlightRecorder::detach(const void *owner)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (backingOwner_ != owner)
        return;
    backingOwner_ = nullptr;
    backing_ = Backing{};
}

void
FlightRecorder::setGeneration(const void *owner, uint64_t generation)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (backingOwner_ != owner)
        return;
    generation_ = generation;
}

void
FlightRecorder::restartContiguity(const void *owner)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (backingOwner_ != owner)
        return;
    // Records published before the power loss lived in DRAM; a boot
    // that did not stream the image back (cold, fallback, salvage)
    // lost them, and the next save would program their zeroed slots
    // under a header that still vouches for them. Staged records are
    // different: they drain into the revived ring and will be
    // written, so contiguity restarts at the oldest of them.
    ringTail_ = staged_.empty() ? nextSeq_ : staged_.front().seq;
}

void
FlightRecorder::setTickSource(const void *owner,
                              std::function<uint64_t()> now)
{
    std::lock_guard<std::mutex> lock(mutex_);
    tickOwner_ = owner;
    tickSource_ = std::move(now);
}

void
FlightRecorder::clearTickSource(const void *owner)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (tickOwner_ != owner)
        return;
    tickOwner_ = nullptr;
    tickSource_ = nullptr;
}

void
FlightRecorder::publish(const FrRecord &record)
{
    // The marker discipline: the slot line reaches NVRAM before the
    // header line advances the published head past it. A crash
    // between the two writes leaves exactly one acceptable
    // unpublished tail record.
    uint8_t line[kFrRecordBytes];
    frEncodeRecord(record, line);
    const uint64_t slot = record.seq % backing_.capacityRecords;
    backing_.writeLine(backing_.base + slot * kFrRecordBytes, line);
    writeHeader(record.seq + 1);
}

void
FlightRecorder::writeHeader(uint64_t head_seq)
{
    Header header;
    header.capacity = backing_.capacityRecords;
    header.generation = generation_;
    header.headSeq = head_seq;
    header.tailSeq = std::min(ringTail_, head_seq);
    header.totalEmitted = nextSeq_;
    uint8_t line[kFrHeaderBytes];
    encodeHeader(header, line);
    backing_.writeLine(backing_.headerAddr(), line);
    publishedHead_ = head_seq;
}

void
FlightRecorder::emit(FrEvent event, Category category, uint64_t a0,
                     uint64_t a1)
{
    const FrMode mode = this->mode();
    if (mode == FrMode::Off)
        return;

    std::lock_guard<std::mutex> lock(mutex_);
    FrRecord record;
    record.seq = nextSeq_++;
    record.generation = generation_;
    record.simTick = tickSource_ ? tickSource_() : 0;
    record.wallNs = wallNowNs();
    record.a0 = a0;
    record.a1 = a1;
    record.event = event;
    record.category = category;

    mirror_.push_back(record);
    while (mirror_.size() > mirrorCapacity_)
        mirror_.erase(mirror_.begin());

    if (mode != FrMode::Nvram) {
        // Volatile-only records never reach the ring: break the
        // published-window contiguity so a later NVRAM decode does
        // not expect them in their slots.
        ringTail_ = nextSeq_;
        return;
    }
    if (!backing_.writeLine ||
        (backing_.writable && !backing_.writable())) {
        // NVRAM is not accepting host writes (no backing attached
        // yet, module mid-save, or the host is dark): stage the
        // record; the next writable emit or an explicit
        // flushStaged() drains the queue in order.
        staged_.push_back(record);
        while (staged_.size() > mirrorCapacity_) {
            ringTail_ =
                std::max(ringTail_, staged_.front().seq + 1);
            staged_.pop_front();
            ++stagedDropped_;
        }
        return;
    }
    while (!staged_.empty()) {
        publish(staged_.front());
        staged_.pop_front();
    }
    publish(record);
}

void
FlightRecorder::flushStaged()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (mode() != FrMode::Nvram || !backing_.writeLine)
        return;
    if (backing_.writable && !backing_.writable())
        return;
    while (!staged_.empty()) {
        publish(staged_.front());
        staged_.pop_front();
    }
}

uint64_t
FlightRecorder::totalEmitted() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return nextSeq_;
}

uint64_t
FlightRecorder::stagedDropped() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stagedDropped_;
}

std::vector<FrRecord>
FlightRecorder::mirror() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return mirror_;
}

void
FlightRecorder::clearForTest()
{
    std::lock_guard<std::mutex> lock(mutex_);
    mirror_.clear();
    staged_.clear();
    stagedDropped_ = 0;
    // Discarding staged records leaves their slots unwritten: restart
    // contiguity after them.
    ringTail_ = nextSeq_;
}

FrDecodeResult
frDecode(const FrByteReader &read, uint64_t header_addr)
{
    FrDecodeResult result;

    uint8_t line[kFrHeaderBytes];
    if (!read(header_addr, line)) {
        result.notes.push_back("header line not in the saved image");
        return result;
    }
    Header header;
    bool magic_ok = false;
    const bool header_ok = decodeHeader(line, &header, &magic_ok);
    result.headerFound = magic_ok;
    result.headerValid = header_ok;
    if (!magic_ok) {
        result.notes.push_back("no recorder header magic");
        return result;
    }
    if (!header_ok) {
        result.notes.push_back(
            "header line torn (magic intact, CRC mismatch): nothing "
            "was provably published");
        return result;
    }
    if (header.capacity < 2 ||
        (header.capacity & (header.capacity - 1)) != 0 ||
        header.capacity * kFrRecordBytes > header_addr) {
        result.headerValid = false;
        result.notes.push_back("header carries an impossible capacity");
        return result;
    }

    result.generation = header.generation;
    result.headSeq = header.headSeq;
    result.tailSeq = header.tailSeq;
    result.totalEmitted = header.totalEmitted;
    result.capacity = static_cast<size_t>(header.capacity);
    result.base = header_addr - header.capacity * kFrRecordBytes;

    // The published window: the last capacity records, shortened to
    // the contiguous tail the writer vouches for.
    uint64_t window_start = header.headSeq >= header.capacity
                                ? header.headSeq - header.capacity
                                : 0;
    window_start = std::max(window_start,
                            std::min(header.tailSeq, header.headSeq));
    // The slot the *next* record lands in: the only slot allowed to
    // be mid-overwrite (torn) or already holding the unpublished
    // record with seq == headSeq.
    const uint64_t inflight_slot = header.headSeq % header.capacity;

    std::vector<bool> in_window(result.capacity, false);
    for (uint64_t expected = window_start;
         expected < header.headSeq; ++expected) {
        const uint64_t slot = expected % header.capacity;
        in_window[slot] = true;
        uint8_t bytes[kFrRecordBytes];
        if (!read(result.base + slot * kFrRecordBytes, bytes)) {
            ++result.unsavedSlots;
            continue;
        }
        FrRecord record;
        if (frDecodeRecord(bytes, &record)) {
            if (record.seq == expected) {
                result.records.push_back(record);
                continue;
            }
            if (record.seq == header.headSeq && slot == inflight_slot) {
                // The new record reached its slot but the header
                // publish did not: the acceptable in-flight tail,
                // which displaced the oldest published record.
                result.unpublishedTail = true;
                continue;
            }
            if (record.seq < expected) {
                ++result.staleSlots;
                char note[96];
                std::snprintf(note, sizeof(note),
                              "slot %llu holds stale seq %llu where "
                              "%llu was published",
                              static_cast<unsigned long long>(slot),
                              static_cast<unsigned long long>(record.seq),
                              static_cast<unsigned long long>(expected));
                result.notes.push_back(note);
                // Published data is missing: the publish discipline
                // was violated (a record claimed published never hit
                // its slot).
                ++result.tornSlots;
                continue;
            }
        } else if (slot == inflight_slot) {
            // Torn bytes where the next record was being written.
            result.unpublishedTail = true;
            continue;
        }
        ++result.tornSlots;
        char note[96];
        std::snprintf(note, sizeof(note),
                      "slot %llu torn inside the published window "
                      "(expected seq %llu)",
                      static_cast<unsigned long long>(slot),
                      static_cast<unsigned long long>(expected));
        result.notes.push_back(note);
    }

    // Outside the published window: residue from earlier boots (or
    // never-written slots). Informational only.
    for (uint64_t slot = 0; slot < header.capacity; ++slot) {
        if (in_window[static_cast<size_t>(slot)])
            continue;
        uint8_t bytes[kFrRecordBytes];
        if (!read(result.base + slot * kFrRecordBytes, bytes))
            continue;
        FrRecord record;
        if (frDecodeRecord(bytes, &record)) {
            if (record.seq == header.headSeq && slot == inflight_slot)
                result.unpublishedTail = true;
            else
                ++result.staleSlots;
        }
    }

    std::sort(result.records.begin(), result.records.end(),
              [](const FrRecord &a, const FrRecord &b) {
                  return a.seq < b.seq;
              });
    return result;
}

std::optional<uint64_t>
frFindHeader(const FrByteReader &read, uint64_t top, uint64_t scan_bytes)
{
    if (top < kFrHeaderBytes)
        return std::nullopt;
    uint64_t addr = (top - kFrHeaderBytes) / kFrHeaderBytes *
                    kFrHeaderBytes;
    const uint64_t floor =
        addr > scan_bytes ? addr - scan_bytes : 0;
    for (; addr + kFrHeaderBytes <= top && addr >= floor;
         addr -= kFrHeaderBytes) {
        uint8_t line[kFrHeaderBytes];
        if (read(addr, line) && loadU64(line, 0) == kFrMagic) {
            Header header;
            bool magic_ok = false;
            if (decodeHeader(line, &header, &magic_ok))
                return addr;
        }
        if (addr == 0)
            break;
    }
    return std::nullopt;
}

std::string
frDescribe(const FrRecord &record)
{
    const unsigned long long a0 = record.a0;
    const unsigned long long a1 = record.a1;
    char text[160];
    switch (record.event) {
      case FrEvent::BootEpoch:
        std::snprintf(text, sizeof(text),
                      "boot epoch %llu (%s)", a0,
                      a1 != 0 ? "restored from image" : "cold start");
        break;
      case FrEvent::SaveBegin:
        std::snprintf(text, sizeof(text),
                      "save begin, generation %llu%s", a0,
                      a1 != 0 ? ", DEGRADED" : "");
        break;
      case FrEvent::SaveTierCut:
        std::snprintf(text, sizeof(text),
                      "degraded tier cut at %llu, %llu regions dropped",
                      a0, a1);
        break;
      case FrEvent::SaveFlushWave:
        std::snprintf(text, sizeof(text),
                      "flush wave socket %llu worker %llu, %llu bytes",
                      a0 >> 32, a0 & 0xffffffffull, a1);
        break;
      case FrEvent::SaveMarkerStamp:
        std::snprintf(text, sizeof(text),
                      "valid marker stamped, generation %llu, tier "
                      "cut %llu",
                      a0, a1);
        break;
      case FrEvent::SaveNvdimmInitiate:
        std::snprintf(text, sizeof(text),
                      "initiating NVDIMM save on %llu modules%s", a0,
                      a1 != 0 ? " (degraded)" : "");
        break;
      case FrEvent::SaveCommandRetry:
        std::snprintf(text, sizeof(text),
                      "NVDIMM save command retry #%llu", a0);
        break;
      case FrEvent::SaveHalt:
        std::snprintf(text, sizeof(text),
                      "processors halted (%llu cores)", a0);
        break;
      case FrEvent::DeviceSuspendWave:
        std::snprintf(text, sizeof(text),
                      "device suspend wave %llu (%llu devices)", a0,
                      a1);
        break;
      case FrEvent::HealthDegrade:
        std::snprintf(text, sizeof(text),
                      "health monitor: %s (transition %llu)",
                      a0 != 0 ? "DEGRADED" : "healthy again", a1);
        break;
      case FrEvent::MediaFault:
        std::snprintf(text, sizeof(text),
                      "media fault scrub: module %llu addr 0x%llx", a0,
                      a1);
        break;
      case FrEvent::RegionSalvaged:
        std::snprintf(text, sizeof(text),
                      "region salvaged (tier %llu, base 0x%llx)", a0,
                      a1);
        break;
      case FrEvent::RegionQuarantined:
        std::snprintf(text, sizeof(text),
                      "region QUARANTINED (tier %llu, base 0x%llx)",
                      a0, a1);
        break;
      case FrEvent::RegionRecovered:
        std::snprintf(text, sizeof(text),
                      "region recovered by hook (tier %llu, base "
                      "0x%llx)",
                      a0, a1);
        break;
      case FrEvent::SalvageColdBoot:
        std::snprintf(text, sizeof(text),
                      "salvage cold boot: %llu salvaged, %llu "
                      "quarantined",
                      a0, a1);
        break;
      case FrEvent::FallbackColdBoot:
        std::snprintf(text, sizeof(text), "fallback cold boot");
        break;
      case FrEvent::NvdimmSaveStart:
        std::snprintf(text, sizeof(text),
                      "module save start: %s, %llu pending bytes",
                      a0 != 0 ? "incremental" : "full", a1);
        break;
      case FrEvent::NvdimmSaveDone:
        std::snprintf(text, sizeof(text),
                      "module save done: %llu bytes programmed (%s)",
                      a0, a1 != 0 ? "incremental" : "full");
        break;
      case FrEvent::NvdimmSaveFailed:
        std::snprintf(text, sizeof(text),
                      "module save FAILED after %llu bytes", a0);
        break;
      case FrEvent::RestoreBegin:
        std::snprintf(text, sizeof(text),
                      "restore begin (mode %llu%s)", a0,
                      a1 != 0 ? ", lazy" : "");
        break;
      case FrEvent::NvdimmRestoreDone:
        std::snprintf(text, sizeof(text),
                      "NVDIMM restore done (%llu modules%s)", a0,
                      a1 != 0 ? ", lazy" : "");
        break;
      case FrEvent::MarkerChecked:
        std::snprintf(text, sizeof(text),
                      "marker checked: %s, image generation %llu",
                      a0 != 0 ? "valid" : "INVALID", a1);
        break;
      case FrEvent::LazyPageIn:
        std::snprintf(text, sizeof(text),
                      "lazy page-in: module %llu, %llu pages", a0, a1);
        break;
      case FrEvent::ContextsRestored:
        std::snprintf(text, sizeof(text),
                      "thread contexts restored (%llu cores)", a0);
        break;
      case FrEvent::RestoreDone:
        std::snprintf(text, sizeof(text), "restore done: %s%s",
                      a0 != 0 ? "whole-system resume" : "no WSP resume",
                      a1 != 0 ? " (salvage mode)" : "");
        break;
      case FrEvent::KvBatch:
        std::snprintf(text, sizeof(text),
                      "kv batch: shard %llu worker %llu, %llu ops",
                      a0 >> 32, a0 & 0xffffffffull, a1);
        break;
      default:
        std::snprintf(text, sizeof(text), "%s (a0=%llu a1=%llu)",
                      frEventName(record.event), a0, a1);
        break;
    }
    return text;
}

std::vector<std::string>
frFormatTimeline(const FrDecodeResult &decode)
{
    std::vector<std::string> lines;
    lines.reserve(decode.records.size());
    for (const FrRecord &record : decode.records) {
        char line[224];
        std::snprintf(line, sizeof(line),
                      "[%12.6f ms] gen %llu %-8s %s",
                      toMillis(record.simTick),
                      static_cast<unsigned long long>(record.generation),
                      categoryName(record.category),
                      frDescribe(record).c_str());
        lines.push_back(line);
    }
    return lines;
}

} // namespace wsp::trace
