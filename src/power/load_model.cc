#include "power/load_model.h"

namespace wsp {

std::string
loadClassName(LoadClass load)
{
    return load == LoadClass::Busy ? "Busy" : "Idle";
}

SystemLoad
loadIntelTestbed()
{
    return SystemLoad{"Intel", 330.0, 195.0};
}

SystemLoad
loadAmdTestbed()
{
    return SystemLoad{"AMD", 165.0, 110.0};
}

} // namespace wsp
