/**
 * @file
 * Ultracapacitor (supercapacitor) model.
 *
 * NVDIMMs of the AgigaRAM kind carry an ultracapacitor bank that
 * charges from the system's 12 V supply and powers the DRAM-to-flash
 * save after system power is lost (paper section 2). The model covers
 * the three properties the paper relies on:
 *
 *  - stored energy E = 1/2 C V^2, drained through an ESR while
 *    delivering constant power to the save engine (Fig. 2),
 *  - a minimum usable terminal voltage (the NVDIMM's DC-DC input
 *    floor: 6 V for an internal 3.3 V rail, per the paper's footnote),
 *  - capacitance aging over charge/discharge cycles, which stays
 *    within ~10% over 100,000 cycles, unlike Li-ion batteries that
 *    collapse after a few hundred (Fig. 1).
 */

#pragma once

#include <cstdint>
#include <string>

#include "util/units.h"

namespace wsp {

/** Aging curves reported in the paper's Fig. 1 (source: AgigA Tech). */
enum class AgingCurve {
    BestCase,   ///< upper envelope of measured parts
    DataSheet,  ///< vendor datasheet value
    WorstCase,  ///< lower envelope of measured parts
    LiIonBattery, ///< comparison curve: rechargeable battery fade
};

/** Human-readable name of an aging curve. */
std::string agingCurveName(AgingCurve curve);

/**
 * Fraction of rated capacitance remaining after @p cycles
 * charge/discharge cycles at elevated temperature and voltage.
 * For AgingCurve::LiIonBattery the value is the remaining *capacity*
 * fraction of a battery, for the Fig. 1 comparison.
 */
double agingFraction(AgingCurve curve, uint64_t cycles);

/**
 * Capacitance needed to supply @p power_w for @p duration between
 * @p v_start and @p v_min, with a multiplicative safety @p margin
 * (paper section 5.4: "the state save on our test platform could be
 * powered by a 0.5 F supercapacitor that costs less than US$2";
 * section 6: "straightforward and cheap to provision the PSU with
 * sufficient capacitance").
 */
double requiredCapacitance(double power_w, Tick duration, double v_start,
                           double v_min, double margin = 2.0);

/** Rough ultracapacitor cost at the paper's quoted $2.85/kJ. */
double ultracapCostUsd(double capacitance_f, double v_start);

/** Configuration for an ultracapacitor bank. */
struct UltracapConfig
{
    double ratedCapacitanceF = 5.0;  ///< paper: 5-50 F depending on size
    double esrOhm = 0.05;            ///< equivalent series resistance
    double maxVoltage = 12.0;        ///< charged from the 12 V rail
    double minUsableVoltage = 6.0;   ///< DC-DC input floor (paper fn. 1)
    AgingCurve aging = AgingCurve::DataSheet;
};

/**
 * An ultracapacitor bank delivering constant power through an ESR.
 *
 * Discharge integrates the capacitor equation in fixed sub-steps:
 * the load draws power P from the terminal voltage Vt, where
 * Vt = (Vc + sqrt(Vc^2 - 4 P R)) / 2 accounts for the ESR drop, and
 * dVc/dt = -I/C with I = P / Vt.
 */
class Ultracapacitor
{
  public:
    explicit Ultracapacitor(UltracapConfig config);

    /** Capacitance after aging is applied. */
    double effectiveCapacitance() const;

    /** Open-circuit capacitor voltage. */
    double voltage() const { return voltage_; }

    /** Terminal voltage while delivering @p power_w (ESR drop applied). */
    double terminalVoltage(double power_w) const;

    /** Stored energy at the current voltage, in joules. */
    double storedEnergy() const;

    /**
     * Energy extractable before the terminal voltage falls below the
     * usable floor, ignoring ESR loss (an upper bound), in joules.
     */
    double usableEnergy() const;

    /** True while the terminal can still supply @p power_w usably. */
    bool canSupply(double power_w) const;

    /**
     * Drain @p power_w for @p duration. Returns the energy actually
     * delivered (J); stops early if the terminal voltage floor is hit.
     */
    double discharge(double power_w, Tick duration);

    /**
     * Recharge from the host rail at @p charge_power_w for @p duration.
     * Counts one aging cycle per full recharge from below the floor.
     */
    void recharge(double charge_power_w, Tick duration);

    /** Instantly restore full charge; counts one aging cycle. */
    void rechargeFully();

    /**
     * Predicted time the bank can deliver @p power_w before hitting
     * the usable floor, by closed-form energy balance (no ESR), in
     * ticks. Returns kTickNever for non-positive power.
     */
    Tick supplyTime(double power_w) const;

    uint64_t cycles() const { return cycles_; }
    const UltracapConfig &config() const { return config_; }

  private:
    UltracapConfig config_;
    double voltage_;
    uint64_t cycles_ = 0;
};

} // namespace wsp
