/**
 * @file
 * System load presets for the two paper testbeds.
 *
 * The paper measured residual windows and save times in a "busy"
 * configuration (a CPU-intensive prime-number stress plus a disk
 * stress, left running through the failure) and an "idle" one
 * (section 5.2). These presets give the corresponding wall power of
 * each testbed, used both for PSU window interpolation and for the
 * save routine's energy accounting.
 */

#pragma once

#include <string>

namespace wsp {

/** Load classes from the paper's evaluation. */
enum class LoadClass { Busy, Idle };

/** Human-readable name ("Busy"/"Idle"). */
std::string loadClassName(LoadClass load);

/** Wall-power draw of one testbed under each load class. */
struct SystemLoad
{
    std::string name;
    double busyWatts = 0.0;
    double idleWatts = 0.0;

    double
    watts(LoadClass load) const
    {
        return load == LoadClass::Busy ? busyWatts : idleWatts;
    }

    /**
     * Wall power while @p active_cores of @p total_cores are running
     * the save path. The busy/idle gap is mostly core activity, so
     * the active-core fraction of it is added onto the idle floor —
     * the parallel flush keeps every core busy and must pay for it,
     * while the sequential walk idles N-1 cores after the IPI.
     */
    double
    wattsDuringSave(unsigned active_cores, unsigned total_cores) const
    {
        if (total_cores == 0)
            return idleWatts;
        const double fraction =
            static_cast<double>(active_cores > total_cores ? total_cores
                                                           : active_cores) /
            static_cast<double>(total_cores);
        return idleWatts + (busyWatts - idleWatts) * fraction;
    }
};

/** 2-socket Intel C5528 testbed, 48 GB DDR3. */
SystemLoad loadIntelTestbed();

/** 1-socket AMD 4180 testbed, 8 GB DDR3. */
SystemLoad loadAmdTestbed();

} // namespace wsp
