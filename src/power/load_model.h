/**
 * @file
 * System load presets for the two paper testbeds.
 *
 * The paper measured residual windows and save times in a "busy"
 * configuration (a CPU-intensive prime-number stress plus a disk
 * stress, left running through the failure) and an "idle" one
 * (section 5.2). These presets give the corresponding wall power of
 * each testbed, used both for PSU window interpolation and for the
 * save routine's energy accounting.
 */

#pragma once

#include <string>

namespace wsp {

/** Load classes from the paper's evaluation. */
enum class LoadClass { Busy, Idle };

/** Human-readable name ("Busy"/"Idle"). */
std::string loadClassName(LoadClass load);

/** Wall-power draw of one testbed under each load class. */
struct SystemLoad
{
    std::string name;
    double busyWatts = 0.0;
    double idleWatts = 0.0;

    double
    watts(LoadClass load) const
    {
        return load == LoadClass::Busy ? busyWatts : idleWatts;
    }
};

/** 2-socket Intel C5528 testbed, 48 GB DDR3. */
SystemLoad loadIntelTestbed();

/** 1-socket AMD 4180 testbed, 8 GB DDR3. */
SystemLoad loadAmdTestbed();

} // namespace wsp
