#include "power/psu.h"

#include <algorithm>
#include <cmath>

#include "trace/stat_registry.h"
#include "trace/trace.h"
#include "util/logging.h"

namespace wsp {

double
railNominal(Rail rail)
{
    switch (rail) {
      case Rail::V12:
        return 12.0;
      case Rail::V5:
        return 5.0;
      case Rail::V3_3:
        return 3.3;
    }
    return 0.0;
}

PsuPreset
psuPresetAmd400W()
{
    PsuPreset preset;
    preset.name = "400W PSU (AMD testbed)";
    preset.ratedWatts = 400.0;
    preset.busyLoadWatts = 165.0;
    preset.idleLoadWatts = 110.0;
    preset.busyWindow = fromMillis(346.0);
    preset.idleWindow = fromMillis(392.0);
    preset.windowJitter = fromMillis(25.0);
    return preset;
}

PsuPreset
psuPresetAmd525W()
{
    PsuPreset preset;
    preset.name = "525W PSU (AMD testbed)";
    preset.ratedWatts = 525.0;
    preset.busyLoadWatts = 165.0;
    preset.idleLoadWatts = 110.0;
    preset.busyWindow = fromMillis(22.0);
    preset.idleWindow = fromMillis(71.0);
    preset.windowJitter = fromMillis(8.0);
    return preset;
}

PsuPreset
psuPresetIntel750W()
{
    PsuPreset preset;
    preset.name = "750W PSU (Intel testbed)";
    preset.ratedWatts = 750.0;
    preset.busyLoadWatts = 330.0;
    preset.idleLoadWatts = 195.0;
    preset.busyWindow = fromMillis(10.0);
    preset.idleWindow = fromMillis(10.0);
    preset.windowJitter = fromMillis(3.0);
    return preset;
}

PsuPreset
psuPresetIntel1050W()
{
    PsuPreset preset;
    preset.name = "1050W PSU (Intel testbed)";
    preset.ratedWatts = 1050.0;
    preset.busyLoadWatts = 330.0;
    preset.idleLoadWatts = 195.0;
    preset.busyWindow = fromMillis(33.0);
    preset.idleWindow = fromMillis(33.0);
    preset.windowJitter = fromMillis(5.0);
    return preset;
}

AtxPowerSupply::AtxPowerSupply(EventQueue &queue, PsuPreset preset, Rng rng)
    : SimObject(queue, preset.name), preset_(std::move(preset)),
      rng_(rng), loadWatts_(preset_.idleLoadWatts)
{
    WSP_CHECK(preset_.ratedWatts > 0.0);
    WSP_CHECK(preset_.busyLoadWatts > 0.0);
    WSP_CHECK(preset_.idleLoadWatts > 0.0);
    WSP_CHECK(preset_.droopTau > 0);
}

void
AtxPowerSupply::setLoadWatts(double watts)
{
    WSP_CHECKF(watts >= 0.0, "negative PSU load %f W", watts);
    if (watts > preset_.ratedWatts) {
        warn("%s: load %.0f W exceeds the %.0f W rating",
             name().c_str(), watts, preset_.ratedWatts);
    }
    loadWatts_ = watts;
}

void
AtxPowerSupply::setResidualWindows(Tick busy, Tick idle, Tick jitter)
{
    WSP_CHECKF(busy > 0 && idle > 0,
               "residual windows must be positive (busy=%llu idle=%llu)",
               static_cast<unsigned long long>(busy),
               static_cast<unsigned long long>(idle));
    preset_.busyWindow = busy;
    preset_.idleWindow = idle;
    preset_.windowJitter = jitter;
}

Tick
AtxPowerSupply::windowForLoad() const
{
    const double busy_w = preset_.busyLoadWatts;
    const double idle_w = preset_.idleLoadWatts;
    const double lo = std::min(busy_w, idle_w);
    const double hi = std::max(busy_w, idle_w);
    const double load = std::clamp(loadWatts_, lo, hi);
    if (hi == lo)
        return preset_.busyWindow;
    // Window shrinks as load grows; interpolate between the two
    // calibrated points (idle load -> idle window, busy -> busy).
    const double frac = (load - idle_w) / (busy_w - idle_w);
    const double busy_ms = toMillis(preset_.busyWindow);
    const double idle_ms = toMillis(preset_.idleWindow);
    return fromMillis(idle_ms + frac * (busy_ms - idle_ms));
}

void
AtxPowerSupply::failInputAt(Tick at)
{
    WSP_CHECK(!inputFailed_);
    queue_.cancel(pendingFailure_);
    pendingFailure_ = queue_.schedule(at, [this] { failInputNow(); });
}

void
AtxPowerSupply::failInputNow()
{
    if (inputFailed_)
        return;
    inputFailed_ = true;
    pendingFailure_ = kEventNone;
    onInputFailed();
}

void
AtxPowerSupply::onInputFailed()
{
    // Draw this run's residual window: the calibrated worst case for
    // the present load plus bounded jitter from AC phase and the
    // PWR_OK comparator.
    const Tick jitter = preset_.windowJitter
        ? static_cast<Tick>(rng_.next(preset_.windowJitter))
        : 0;
    residualWindow_ = windowForLoad() + jitter;

    pwrOkDropTick_ = now() + preset_.pwrOkDetectDelay;
    regulationEnd_ = pwrOkDropTick_ + residualWindow_;

    auto &registry = trace::StatRegistry::instance();
    registry.counter("power.input_failures").add();
    registry.gauge("power.residual_window_ns")
        .set(static_cast<double>(residualWindow_));
    TRACE_INSTANT(Power, "AC input failed");

    queue_.schedule(pwrOkDropTick_, [this] {
        if (inputFailed_) {
            pwrOk_.set(false);
            TRACE_INSTANT(Power, "PWR_OK drop");
        }
    });
}

double
AtxPowerSupply::railVoltage(Rail rail) const
{
    const double nominal = railNominal(rail);
    if (!inputFailed_ || now() < regulationEnd_)
        return nominal;
    // Regulation lost: the output capacitors discharge into the load.
    const double dt = toSeconds(now() - regulationEnd_);
    const double tau = toSeconds(preset_.droopTau);
    return nominal * std::exp(-dt / tau);
}

bool
AtxPowerSupply::outputsValid() const
{
    for (Rail rail : {Rail::V12, Rail::V5, Rail::V3_3}) {
        if (railVoltage(rail) < 0.95 * railNominal(rail))
            return false;
    }
    return true;
}

void
AtxPowerSupply::restoreInput()
{
    queue_.cancel(pendingFailure_);
    pendingFailure_ = kEventNone;
    inputFailed_ = false;
    pwrOkDropTick_ = kTickNever;
    regulationEnd_ = kTickNever;
    residualWindow_ = 0;
    pwrOk_.set(true);
    TRACE_INSTANT(Power, "AC input restored");
}

} // namespace wsp
