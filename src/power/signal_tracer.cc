#include "power/signal_tracer.h"

#include <cmath>

#include "trace/trace.h"
#include "util/logging.h"

namespace wsp {

SignalTracer::SignalTracer(EventQueue &queue, Tick sample_period)
    : SimObject(queue, "signal-tracer"), samplePeriod_(sample_period)
{
    WSP_CHECK(samplePeriod_ > 0);
}

void
SignalTracer::addChannel(const std::string &name,
                         std::function<double()> probe)
{
    WSP_CHECK(probe != nullptr);
    for (const auto &ch : channels_)
        WSP_CHECKF(ch.name != name, "duplicate channel %s", name.c_str());
    channels_.push_back(Channel{name, std::move(probe), Series{name, {}, {}}});
}

void
SignalTracer::start()
{
    WSP_CHECK(!running_);
    running_ = true;
    startTick_ = now();
    sampleAll();
}

void
SignalTracer::stop()
{
    running_ = false;
}

void
SignalTracer::sampleAll()
{
    if (!running_)
        return;
    const double t = toSeconds(now() - startTick_);
    const bool traced = trace::enabled(trace::Category::Power);
    for (auto &ch : channels_) {
        const double value = ch.probe();
        ch.trace.add(t, value);
        // Bridge analog channels onto the event trace as counter
        // tracks ("12V rail", "PWR_OK", ...).
        if (traced)
            TRACE_COUNTER(Power, ch.name.c_str(), value);
    }
    queue_.scheduleAfter(samplePeriod_, [this] { sampleAll(); });
}

const SignalTracer::Channel &
SignalTracer::find(const std::string &name) const
{
    for (const auto &ch : channels_) {
        if (ch.name == name)
            return ch;
    }
    fatal("signal tracer has no channel named '%s'", name.c_str());
}

const Series &
SignalTracer::channel(const std::string &name) const
{
    return find(name).trace;
}

std::vector<std::string>
SignalTracer::channelNames() const
{
    std::vector<std::string> names;
    names.reserve(channels_.size());
    for (const auto &ch : channels_)
        names.push_back(ch.name);
    return names;
}

bool
SignalTracer::firstDroop(const std::string &name, double nominal,
                         double frac, Tick window, Tick *when_out) const
{
    const Series &trace = find(name).trace;
    const double threshold = frac * nominal;
    const auto need = static_cast<size_t>(
        std::max<Tick>(window / samplePeriod_, 1));

    size_t run = 0;
    for (size_t i = 0; i < trace.size(); ++i) {
        if (trace.ys[i] < threshold) {
            ++run;
            if (run >= need) {
                const size_t start = i + 1 - need;
                *when_out = fromSeconds(trace.xs[start]);
                return true;
            }
        } else {
            run = 0;
        }
    }
    return false;
}

} // namespace wsp
