/**
 * @file
 * Energy-margin health monitor.
 *
 * WSP's weakest point is NVRAM failure (paper section 6): an aged or
 * drained ultracapacitor silently converts the next "suspend" into
 * total state loss, because nothing checks the bank until the save
 * actually needs it. The monitor closes that gap with a periodic
 * self-test: each registered probe compares the energy a backup bank
 * can deliver right now against what its save is predicted to need,
 * plus a safety margin. When any probe's margin is gone the monitor
 * flips the platform into *degraded mode* — the save routine then
 * plans a tiered save that fits the energy actually available instead
 * of discovering mid-save that it doesn't.
 *
 * The monitor is deliberately generic (name + two energy callbacks):
 * it lives in the power layer, below the NVRAM model, so the platform
 * wires one probe per NVDIMM module without this layer knowing what a
 * module is.
 */

#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sim/sim_object.h"
#include "util/units.h"

namespace wsp {

/** One monitored backup-energy source. */
struct HealthProbe
{
    std::string name;
    std::function<double()> availableJoules; ///< deliverable right now
    std::function<double()> requiredJoules;  ///< predicted save need
};

/** Tunables of the periodic self-test. */
struct HealthMonitorConfig
{
    /** Self-test period. */
    Tick period = fromMillis(100.0);

    /**
     * Safety margin: a probe is healthy while
     * available >= required * (1 + energyMargin).
     */
    double energyMargin = 0.25;
};

/** Periodic energy self-test publishing health gauges. */
class EnergyHealthMonitor : public SimObject
{
  public:
    EnergyHealthMonitor(EventQueue &queue, HealthMonitorConfig config);

    void addProbe(HealthProbe probe);

    /** Called with the new state on every healthy<->degraded flip. */
    void setDegradedHandler(std::function<void(bool)> handler);

    /** Begin (or resume) the periodic self-test. */
    void start();

    /** Stop the periodic self-test (pending ticks become no-ops). */
    void stop();

    /**
     * Run one self-test immediately: evaluate every probe, publish
     * gauges, fire the handler on a transition.
     * @return true when every probe holds its margin.
     */
    bool checkNow();

    bool degraded() const { return degraded_; }
    bool started() const { return started_; }
    uint64_t checksRun() const { return checksRun_; }
    uint64_t transitions() const { return transitions_; }

    /** Worst probe margin of the last check (joules; negative = deficit). */
    double worstMarginJoules() const { return worstMargin_; }

    const HealthMonitorConfig &config() const { return config_; }

  private:
    void tick(uint64_t epoch);

    HealthMonitorConfig config_;
    std::vector<HealthProbe> probes_;
    std::function<void(bool)> degradedHandler_;
    bool started_ = false;
    bool degraded_ = false;
    double worstMargin_ = 0.0;
    uint64_t runEpoch_ = 0; ///< invalidates pending ticks on stop()
    uint64_t checksRun_ = 0;
    uint64_t transitions_ = 0;
};

} // namespace wsp
