/**
 * @file
 * ATX power-supply model with residual energy window.
 *
 * When AC input fails, a real ATX supply keeps regulating its DC
 * output rails from the charge in its bulk capacitors for a short
 * hold-up period, and drops the PWR_OK signal as soon as it detects
 * the input failure. The interval between the PWR_OK drop and the
 * first output-rail droop is the *residual energy window* that
 * whole-system persistence spends on flush-on-fail (paper sections 1,
 * 5.2).
 *
 * The paper measured this window empirically on four supplies
 * (Fig. 7) and found it to vary from 10 ms to ~400 ms with supply and
 * load; first-principles prediction from the nameplate is not
 * possible, so the model is *calibrated*: each PsuPreset carries the
 * paper's worst-observed windows at the busy and idle load points and
 * the model interpolates over load, adds bounded run-to-run jitter
 * (AC-phase and comparator effects), and replays the electrical
 * behaviour — PWR_OK edge, regulated rails, exponential droop — that
 * the paper's oscilloscope traces show (Fig. 6).
 */

#pragma once

#include <array>
#include <string>

#include "power/ultracapacitor.h"
#include "sim/sim_object.h"
#include "sim/signal.h"
#include "util/rng.h"
#include "util/units.h"

namespace wsp {

/** ATX DC output rails. */
enum class Rail { V12, V5, V3_3 };

/** Nominal voltage of a rail. */
double railNominal(Rail rail);

/** Calibration and behaviour parameters for one power supply. */
struct PsuPreset
{
    std::string name;
    double ratedWatts = 0.0;

    /** Load points (system draw, W) the paper measured at. */
    double busyLoadWatts = 0.0;
    double idleLoadWatts = 0.0;

    /** Worst observed residual window at each load point. */
    Tick busyWindow = 0;
    Tick idleWindow = 0;

    /** Upper bound of run-to-run window jitter (added to the worst). */
    Tick windowJitter = 0;

    /** Input-failure detection delay before PWR_OK is dropped. */
    Tick pwrOkDetectDelay = fromMillis(2.0);

    /** Rail droop time constant once regulation is lost. */
    Tick droopTau = fromMillis(20.0);
};

/** The four supplies evaluated in the paper (Fig. 7). */
PsuPreset psuPresetAmd400W();
PsuPreset psuPresetAmd525W();
PsuPreset psuPresetIntel750W();
PsuPreset psuPresetIntel1050W();

/**
 * An ATX power supply: AC input, PWR_OK wire, three DC rails.
 *
 * Rails are queried analytically (railVoltage() is a pure function of
 * simulated time and the failure schedule), so an oscilloscope-style
 * tracer can sample them at any rate without extra events.
 */
class AtxPowerSupply : public SimObject
{
  public:
    AtxPowerSupply(EventQueue &queue, PsuPreset preset, Rng rng);

    const PsuPreset &preset() const { return preset_; }

    /** PWR_OK wire; observers see the drop on input failure. */
    Wire &pwrOkSignal() { return pwrOk_; }

    /** True while PWR_OK is asserted. */
    bool pwrOk() const { return pwrOk_.value(); }

    /** Set the system load the supply is driving, in watts. */
    void setLoadWatts(double watts);
    double loadWatts() const { return loadWatts_; }

    /**
     * Recalibrate the residual windows at runtime. The fleet fault
     * plane uses this to land each correlated kill at an exact instant
     * of the save pipeline without reconstructing the whole system
     * (FailureInjector::withExactWindow is construction-time only).
     * Takes effect on the next input failure, not a pending one.
     */
    void setResidualWindows(Tick busy, Tick idle, Tick jitter = 0);

    /** Instantaneous voltage of @p rail at the current tick. */
    double railVoltage(Rail rail) const;

    /** True while every rail is within 5% of nominal. */
    bool outputsValid() const;

    /** Schedule an AC input failure at absolute tick @p at. */
    void failInputAt(Tick at);

    /** Fail the AC input right now. */
    void failInputNow();

    /** Restore AC input now (e.g. for a power-restore boot). */
    void restoreInput();

    /** True once the AC input has failed and not been restored. */
    bool inputFailed() const { return inputFailed_; }

    /**
     * The residual window drawn for the current failure: the interval
     * from the PWR_OK drop until regulation is lost. Meaningful only
     * after the input has failed.
     */
    Tick residualWindow() const { return residualWindow_; }

    /** Tick at which rail regulation ends (kTickNever before failure). */
    Tick regulationEndTick() const { return regulationEnd_; }

  private:
    /** Interpolate the worst-case window for the present load. */
    Tick windowForLoad() const;
    void onInputFailed();

    PsuPreset preset_;
    Rng rng_;
    Wire pwrOk_{true};
    double loadWatts_;
    bool inputFailed_ = false;
    Tick pwrOkDropTick_ = kTickNever;
    Tick regulationEnd_ = kTickNever;
    Tick residualWindow_ = 0;
    EventId pendingFailure_ = kEventNone;
};

} // namespace wsp
