#include "power/health_monitor.h"

#include <algorithm>
#include <limits>

#include "trace/stat_registry.h"
#include "trace/trace.h"
#include "util/logging.h"

namespace wsp {

EnergyHealthMonitor::EnergyHealthMonitor(EventQueue &queue,
                                         HealthMonitorConfig config)
    : SimObject(queue, "health-monitor"), config_(config)
{
    WSP_CHECKF(config_.period > 0, "health monitor period must be > 0");
    WSP_CHECKF(config_.energyMargin >= 0.0,
               "health monitor margin must be >= 0");
}

void
EnergyHealthMonitor::addProbe(HealthProbe probe)
{
    WSP_CHECKF(probe.availableJoules && probe.requiredJoules,
               "health probe '%s' needs both energy callbacks",
               probe.name.c_str());
    probes_.push_back(std::move(probe));
}

void
EnergyHealthMonitor::setDegradedHandler(std::function<void(bool)> handler)
{
    degradedHandler_ = std::move(handler);
}

void
EnergyHealthMonitor::start()
{
    if (started_)
        return;
    started_ = true;
    uint64_t epoch = ++runEpoch_;
    queue_.scheduleAfter(config_.period, [this, epoch] { tick(epoch); });
}

void
EnergyHealthMonitor::stop()
{
    started_ = false;
    ++runEpoch_;
}

void
EnergyHealthMonitor::tick(uint64_t epoch)
{
    if (!started_ || epoch != runEpoch_)
        return; // stale tick from before a stop()
    checkNow();
    queue_.scheduleAfter(config_.period, [this, epoch] { tick(epoch); });
}

bool
EnergyHealthMonitor::checkNow()
{
    auto &stats = trace::StatRegistry::instance();
    ++checksRun_;
    stats.counter("power.health.checks").add();

    bool healthy = true;
    double worst = std::numeric_limits<double>::infinity();
    for (const HealthProbe &probe : probes_) {
        double available = probe.availableJoules();
        double needed = probe.requiredJoules() * (1.0 + config_.energyMargin);
        double margin = available - needed;
        worst = std::min(worst, margin);
        stats.gauge("power.health." + probe.name + ".margin_j").set(margin);
        if (margin < 0.0)
            healthy = false;
    }
    worstMargin_ = probes_.empty() ? 0.0 : worst;
    stats.gauge("power.health.worst_margin_j").set(worstMargin_);
    stats.gauge("power.health.degraded").set(healthy ? 0.0 : 1.0);

    if (healthy == degraded_) { // state flip
        degraded_ = !healthy;
        ++transitions_;
        stats.counter("power.health.transitions").add();
        if (degraded_) {
            TRACE_INSTANT(Power, "health: DEGRADED");
            warn("%s: energy self-test failed, worst margin %.3f J — "
                 "entering degraded mode",
                 name().c_str(), worstMargin_);
        } else {
            TRACE_INSTANT(Power, "health: recovered");
            inform("%s: energy self-test recovered, worst margin %.3f J",
                   name().c_str(), worstMargin_);
        }
        if (degradedHandler_)
            degradedHandler_(degraded_);
    }
    return healthy;
}

} // namespace wsp
