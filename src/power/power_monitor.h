/**
 * @file
 * Power-monitor microcontroller.
 *
 * The paper's prototype (Fig. 3) uses a NetDuino microcontroller that
 * watches the ATX PWR_OK signal, raises an interrupt on a host
 * processor over a serial line when the signal drops, and relays
 * save/restore commands from the host to the NVDIMMs over an I2C bus
 * (section 4). The model reproduces the two latencies that matter to
 * the save budget: firmware detection + serial transfer on the
 * failure path, and per-command I2C transfer on the NVDIMM path.
 */

#pragma once

#include <functional>

#include "power/psu.h"
#include "sim/sim_object.h"
#include "util/units.h"

namespace wsp {

/** Latency parameters of the microcontroller paths. */
struct PowerMonitorConfig
{
    /** Firmware latency from the PWR_OK edge to starting the serial
     *  write (GPIO interrupt plus handler). */
    Tick detectLatency = fromMicros(50.0);

    /** Serial-line transfer of the power-fail notification
     *  (a few bytes at 115200 baud). */
    Tick serialLatency = fromMicros(260.0);

    /** I2C transfer of one NVDIMM command (command + address bytes at
     *  400 kHz). */
    Tick i2cCommandLatency = fromMicros(120.0);
};

/**
 * Microcontroller bridging the PSU, the host, and the NVDIMM bus.
 *
 * The host subscribes a power-fail interrupt handler; the NVDIMM
 * subsystem subscribes a command sink. Both run on the event queue
 * after the configured latencies.
 */
class PowerMonitor : public SimObject
{
  public:
    /** Commands relayed over the I2C bus to the NVDIMM subsystem. */
    enum class Command { Save, Restore, Arm, Disarm };

    using InterruptHandler = std::function<void()>;
    using CommandSink = std::function<void(Command)>;

    PowerMonitor(EventQueue &queue, AtxPowerSupply &psu,
                 PowerMonitorConfig config = {});

    /** Subscribe the host's power-fail interrupt handler. */
    void setPowerFailHandler(InterruptHandler handler);

    /** Subscribe the NVDIMM subsystem's command sink. */
    void setCommandSink(CommandSink sink);

    /**
     * Relay a command from the host to the NVDIMM bus; delivered to
     * the sink after the I2C latency.
     */
    void sendCommand(Command command);

    /** Total failure-path latency (detect + serial), for budgeting. */
    Tick
    notifyLatency() const
    {
        return config_.detectLatency + config_.serialLatency;
    }

    const PowerMonitorConfig &config() const { return config_; }

    /** Number of power-fail interrupts raised so far. */
    uint64_t interruptsRaised() const { return interruptsRaised_; }

    /**
     * Fault injection: silently drop the next @p count I2C commands
     * (bus glitch / microcontroller brown-out during the failure
     * race). The save routine's degraded path re-issues its save
     * command once after a backoff to survive exactly this.
     */
    void failNextCommands(unsigned count) { dropCommands_ = count; }

    /** Commands dropped by failNextCommands so far. */
    uint64_t commandsDropped() const { return commandsDropped_; }

  private:
    void onPwrOkDropped();

    PowerMonitorConfig config_;
    InterruptHandler powerFailHandler_;
    CommandSink commandSink_;
    uint64_t interruptsRaised_ = 0;
    unsigned dropCommands_ = 0;
    uint64_t commandsDropped_ = 0;
};

} // namespace wsp
