/**
 * @file
 * Sampling oscilloscope for simulated electrical signals.
 *
 * The paper measured residual energy windows with a sampling
 * oscilloscope at 100 kHz, defining an output droop as any 250 us
 * interval in which a rail stays below 95% of nominal (section 5.2).
 * SignalTracer reproduces exactly that methodology against the
 * simulated PSU so the Fig. 6 / Fig. 7 benches measure windows the
 * same way the authors did rather than reading model internals.
 */

#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sim/sim_object.h"
#include "util/stats.h"
#include "util/units.h"

namespace wsp {

/** Multi-channel sampled tracer with droop detection. */
class SignalTracer : public SimObject
{
  public:
    /** @param sample_period default 10 us = the paper's 100 kHz. */
    SignalTracer(EventQueue &queue, Tick sample_period = fromMicros(10.0));

    /** Add a probe; sampled every period once start() is called. */
    void addChannel(const std::string &name,
                    std::function<double()> probe);

    /** Begin sampling at the current tick. */
    void start();

    /** Stop sampling. */
    void stop();

    bool running() const { return running_; }
    Tick samplePeriod() const { return samplePeriod_; }

    /** Recorded trace of a channel; x = seconds, y = probe value. */
    const Series &channel(const std::string &name) const;

    /** Names of all channels, in registration order. */
    std::vector<std::string> channelNames() const;

    /**
     * Find the first time a channel droops: the start of the first
     * @p window interval during which every sample is below
     * @p frac * @p nominal.
     *
     * @return true if a droop was found; *when_out is the droop start
     *         in ticks from the start of tracing.
     */
    bool firstDroop(const std::string &name, double nominal,
                    double frac, Tick window, Tick *when_out) const;

  private:
    struct Channel
    {
        std::string name;
        std::function<double()> probe;
        Series trace;
    };

    void sampleAll();
    const Channel &find(const std::string &name) const;

    Tick samplePeriod_;
    Tick startTick_ = 0;
    bool running_ = false;
    std::vector<Channel> channels_;
};

} // namespace wsp
