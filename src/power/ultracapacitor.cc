#include "power/ultracapacitor.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace wsp {

std::string
agingCurveName(AgingCurve curve)
{
    switch (curve) {
      case AgingCurve::BestCase:
        return "best case";
      case AgingCurve::DataSheet:
        return "data sheet value";
      case AgingCurve::WorstCase:
        return "worst case";
      case AgingCurve::LiIonBattery:
        return "li-ion battery";
    }
    return "unknown";
}

double
agingFraction(AgingCurve curve, uint64_t cycles)
{
    const double c = static_cast<double>(cycles);
    switch (curve) {
      case AgingCurve::BestCase:
        // ~3% loss at 100k cycles, logarithmic-flavoured fade.
        return std::max(0.90, 1.0 - 0.03 * c / 100000.0);
      case AgingCurve::DataSheet:
        // Vendor-quoted 10% loss bound at 100k cycles.
        return std::max(0.85, 1.0 - 0.10 * c / 100000.0);
      case AgingCurve::WorstCase:
        // Slightly steeper early fade converging near 88%.
        return std::max(0.80,
                        0.88 + 0.12 * std::exp(-c / 40000.0));
      case AgingCurve::LiIonBattery:
        // Rechargeable batteries sustain only a few hundred cycles
        // before capacity degrades sharply (paper section 2).
        if (c <= 300.0)
            return 1.0 - 0.20 * c / 300.0;
        return std::max(0.05, 0.80 * std::exp(-(c - 300.0) / 150.0));
    }
    return 1.0;
}

double
requiredCapacitance(double power_w, Tick duration, double v_start,
                    double v_min, double margin)
{
    WSP_CHECK(power_w > 0.0);
    WSP_CHECK(v_start > v_min);
    WSP_CHECK(v_min >= 0.0);
    const double energy = power_w * toSeconds(duration) * margin;
    return 2.0 * energy / (v_start * v_start - v_min * v_min);
}

double
ultracapCostUsd(double capacitance_f, double v_start)
{
    // Paper section 2 quotes < $0.01/F and $2.85/kJ; energy is the
    // binding term for small banks.
    const double energy_kj =
        0.5 * capacitance_f * v_start * v_start / 1000.0;
    const double by_energy = 2.85 * energy_kj;
    const double by_farads = 0.01 * capacitance_f;
    return by_energy > by_farads ? by_energy : by_farads;
}

Ultracapacitor::Ultracapacitor(UltracapConfig config)
    : config_(config), voltage_(config.maxVoltage)
{
    WSP_CHECK(config_.ratedCapacitanceF > 0.0);
    WSP_CHECK(config_.esrOhm >= 0.0);
    WSP_CHECK(config_.maxVoltage > config_.minUsableVoltage);
    WSP_CHECK(config_.minUsableVoltage >= 0.0);
}

double
Ultracapacitor::effectiveCapacitance() const
{
    return config_.ratedCapacitanceF * agingFraction(config_.aging, cycles_);
}

double
Ultracapacitor::terminalVoltage(double power_w) const
{
    if (power_w <= 0.0)
        return voltage_;
    // Vt solves Vt^2 - Vc*Vt + P*R = 0 (load current I = P/Vt through
    // the ESR). The larger root is the stable operating point.
    const double disc =
        voltage_ * voltage_ - 4.0 * power_w * config_.esrOhm;
    if (disc < 0.0)
        return 0.0; // demanded power exceeds what the ESR allows
    return (voltage_ + std::sqrt(disc)) / 2.0;
}

double
Ultracapacitor::storedEnergy() const
{
    const double c = effectiveCapacitance();
    return 0.5 * c * voltage_ * voltage_;
}

double
Ultracapacitor::usableEnergy() const
{
    const double c = effectiveCapacitance();
    const double vmin = config_.minUsableVoltage;
    const double usable =
        0.5 * c * (voltage_ * voltage_ - vmin * vmin);
    return std::max(usable, 0.0);
}

bool
Ultracapacitor::canSupply(double power_w) const
{
    return terminalVoltage(power_w) >= config_.minUsableVoltage;
}

double
Ultracapacitor::discharge(double power_w, Tick duration)
{
    if (power_w <= 0.0 || duration == 0)
        return 0.0;

    // Integrate in sub-steps no longer than 1 ms for stability.
    const Tick max_step = kMillisecond;
    const double c = effectiveCapacitance();
    double delivered = 0.0;
    Tick elapsed = 0;
    while (elapsed < duration) {
        const Tick step = std::min<Tick>(max_step, duration - elapsed);
        const double dt = toSeconds(step);
        const double vt = terminalVoltage(power_w);
        if (vt < config_.minUsableVoltage)
            break;
        const double current = power_w / vt;
        voltage_ = std::max(voltage_ - current * dt / c, 0.0);
        delivered += power_w * dt;
        elapsed += step;
    }
    return delivered;
}

void
Ultracapacitor::recharge(double charge_power_w, Tick duration)
{
    if (charge_power_w <= 0.0 || duration == 0)
        return;
    const bool was_depleted = voltage_ < config_.minUsableVoltage;
    const double c = effectiveCapacitance();
    const double dt = toSeconds(duration);
    // Energy-balance charge (charger losses folded into the power).
    const double e = 0.5 * c * voltage_ * voltage_ + charge_power_w * dt;
    voltage_ = std::min(std::sqrt(2.0 * e / c), config_.maxVoltage);
    if (was_depleted && voltage_ >= config_.maxVoltage)
        ++cycles_;
}

void
Ultracapacitor::rechargeFully()
{
    voltage_ = config_.maxVoltage;
    ++cycles_;
}

Tick
Ultracapacitor::supplyTime(double power_w) const
{
    if (power_w <= 0.0)
        return kTickNever;
    const double seconds = usableEnergy() / power_w;
    return fromSeconds(seconds);
}

} // namespace wsp
