#include "power/power_monitor.h"

#include "trace/stat_registry.h"
#include "trace/trace.h"
#include "util/logging.h"

namespace wsp {

PowerMonitor::PowerMonitor(EventQueue &queue, AtxPowerSupply &psu,
                           PowerMonitorConfig config)
    : SimObject(queue, "power-monitor"), config_(config)
{
    psu.pwrOkSignal().observeEdge(false, [this] { onPwrOkDropped(); });
}

void
PowerMonitor::setPowerFailHandler(InterruptHandler handler)
{
    powerFailHandler_ = std::move(handler);
}

void
PowerMonitor::setCommandSink(CommandSink sink)
{
    commandSink_ = std::move(sink);
}

void
PowerMonitor::onPwrOkDropped()
{
    if (!powerFailHandler_) {
        warn("%s: PWR_OK dropped but no host handler is attached",
             name().c_str());
        return;
    }
    queue_.scheduleAfter(notifyLatency(), [this] {
        ++interruptsRaised_;
        trace::StatRegistry::instance()
            .counter("power.monitor_interrupts").add();
        TRACE_INSTANT(Power, "power-fail interrupt");
        powerFailHandler_();
    });
}

void
PowerMonitor::sendCommand(Command command)
{
    WSP_CHECKF(commandSink_ != nullptr,
               "power monitor has no NVDIMM command sink");
    if (dropCommands_ > 0) {
        --dropCommands_;
        ++commandsDropped_;
        trace::StatRegistry::instance()
            .counter("power.i2c_commands_dropped").add();
        TRACE_INSTANT(Power, "I2C command DROPPED");
        warn("%s: I2C command dropped (injected bus fault)",
             name().c_str());
        return;
    }
    trace::StatRegistry::instance().counter("power.i2c_commands").add();
    TRACE_INSTANT(Power, "I2C command to NVDIMMs");
    queue_.scheduleAfter(config_.i2cCommandLatency,
                         [this, command] { commandSink_(command); });
}

} // namespace wsp
